/**
 * @file
 * Figure 18: contribution of the four metrics the approach affects,
 * isolated by replaying the default plan with exactly one donor metric
 * from the optimized run: S1 = its L1 hit/miss profile, S2 = its data
 * movement, S3 = its degree of parallelism, S4 = its synchronisation
 * cost. Paper: data movement (S2) is the largest contributor — about
 * 77% of the full approach's gain on its own.
 *
 * The 12 metric-isolation runs fan out across NDP_BENCH_THREADS
 * workers via SweepRunner::mapOrdered (and each run's loop nests
 * across the same pool); the table is bit-identical for any thread
 * count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    bench::banner("fig18_metric_isolation", "Figure 18");

    const std::vector<workloads::Workload> apps = bench::allApps();
    const driver::ExperimentConfig config =
        bench::applyVerifyLevel({driver::ExperimentConfig{}}).front();
    driver::SweepRunner sweeper(bench::benchThreads());
    const std::vector<driver::IsolationResult> isolations =
        sweeper.mapOrdered<driver::IsolationResult>(
            apps.size(),
            [&apps, &config](std::size_t i, support::ThreadPool &pool) {
                driver::ExperimentRunner runner(config, &pool);
                return runner.runMetricIsolation(apps[i]);
            });

    Table table({"app", "S1:L1%", "S2:movement%", "S3:parallel%",
                 "S4:sync%", "full%"});
    std::vector<double> s2s, fulls;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const driver::IsolationResult &iso = isolations[a];
        s2s.push_back(iso.s2DataMovement);
        fulls.push_back(iso.fullApproach);
        table.row()
            .cell(apps[a].name)
            .cell(iso.s1L1Behavior)
            .cell(iso.s2DataMovement)
            .cell(iso.s3Parallelism)
            .cell(iso.s4Synchronization)
            .cell(iso.fullApproach);
    }
    table.row()
        .cell("geomean")
        .cell("")
        .cell(driver::geomeanPct(s2s))
        .cell("")
        .cell("")
        .cell(driver::geomeanPct(fulls));
    table.print(std::cout);

    const double share =
        driver::geomeanPct(fulls) == 0.0
            ? 0.0
            : 100.0 * driver::geomeanPct(s2s) / driver::geomeanPct(fulls);
    std::cout << "\nS2 (movement) alone reaches " << share
              << "% of the full improvement (paper: ~77%; S2 can exceed"
                 " 100% here\nbecause it pays none of the split's task"
                 " and synchronisation overheads)\n";

    sweeper.stats().printSummary(std::clog);
    return 0;
}
