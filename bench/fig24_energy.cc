/**
 * @file
 * Figure 24: reduction in energy versus the default computation
 * placement (CACTI/McPAT-style event energy model), for our approach
 * and the two ideal schemes of Section 6.4. Paper: 23.1% average
 * saving for the full approach.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig24_energy", "Figure 24");

    driver::ExperimentRunner ours;

    driver::ExperimentConfig ideal_net_cfg;
    ideal_net_cfg.optimizeComputation = false;
    ideal_net_cfg.idealNetwork = true;
    driver::ExperimentRunner ideal_net(ideal_net_cfg);

    driver::ExperimentConfig oracle_cfg;
    oracle_cfg.partition.oracle = true;
    driver::ExperimentRunner ideal_data(oracle_cfg);

    Table table({"app", "ours%", "ideal-network%", "ideal-data%"});
    std::vector<double> v1;
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto a = ours.runApp(w);
        const auto b = ideal_net.runApp(w);
        const auto c = ideal_data.runApp(w);
        v1.push_back(a.energyReductionPct());
        table.row()
            .cell(w.name)
            .cell(a.energyReductionPct())
            .cell(b.energyReductionPct())
            .cell(c.energyReductionPct());
    });
    table.row().cell("mean").cell(arithmeticMean(v1)).cell("").cell("");
    table.print(std::cout);
    return 0;
}
