/**
 * @file
 * Figure 24: reduction in energy versus the default computation
 * placement (CACTI/McPAT-style event energy model), for our approach
 * and the two ideal schemes of Section 6.4. Paper: 23.1% average
 * saving for the full approach.
 *
 * All 36 (app, config) runs fan out across NDP_BENCH_THREADS workers
 * (and each run's loop nests across the same pool); the table is
 * bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig24_energy", "Figure 24");

    driver::ExperimentConfig ours_cfg;

    driver::ExperimentConfig ideal_net_cfg;
    ideal_net_cfg.optimizeComputation = false;
    ideal_net_cfg.idealNetwork = true;

    driver::ExperimentConfig oracle_cfg;
    oracle_cfg.partition.oracle = true;

    const bench::SweepOutcome sweep =
        bench::runSweep({ours_cfg, ideal_net_cfg, oracle_cfg});

    const auto energy_reduction = [](const AppResult &r) {
        return r.energyReductionPct();
    };
    bench::printMetricTable(
        sweep, {{"ours%", 0, energy_reduction,
                 bench::MetricColumn::Summary::Mean},
                {"ideal-network%", 1, energy_reduction},
                {"ideal-data%", 2, energy_reduction}});

    bench::printTiming({"ours", "ideal-network", "ideal-data"}, sweep);
    return 0;
}
