/**
 * @file
 * Table 2: measured accuracy of the L2 cache hit/miss predictor, per
 * application. The predictor trains online during the (profiling)
 * default run and during the optimized run, exactly the accesses the
 * compiler's location queries concern. Paper range: 63.1%-91.8%.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("table2_predictor", "Table 2");

    driver::ExperimentRunner runner;
    Table table({"app", "predictor accuracy%"});
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        table.row().cell(w.name).cell(100.0 * result.predictorAccuracy,
                                      1);
    });
    table.print(std::cout);
    return 0;
}
