/**
 * @file
 * Table 2: measured accuracy of the L2 cache hit/miss predictor, per
 * application. The predictor trains online during the (profiling)
 * default run and during the optimized run, exactly the accesses the
 * compiler's location queries concern. Paper range: 63.1%-91.8%.
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("table2_predictor", "Table 2");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep, {{"predictor accuracy%", 0,
                 [](const AppResult &r) {
                     return 100.0 * r.predictorAccuracy;
                 },
                 bench::MetricColumn::Summary::None, 1}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
