/**
 * @file
 * Figure 23: our computation mapping versus the profile-based
 * data-to-MC page mapping (each page re-homed to the MC preferred by
 * most of its accessing cores), and the combination of both. Paper
 * geomeans: 18.4% / 7.9% / 21.4% — data mapping alone is weaker
 * (mid-mesh pages have no clearly preferable controller), and the
 * combination is best.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig23_data_mapping", "Figure 23");

    driver::ExperimentRunner ours;

    driver::ExperimentConfig map_cfg;
    map_cfg.optimizeComputation = false;
    map_cfg.dataToMcRemap = true;
    map_cfg.planSelection = false;
    driver::ExperimentRunner mapping(map_cfg);

    driver::ExperimentConfig combined_cfg;
    combined_cfg.dataToMcRemap = true;
    driver::ExperimentRunner combined(combined_cfg);

    Table table({"app", "ours%", "data-mapping%", "combined%"});
    std::vector<double> v1, v2, v3;
    bench::forEachApp([&](const workloads::Workload &w) {
        v1.push_back(ours.runApp(w).execTimeReductionPct());
        v2.push_back(mapping.runApp(w).execTimeReductionPct());
        v3.push_back(combined.runApp(w).execTimeReductionPct());
        table.row().cell(w.name).cell(v1.back()).cell(v2.back()).cell(
            v3.back());
    });
    table.row()
        .cell("geomean")
        .cell(driver::geomeanPct(v1))
        .cell(driver::geomeanPct(v2))
        .cell(driver::geomeanPct(v3));
    table.print(std::cout);
    return 0;
}
