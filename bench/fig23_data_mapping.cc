/**
 * @file
 * Figure 23: our computation mapping versus the profile-based
 * data-to-MC page mapping (each page re-homed to the MC preferred by
 * most of its accessing cores), and the combination of both. Paper
 * geomeans: 18.4% / 7.9% / 21.4% — data mapping alone is weaker
 * (mid-mesh pages have no clearly preferable controller), and the
 * combination is best.
 *
 * All 36 (app, config) runs fan out across NDP_BENCH_THREADS workers
 * (and each run's loop nests across the same pool); the table is
 * bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig23_data_mapping", "Figure 23");

    driver::ExperimentConfig ours_cfg;

    driver::ExperimentConfig map_cfg;
    map_cfg.optimizeComputation = false;
    map_cfg.dataToMcRemap = true;
    map_cfg.planSelection = false;

    driver::ExperimentConfig combined_cfg;
    combined_cfg.dataToMcRemap = true;

    const bench::SweepOutcome sweep =
        bench::runSweep({ours_cfg, map_cfg, combined_cfg});

    const auto exec_reduction = [](const AppResult &r) {
        return r.execTimeReductionPct();
    };
    bench::printMetricTable(
        sweep, {{"ours%", 0, exec_reduction,
                 bench::MetricColumn::Summary::Geomean},
                {"data-mapping%", 1, exec_reduction,
                 bench::MetricColumn::Summary::Geomean},
                {"combined%", 2, exec_reduction,
                 bench::MetricColumn::Summary::Geomean}});

    bench::printTiming({"ours", "data-mapping", "combined"}, sweep);
    return 0;
}
