/**
 * @file
 * Figure 15: point-to-point synchronisations per statement introduced
 * by subcomputation scheduling, after the transitive-closure
 * minimisation (the raw pre-minimisation count is shown alongside).
 * The paper notes higher subcomputation parallelism generally implies
 * more synchronisations.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig15_synchronization", "Figure 15");

    driver::ExperimentRunner runner;
    Table table({"app", "syncs/stmt", "raw syncs/stmt", "avg DoP"});
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        table.row()
            .cell(w.name)
            .cell(result.syncsPerStatement.mean())
            .cell(result.rawSyncsPerStatement.mean())
            .cell(result.degreeOfParallelism.mean());
    });
    table.print(std::cout);
    return 0;
}
