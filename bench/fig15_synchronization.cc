/**
 * @file
 * Figure 15: point-to-point synchronisations per statement introduced
 * by subcomputation scheduling, after the transitive-closure
 * minimisation (the raw pre-minimisation count is shown alongside).
 * The paper notes higher subcomputation parallelism generally implies
 * more synchronisations.
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig15_synchronization", "Figure 15");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep,
        {{"syncs/stmt", 0,
          [](const AppResult &r) {
              return r.syncsPerStatement.mean();
          }},
         {"raw syncs/stmt", 0,
          [](const AppResult &r) {
              return r.rawSyncsPerStatement.mean();
          }},
         {"avg DoP", 0, [](const AppResult &r) {
              return r.degreeOfParallelism.mean();
          }}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
