/**
 * @file
 * Figure 20: execution-time improvement when a single fixed statement-
 * window size (1..8) is forced for every nest, versus the adaptive
 * per-nest choice. Expected shape: improvement first rises with the
 * window (more L1 reuse captured), then falls (L1 pollution), and the
 * adaptive column beats every fixed size.
 *
 * All 108 (app, window) runs fan out across NDP_BENCH_THREADS workers
 * (and each run's loop nests across the same pool); the table is
 * bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig20_window_size", "Figure 20");

    std::vector<driver::ExperimentConfig> configs;
    std::vector<std::string> labels;
    for (int w = 1; w <= 8; ++w) {
        driver::ExperimentConfig cfg;
        cfg.partition.fixedWindowSize = w;
        configs.push_back(cfg);
        labels.push_back("w=" + std::to_string(w));
    }
    configs.emplace_back(); // the adaptive per-nest window choice
    labels.push_back("adaptive");

    const bench::SweepOutcome sweep = bench::runSweep(configs);

    std::vector<bench::MetricColumn> columns;
    for (std::size_t c = 0; c < configs.size(); ++c)
        columns.push_back({labels[c], c, [](const AppResult &r) {
                               return r.execTimeReductionPct();
                           }});
    bench::printMetricTable(sweep, columns);

    bench::printTiming(labels, sweep);
    return 0;
}
