/**
 * @file
 * Figure 20: execution-time improvement when a single fixed statement-
 * window size (1..8) is forced for every nest, versus the adaptive
 * per-nest choice. Expected shape: improvement first rises with the
 * window (more L1 reuse captured), then falls (L1 pollution), and the
 * adaptive column beats every fixed size.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig20_window_size", "Figure 20");

    std::vector<std::string> headers = {"app"};
    for (int w = 1; w <= 8; ++w)
        headers.push_back("w=" + std::to_string(w));
    headers.push_back("adaptive");
    Table table(headers);

    std::vector<driver::ExperimentRunner> fixed;
    for (int w = 1; w <= 8; ++w) {
        driver::ExperimentConfig cfg;
        cfg.partition.fixedWindowSize = w;
        fixed.emplace_back(cfg);
    }
    driver::ExperimentRunner adaptive;

    bench::forEachApp([&](const workloads::Workload &w) {
        table.row().cell(w.name);
        for (auto &runner : fixed)
            table.cell(runner.runApp(w).execTimeReductionPct());
        table.cell(adaptive.runApp(w).execTimeReductionPct());
    });
    table.print(std::cout);
    return 0;
}
