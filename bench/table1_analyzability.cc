/**
 * @file
 * Table 1: the fraction of program data references whose on-chip
 * location is compile-time analyzable (affine subscripts), per
 * application. Paper range: 68.3% (Barnes) to 97.2% (Cholesky).
 */

#include "bench_common.h"

#include "ir/dependence.h"

int
main()
{
    using namespace ndp;
    bench::banner("table1_analyzability", "Table 1");

    Table table({"app", "analyzable%"});
    bench::forEachApp([&](const workloads::Workload &w) {
        double weighted = 0.0;
        std::int64_t weight = 0;
        for (const ir::LoopNest &nest : w.nests) {
            const std::int64_t instances =
                nest.iterationCount() *
                static_cast<std::int64_t>(nest.body().size());
            weighted += ir::analyzableFraction(nest) *
                        static_cast<double>(instances);
            weight += instances;
        }
        table.row().cell(w.name).cell(
            100.0 * weighted / static_cast<double>(weight), 1);
    });
    table.print(std::cout);
    return 0;
}
