/**
 * @file
 * Table 1: the fraction of program data references whose on-chip
 * location is compile-time analyzable (affine subscripts), per
 * application. Paper range: 68.3% (Barnes) to 97.2% (Cholesky).
 *
 * Static analysis only — no simulation — so the per-app work fans out
 * across NDP_BENCH_THREADS workers via SweepRunner::mapOrdered; the
 * table is bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

#include "ir/dependence.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    bench::banner("table1_analyzability", "Table 1");

    const std::vector<workloads::Workload> apps = bench::allApps();
    driver::SweepRunner sweeper(bench::benchThreads());
    const std::vector<double> analyzable = sweeper.mapOrdered<double>(
        apps.size(), [&apps](std::size_t i, support::ThreadPool &) {
            double weighted = 0.0;
            std::int64_t weight = 0;
            for (const ir::LoopNest &nest : apps[i].nests) {
                const std::int64_t instances =
                    nest.iterationCount() *
                    static_cast<std::int64_t>(nest.body().size());
                weighted += ir::analyzableFraction(nest) *
                            static_cast<double>(instances);
                weight += instances;
            }
            return 100.0 * weighted / static_cast<double>(weight);
        });

    Table table({"app", "analyzable%"});
    for (std::size_t a = 0; a < apps.size(); ++a)
        table.row().cell(apps[a].name).cell(analyzable[a], 1);
    table.print(std::cout);

    sweeper.stats().printSummary(std::clog);
    return 0;
}
