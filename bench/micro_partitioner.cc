/**
 * @file
 * Microbenchmarks (google-benchmark) for the compile-time cost of the
 * partitioner's building blocks: Kruskal MST splitting, nested-set
 * construction, dependence analysis, and the full window sweep. These
 * quantify the "compilation complexity increases with the window"
 * trade-off of Section 4.4. BM_SweepRunner additionally measures the
 * end-to-end experiment sweep at 1..8 pool threads, making the
 * ThreadPool/SweepRunner scaling (and its overhead on a single
 * thread) directly observable.
 *
 * The custom main() additionally runs the split-plan memoization A/B
 * measurement (cache on vs. off on a periodic-access nest, plans
 * digest-checked for identity) and writes BENCH_partitioner.json —
 * the perf trajectory CI tracks. `--json-only` skips the
 * google-benchmark suite and runs just that measurement.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baseline/default_placement.h"
#include "driver/sweep.h"
#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "partition/splitter.h"
#include "sim/engine.h"
#include "sim/manycore.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;

/** Split one synthetic statement with @p operands leaves. */
void
BM_StatementSplit(benchmark::State &state)
{
    const auto operands = static_cast<int>(state.range(0));
    noc::MeshTopology mesh(6, 6);
    partition::StatementSplitter splitter(mesh);

    ir::ArrayTable arrays;
    std::string src = "array OUT[64];\n";
    std::string rhs;
    for (int i = 0; i < operands; ++i) {
        src += "array V" + std::to_string(i) + "[64];\n";
        if (i > 0)
            rhs += " + ";
        rhs += "V" + std::to_string(i) + "[i]";
    }
    src += "for i = 0..64 { OUT[i] = " + rhs + "; }";
    ir::LoopNest nest = ir::parseKernel(src, "micro", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());

    Rng rng(7);
    std::vector<partition::Location> locations(
        static_cast<std::size_t>(operands));
    for (auto &loc : locations) {
        loc.node = static_cast<noc::NodeId>(rng.nextBelow(36));
        loc.source = partition::LocationSource::L2Home;
    }

    for (auto _ : state) {
        auto result = splitter.split(sets, locations, /*store=*/17);
        benchmark::DoNotOptimize(result.plannedMovement);
    }
}
BENCHMARK(BM_StatementSplit)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_NestedSets(benchmark::State &state)
{
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array a[64]; array b[64]; array c[64]; array d[64];
        array e[64]; array f[64]; array g[64]; array x[64];
        for i = 0..64 {
          x[i] = a[i] * (b[i] + c[i]) + d[i] * (e[i] + f[i] + g[i]);
        })",
                                        "micro", arrays);
    for (auto _ : state) {
        ir::VarSet sets = ir::buildVarSets(nest.body().front());
        benchmark::DoNotOptimize(sets.leafCount());
    }
}
BENCHMARK(BM_NestedSets);

void
BM_DependenceAnalysis(benchmark::State &state)
{
    const auto window = static_cast<std::size_t>(state.range(0));
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[1024]; array B[1024]; array C[1024];
        for i = 0..1024 {
          S1: A[i] = B[i] + C[i];
          S2: C[i] = A[i] * B[i];
        })",
                                        "micro", arrays);
    std::vector<ir::StatementInstance> instances;
    for (std::int64_t k = 0; instances.size() < window; ++k) {
        for (const ir::Statement &stmt : nest.body()) {
            if (instances.size() >= window)
                break;
            ir::StatementInstance inst;
            inst.stmt = &stmt;
            inst.iter = {k};
            inst.iterationNumber = k;
            instances.push_back(inst);
        }
    }
    for (auto _ : state) {
        auto deps = ir::analyzeDependences(instances, arrays, true);
        benchmark::DoNotOptimize(deps.size());
    }
}
BENCHMARK(BM_DependenceAnalysis)->Arg(2)->Arg(4)->Arg(8);

/** Full planning pass (window sweep included) for a small nest. */
void
BM_FullPartition(benchmark::State &state)
{
    const auto max_window = static_cast<std::int32_t>(state.range(0));
    sim::ManycoreConfig config;
    sim::ManycoreSystem system(config);

    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[512]; array B[512]; array C[512]; array D[512];
        array E[512];
        for i = 0..512 {
          S1: A[i] = B[i] + C[i] + D[i] + E[i];
          S2: D[i] = C[i] * E[i];
        })",
                                        "micro", arrays);
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);

    for (auto _ : state) {
        partition::PartitionOptions options;
        options.maxWindowSize = max_window;
        partition::Partitioner partitioner(system, arrays, options);
        auto plan = partitioner.plan(nest, nodes);
        benchmark::DoNotOptimize(plan.tasks.size());
    }
}
BENCHMARK(BM_FullPartition)->Arg(1)->Arg(4)->Arg(8);

/** Raw ThreadPool dispatch/collect overhead per task. */
void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    support::ThreadPool pool(threads);
    for (auto _ : state) {
        std::vector<std::future<std::int64_t>> futures;
        futures.reserve(64);
        for (std::int64_t i = 0; i < 64; ++i)
            futures.push_back(pool.submit([i]() { return i * i; }));
        std::int64_t total = 0;
        for (auto &f : futures)
            total += f.get();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * End-to-end experiment sweep (2 small apps x 2 configs) through the
 * SweepRunner at varying thread counts: the scaling measurement behind
 * the NDP_BENCH_THREADS knob the figure harnesses expose.
 */
void
BM_SweepRunner(benchmark::State &state)
{
    const auto threads = static_cast<int>(state.range(0));
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water"), factory.build("lu")};
    driver::ExperimentConfig base;
    driver::ExperimentConfig oracle;
    oracle.partition.oracle = true;
    const std::vector<driver::ExperimentConfig> configs = {base,
                                                           oracle};
    for (auto _ : state) {
        driver::SweepRunner runner(threads);
        const auto grid = runner.runGrid(apps, configs);
        benchmark::DoNotOptimize(
            grid[0][0].result.optimizedMakespan);
    }
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/**
 * Order-dependent digest of an ExecutionPlan: every task field and
 * every InstanceStats field feeds an FNV-1a hash. Equal digests mean
 * the cache-on and cache-off plans are byte-identical.
 */
std::uint64_t
planDigest(const sim::ExecutionPlan &plan)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    const auto mixAccess = [&](const sim::MemAccess &a) {
        mix(a.addr);
        mix(a.size);
        mix(static_cast<std::uint64_t>(a.array));
    };
    mix(plan.tasks.size());
    for (const sim::Task &t : plan.tasks) {
        mix(static_cast<std::uint64_t>(t.id));
        mix(static_cast<std::uint64_t>(t.node));
        mix(t.reads.size());
        for (const sim::MemAccess &a : t.reads)
            mixAccess(a);
        mix(t.write.has_value());
        if (t.write)
            mixAccess(*t.write);
        mix(static_cast<std::uint64_t>(t.computeCost));
        mix(t.ops.size());
        for (ir::OpKind op : t.ops)
            mix(static_cast<std::uint64_t>(op));
        mix(t.deps.size());
        for (sim::TaskId d : t.deps)
            mix(static_cast<std::uint64_t>(d));
        mix(static_cast<std::uint64_t>(t.resultBytes));
        mix(static_cast<std::uint64_t>(t.statementIndex));
        mix(static_cast<std::uint64_t>(t.iterationNumber));
    }
    mix(plan.instances.size());
    for (const sim::InstanceStats &s : plan.instances) {
        mix(static_cast<std::uint64_t>(s.statementIndex));
        mix(static_cast<std::uint64_t>(s.iterationNumber));
        mix(static_cast<std::uint64_t>(s.dataMovement));
        mix(static_cast<std::uint64_t>(s.defaultDataMovement));
        mix(static_cast<std::uint64_t>(s.degreeOfParallelism));
        mix(static_cast<std::uint64_t>(s.synchronizations));
        mix(static_cast<std::uint64_t>(s.rawSynchronizations));
    }
    mix(static_cast<std::uint64_t>(plan.windowSize));
    return h;
}

/** One memoization mode's timing/counter results. */
struct MemoModeResult
{
    double nsPerInstance = 0.0;
    double hitRate = 0.0;
    std::int64_t plansComputed = 0;
    std::int64_t plansMemoized = 0;
    std::int64_t instancesPlanned = 0;
    std::uint64_t planDigest = 0;
};

/**
 * Time plan() calls on an already-profiled nest with memoization on
 * and off. The predictor was trained by the caller's default-plan
 * engine run; plan() itself is read-only on machine state, so every
 * repetition produces the identical plan. The two modes alternate
 * rep by rep and each reports its fastest rep: clock drift over the
 * measurement window then hits both modes alike instead of whichever
 * happened to run last.
 */
std::pair<MemoModeResult, MemoModeResult>
timePlanning(sim::ManycoreSystem &system, const ir::ArrayTable &arrays,
             const ir::LoopNest &nest,
             const std::vector<noc::NodeId> &nodes, int reps)
{
    partition::PartitionOptions options;
    // The balancer mutates trial state per split, so balanced splits
    // always bypass the cache; turn it off to measure the cache path.
    options.loadBalance = false;
    options.memoizeSplits = true;
    partition::Partitioner cached(system, arrays, options);
    options.memoizeSplits = false;
    partition::Partitioner uncached(system, arrays, options);

    const auto describe = [&](partition::Partitioner &p) {
        MemoModeResult r;
        // Warm-up rep: faults pages in, yields digest + counters.
        sim::ExecutionPlan plan = p.plan(nest, nodes);
        r.planDigest = planDigest(plan);
        r.plansComputed = p.report().compile.plansComputed;
        r.plansMemoized = p.report().compile.plansMemoized;
        r.instancesPlanned = p.report().compile.instancesPlanned;
        r.hitRate = p.report().compile.hitRate();
        return r;
    };
    MemoModeResult on = describe(cached);
    MemoModeResult off = describe(uncached);

    const auto one_rep = [&](partition::Partitioner &p) {
        const auto start = std::chrono::steady_clock::now();
        sim::ExecutionPlan plan = p.plan(nest, nodes);
        benchmark::DoNotOptimize(plan.tasks.data());
        return std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    double best_on = 0.0, best_off = 0.0;
    for (int i = 0; i < reps; ++i) {
        const double ns_on = one_rep(cached);
        const double ns_off = one_rep(uncached);
        if (i == 0 || ns_on < best_on)
            best_on = ns_on;
        if (i == 0 || ns_off < best_off)
            best_off = ns_off;
    }
    on.nsPerInstance =
        best_on / std::max<double>(
                      1.0, static_cast<double>(on.instancesPlanned));
    off.nsPerInstance =
        best_off / std::max<double>(
                       1.0, static_cast<double>(off.instancesPlanned));
    return {on, off};
}

/**
 * The BENCH_partitioner.json measurement: a periodic-access two-
 * statement nest (the SNUCA line->bank mapping makes the operand-
 * location signature periodic in the iteration number), profiled once
 * to train the miss predictor, then planned repeatedly with the
 * split-plan cache on and off.
 */
int
runMemoizationBench(const std::string &json_path)
{
    sim::ManycoreConfig config;
    sim::ManycoreSystem system(config);

    // Wide expressions with real reduction trees: many MST vertices
    // and recursive splitSet work per instance, the shape the paper's
    // stencils/solvers take and the case memoization targets.
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[4096]; array B[4096]; array C[4096]; array D[4096];
        array E[4096]; array F[4096]; array G[4096]; array H[4096];
        array K[4096];
        for i = 0..4096 {
          S1: A[i] = (B[i] + C[i]) * (D[i] + E[i]) +
                     (F[i] + G[i]) * (H[i] + K[i]);
          S2: D[i] = B[i] * C[i] + E[i] * F[i] + G[i] * H[i] + K[i];
        })",
                                        "periodic", arrays);

    baseline::DefaultPlacement placement(system, arrays);
    const std::vector<noc::NodeId> nodes =
        placement.assignIterations(nest);
    sim::ExecutionPlan default_plan = placement.buildPlan(nest, nodes);

    // Profiling pass: trains the L2 miss predictor the locator
    // consults, exactly as ExperimentRunner::runNest does.
    sim::EnergyParams energy;
    sim::ExecutionEngine engine(system, energy);
    engine.run(default_plan);

    // Diagnostic pass with the per-phase timers on: where the compile
    // loop spends its time (reported in the JSON, not used for the
    // headline ns/instance — the timers themselves read clocks).
    partition::CompileStats phases;
    partition::CompileStats phases_on;
    {
        partition::PartitionOptions options;
        options.loadBalance = false;
        options.memoizeSplits = false;
        options.collectCompileTimers = true;
        partition::Partitioner partitioner(system, arrays, options);
        partitioner.plan(nest, nodes);
        phases = partitioner.report().compile;
        options.memoizeSplits = true;
        partition::Partitioner cached(system, arrays, options);
        cached.plan(nest, nodes);
        phases_on = cached.report().compile;
    }

    const int reps = 9;
    const auto [on, off] =
        timePlanning(system, arrays, nest, nodes, reps);

    const bool identical = on.planDigest == off.planDigest;
    const double speedup =
        on.nsPerInstance <= 0.0 ? 0.0
                                : off.nsPerInstance / on.nsPerInstance;

    std::ofstream json(json_path);
    json << "{\n"
         << "  \"bench\": \"micro_partitioner\",\n"
         << "  \"workload\": \"periodic-2stmt-4096\",\n"
         << "  \"instances_planned\": " << on.instancesPlanned << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"cache_on\": {\n"
         << "    \"ns_per_instance\": " << on.nsPerInstance << ",\n"
         << "    \"hit_rate\": " << on.hitRate << ",\n"
         << "    \"plans_computed\": " << on.plansComputed << ",\n"
         << "    \"plans_memoized\": " << on.plansMemoized << "\n"
         << "  },\n"
         << "  \"cache_off\": {\n"
         << "    \"ns_per_instance\": " << off.nsPerInstance << ",\n"
         << "    \"plans_computed\": " << off.plansComputed << "\n"
         << "  },\n"
         << "  \"uncached_phase_ns\": {\n"
         << "    \"resolve\": " << phases.resolveNs << ",\n"
         << "    \"locate\": " << phases.locateNs << ",\n"
         << "    \"split\": " << phases.splitNs << ",\n"
         << "    \"sync\": " << phases.syncNs << ",\n"
         << "    \"total\": " << phases.totalNs << "\n"
         << "  },\n"
         << "  \"cached_phase_ns\": {\n"
         << "    \"resolve\": " << phases_on.resolveNs << ",\n"
         << "    \"locate\": " << phases_on.locateNs << ",\n"
         << "    \"split\": " << phases_on.splitNs << ",\n"
         << "    \"sync\": " << phases_on.syncNs << ",\n"
         << "    \"total\": " << phases_on.totalNs << "\n"
         << "  },\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"plans_identical\": " << (identical ? "true" : "false")
         << "\n"
         << "}\n";
    json.close();

    std::cerr << "[memo] " << json_path << ": " << on.nsPerInstance
              << " ns/instance cached vs " << off.nsPerInstance
              << " uncached (speedup x" << speedup << ", hit rate "
              << 100.0 * on.hitRate << "%, plans "
              << (identical ? "identical" : "DIFFER") << ")\n";
    return identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json_only = false;
    std::string json_path = "BENCH_partitioner.json";
    std::vector<char *> bench_args;
    bench_args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json-only") == 0)
            json_only = true;
        else if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else if (std::strncmp(argv[i], "--verify", 8) == 0)
            ; // static verification runs inside the driver, not here
        else
            bench_args.push_back(argv[i]);
    }

    if (!json_only) {
        int bench_argc = static_cast<int>(bench_args.size());
        benchmark::Initialize(&bench_argc, bench_args.data());
        if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                                   bench_args.data()))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
    }

    return runMemoizationBench(json_path);
}
