/**
 * @file
 * Microbenchmarks (google-benchmark) for the compile-time cost of the
 * partitioner's building blocks: Kruskal MST splitting, nested-set
 * construction, dependence analysis, and the full window sweep. These
 * quantify the "compilation complexity increases with the window"
 * trade-off of Section 4.4. BM_SweepRunner additionally measures the
 * end-to-end experiment sweep at 1..8 pool threads, making the
 * ThreadPool/SweepRunner scaling (and its overhead on a single
 * thread) directly observable.
 */

#include <benchmark/benchmark.h>

#include "baseline/default_placement.h"
#include "driver/sweep.h"
#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "partition/splitter.h"
#include "sim/manycore.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;

/** Split one synthetic statement with @p operands leaves. */
void
BM_StatementSplit(benchmark::State &state)
{
    const auto operands = static_cast<int>(state.range(0));
    noc::MeshTopology mesh(6, 6);
    partition::StatementSplitter splitter(mesh);

    ir::ArrayTable arrays;
    std::string src = "array OUT[64];\n";
    std::string rhs;
    for (int i = 0; i < operands; ++i) {
        src += "array V" + std::to_string(i) + "[64];\n";
        if (i > 0)
            rhs += " + ";
        rhs += "V" + std::to_string(i) + "[i]";
    }
    src += "for i = 0..64 { OUT[i] = " + rhs + "; }";
    ir::LoopNest nest = ir::parseKernel(src, "micro", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());

    Rng rng(7);
    std::vector<partition::Location> locations(
        static_cast<std::size_t>(operands));
    for (auto &loc : locations) {
        loc.node = static_cast<noc::NodeId>(rng.nextBelow(36));
        loc.source = partition::LocationSource::L2Home;
    }

    for (auto _ : state) {
        auto result = splitter.split(sets, locations, /*store=*/17);
        benchmark::DoNotOptimize(result.plannedMovement);
    }
}
BENCHMARK(BM_StatementSplit)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void
BM_NestedSets(benchmark::State &state)
{
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array a[64]; array b[64]; array c[64]; array d[64];
        array e[64]; array f[64]; array g[64]; array x[64];
        for i = 0..64 {
          x[i] = a[i] * (b[i] + c[i]) + d[i] * (e[i] + f[i] + g[i]);
        })",
                                        "micro", arrays);
    for (auto _ : state) {
        ir::VarSet sets = ir::buildVarSets(nest.body().front());
        benchmark::DoNotOptimize(sets.leafCount());
    }
}
BENCHMARK(BM_NestedSets);

void
BM_DependenceAnalysis(benchmark::State &state)
{
    const auto window = static_cast<std::size_t>(state.range(0));
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[1024]; array B[1024]; array C[1024];
        for i = 0..1024 {
          S1: A[i] = B[i] + C[i];
          S2: C[i] = A[i] * B[i];
        })",
                                        "micro", arrays);
    std::vector<ir::StatementInstance> instances;
    for (std::int64_t k = 0; instances.size() < window; ++k) {
        for (const ir::Statement &stmt : nest.body()) {
            if (instances.size() >= window)
                break;
            ir::StatementInstance inst;
            inst.stmt = &stmt;
            inst.iter = {k};
            inst.iterationNumber = k;
            instances.push_back(inst);
        }
    }
    for (auto _ : state) {
        auto deps = ir::analyzeDependences(instances, arrays, true);
        benchmark::DoNotOptimize(deps.size());
    }
}
BENCHMARK(BM_DependenceAnalysis)->Arg(2)->Arg(4)->Arg(8);

/** Full planning pass (window sweep included) for a small nest. */
void
BM_FullPartition(benchmark::State &state)
{
    const auto max_window = static_cast<std::int32_t>(state.range(0));
    sim::ManycoreConfig config;
    sim::ManycoreSystem system(config);

    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[512]; array B[512]; array C[512]; array D[512];
        array E[512];
        for i = 0..512 {
          S1: A[i] = B[i] + C[i] + D[i] + E[i];
          S2: D[i] = C[i] * E[i];
        })",
                                        "micro", arrays);
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);

    for (auto _ : state) {
        partition::PartitionOptions options;
        options.maxWindowSize = max_window;
        partition::Partitioner partitioner(system, arrays, options);
        auto plan = partitioner.plan(nest, nodes);
        benchmark::DoNotOptimize(plan.tasks.size());
    }
}
BENCHMARK(BM_FullPartition)->Arg(1)->Arg(4)->Arg(8);

/** Raw ThreadPool dispatch/collect overhead per task. */
void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    support::ThreadPool pool(threads);
    for (auto _ : state) {
        std::vector<std::future<std::int64_t>> futures;
        futures.reserve(64);
        for (std::int64_t i = 0; i < 64; ++i)
            futures.push_back(pool.submit([i]() { return i * i; }));
        std::int64_t total = 0;
        for (auto &f : futures)
            total += f.get();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/**
 * End-to-end experiment sweep (2 small apps x 2 configs) through the
 * SweepRunner at varying thread counts: the scaling measurement behind
 * the NDP_BENCH_THREADS knob the figure harnesses expose.
 */
void
BM_SweepRunner(benchmark::State &state)
{
    const auto threads = static_cast<int>(state.range(0));
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water"), factory.build("lu")};
    driver::ExperimentConfig base;
    driver::ExperimentConfig oracle;
    oracle.partition.oracle = true;
    const std::vector<driver::ExperimentConfig> configs = {base,
                                                           oracle};
    for (auto _ : state) {
        driver::SweepRunner runner(threads);
        const auto grid = runner.runGrid(apps, configs);
        benchmark::DoNotOptimize(
            grid[0][0].result.optimizedMakespan);
    }
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
