/**
 * @file
 * Graceful-degradation ablation: the paper evaluates a fully healthy
 * SNUCA mesh; this harness asks how data-movement-aware partitioning
 * degrades when the chip does. A driver::FaultCampaign Monte-Carlo
 * sweeps node/link fault rates on a subset of the paper's apps —
 * deterministic per-trial seeds, disconnected injections retried and
 * counted — and reports execution-time slowdown, data-movement
 * inflation, and L1 hit rates versus the healthy reference, for the
 * baseline placement and the partitioned plan side by side.
 *
 * Everything on stdout (and BENCH_faults.json) is bit-identical for
 * any NDP_BENCH_THREADS; timing goes to stderr as usual.
 */

#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "bench_common.h"
#include "driver/fault_campaign.h"

namespace {

/** Fixed-precision number formatting keeps the JSON byte-stable. */
std::string
num(double value)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(4) << value;
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);

    std::string json_path = "BENCH_faults.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
    }

    bench::banner("ablation_faults",
                  "graceful degradation under injected faults");

    driver::FaultCampaignConfig campaign_cfg;
    campaign_cfg.nodeFaultRates = {0.02, 0.05, 0.10};
    campaign_cfg.trialsPerRate = 3;
    if (bench::verifyOverride())
        campaign_cfg.experiment.partition.verifyLevel =
            *bench::verifyOverride();
    const driver::FaultCampaign campaign(campaign_cfg);

    // The campaign multiplies every run by rates x trials, so sweep a
    // representative app subset instead of all twelve.
    std::vector<workloads::Workload> apps = bench::allApps();
    if (apps.size() > 3)
        apps.resize(3);

    driver::SweepRunner runner(bench::benchThreads());

    std::vector<driver::FaultCampaignResult> results;
    double wall_total = 0.0;
    for (const workloads::Workload &app : apps) {
        results.push_back(campaign.run(app, runner));
        wall_total += runner.stats().wallSeconds;
        results.back().printReport(std::cout);
        std::cout << "\n";
    }

    // ---- BENCH_faults.json: the degradation trajectory CI tracks.
    std::ofstream json(json_path);
    json << "{\n  \"scale\": " << bench::benchScale()
         << ",\n  \"trials_per_rate\": " << campaign_cfg.trialsPerRate
         << ",\n  \"apps\": [\n";
    for (std::size_t a = 0; a < results.size(); ++a) {
        const driver::FaultCampaignResult &res = results[a];
        json << "    {\n      \"app\": \"" << res.app << "\",\n"
             << "      \"healthy_exec_reduction_pct\": "
             << num(res.healthy.execTimeReductionPct()) << ",\n"
             << "      \"total_retries\": " << res.totalRetries
             << ",\n      \"total_abandoned\": " << res.totalAbandoned
             << ",\n      \"rates\": [\n";
        for (std::size_t r = 0; r < res.rates.size(); ++r) {
            const driver::FaultRateResult &rate = res.rates[r];
            const double healthy_def =
                static_cast<double>(res.healthy.defaultMakespan);
            const double healthy_opt =
                static_cast<double>(res.healthy.optimizedMakespan);
            json << "        {\"node_fault_rate\": "
                 << num(rate.nodeFaultRate)
                 << ", \"completed\": " << rate.completedTrials()
                 << ", \"retries\": " << rate.retries
                 << ", \"abandoned\": " << rate.abandoned
                 << ", \"default_slowdown_pct\": "
                 << num(healthy_def <= 0.0
                            ? 0.0
                            : 100.0 *
                                  (rate.meanDefaultMakespan -
                                   healthy_def) /
                                  healthy_def)
                 << ", \"optimized_slowdown_pct\": "
                 << num(healthy_opt <= 0.0
                            ? 0.0
                            : 100.0 *
                                  (rate.meanOptimizedMakespan -
                                   healthy_opt) /
                                  healthy_opt)
                 << ", \"exec_reduction_pct\": "
                 << num(rate.meanExecReductionPct)
                 << ", \"optimized_l1_hit_rate\": "
                 << num(rate.meanOptimizedL1HitRate) << "}"
                 << (r + 1 < res.rates.size() ? "," : "") << "\n";
        }
        json << "      ]\n    }"
             << (a + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    json.close();

    std::clog << "[faults] campaigns over " << apps.size()
              << " apps took " << wall_total << " s; wrote "
              << json_path << "\n";
    return 0;
}
