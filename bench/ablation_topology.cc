/**
 * @file
 * Topology ablation: Section 2 claims the approach "can work with any
 * type of on-chip network topology". This harness runs the full
 * pipeline on the plain 2D mesh and on a 2D torus (wrap-around links):
 * the torus shortens worst-case distances, so the default gets faster
 * and the absolute movement drops — but the partitioner's relative
 * improvement should survive, which is the claim under test.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("ablation_topology", "Section 2 topology template");

    driver::ExperimentConfig mesh_cfg;
    driver::ExperimentRunner mesh(mesh_cfg);

    driver::ExperimentConfig torus_cfg;
    torus_cfg.machine.torus = true;
    driver::ExperimentRunner torus(torus_cfg);

    Table table({"app", "mesh improvement%", "torus improvement%",
                 "torus default speedup%"});
    std::vector<double> v_mesh, v_torus;
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto m = mesh.runApp(w);
        const auto t = torus.runApp(w);
        v_mesh.push_back(m.execTimeReductionPct());
        v_torus.push_back(t.execTimeReductionPct());
        table.row()
            .cell(w.name)
            .cell(v_mesh.back())
            .cell(v_torus.back())
            .cell(percentReduction(
                static_cast<double>(m.defaultMakespan),
                static_cast<double>(t.defaultMakespan)));
    });
    table.row()
        .cell("geomean")
        .cell(driver::geomeanPct(v_mesh))
        .cell(driver::geomeanPct(v_torus))
        .cell("");
    table.print(std::cout);
    return 0;
}
