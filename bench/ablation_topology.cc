/**
 * @file
 * Topology ablation: Section 2 claims the approach "can work with any
 * type of on-chip network topology". This harness runs the full
 * pipeline on the plain 2D mesh and on a 2D torus (wrap-around links):
 * the torus shortens worst-case distances, so the default gets faster
 * and the absolute movement drops — but the partitioner's relative
 * improvement should survive, which is the claim under test.
 *
 * Both configs for all apps fan out across NDP_BENCH_THREADS workers;
 * the table is bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    bench::banner("ablation_topology", "Section 2 topology template");

    driver::ExperimentConfig mesh_cfg;

    driver::ExperimentConfig torus_cfg;
    torus_cfg.machine.torus = true;

    const bench::SweepOutcome sweep =
        bench::runSweep({mesh_cfg, torus_cfg});

    Table table({"app", "mesh improvement%", "torus improvement%",
                 "torus default speedup%"});
    std::vector<double> v_mesh, v_torus;
    for (std::size_t a = 0; a < sweep.apps.size(); ++a) {
        const driver::AppResult &m = sweep.grid[a][0].result;
        const driver::AppResult &t = sweep.grid[a][1].result;
        v_mesh.push_back(m.execTimeReductionPct());
        v_torus.push_back(t.execTimeReductionPct());
        table.row()
            .cell(sweep.apps[a].name)
            .cell(v_mesh.back())
            .cell(v_torus.back())
            .cell(percentReduction(
                static_cast<double>(m.defaultMakespan),
                static_cast<double>(t.defaultMakespan)));
    }
    table.row()
        .cell("geomean")
        .cell(driver::geomeanPct(v_mesh))
        .cell(driver::geomeanPct(v_torus))
        .cell("");
    table.print(std::cout);

    bench::printTiming({"mesh", "torus"}, sweep);
    return 0;
}
