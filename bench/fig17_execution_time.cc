/**
 * @file
 * Figure 17: percentage reduction in execution time over the default
 * (profile-guided, locality-optimized) placement, for (1) our
 * compiler approach, (2) the ideal-network scenario (all messages take
 * 0 cycles), and (3) ideal data analysis (perfect locations and
 * disambiguation). Paper geomeans: 18.4% / 24.4% / 22.3%.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig17_execution_time", "Figure 17");

    driver::ExperimentRunner ours;

    driver::ExperimentConfig ideal_net_cfg;
    ideal_net_cfg.optimizeComputation = false;
    ideal_net_cfg.idealNetwork = true;
    driver::ExperimentRunner ideal_net(ideal_net_cfg);

    driver::ExperimentConfig oracle_cfg;
    oracle_cfg.partition.oracle = true;
    driver::ExperimentRunner ideal_data(oracle_cfg);

    Table table({"app", "ours%", "ideal-network%", "ideal-data%"});
    std::vector<double> v_ours, v_net, v_data;
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto a = ours.runApp(w);
        const auto b = ideal_net.runApp(w);
        const auto c = ideal_data.runApp(w);
        v_ours.push_back(a.execTimeReductionPct());
        v_net.push_back(b.execTimeReductionPct());
        v_data.push_back(c.execTimeReductionPct());
        table.row()
            .cell(w.name)
            .cell(v_ours.back())
            .cell(v_net.back())
            .cell(v_data.back());
    });
    table.row()
        .cell("geomean")
        .cell(driver::geomeanPct(v_ours))
        .cell(driver::geomeanPct(v_net))
        .cell(driver::geomeanPct(v_data));
    table.print(std::cout);
    return 0;
}
