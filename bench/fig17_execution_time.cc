/**
 * @file
 * Figure 17: percentage reduction in execution time over the default
 * (profile-guided, locality-optimized) placement, for (1) our
 * compiler approach, (2) the ideal-network scenario (all messages take
 * 0 cycles), and (3) ideal data analysis (perfect locations and
 * disambiguation). Paper geomeans: 18.4% / 24.4% / 22.3%.
 *
 * All 36 (app, config) runs fan out across NDP_BENCH_THREADS workers;
 * the table is bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig17_execution_time", "Figure 17");

    driver::ExperimentConfig ours_cfg;

    driver::ExperimentConfig ideal_net_cfg;
    ideal_net_cfg.optimizeComputation = false;
    ideal_net_cfg.idealNetwork = true;

    driver::ExperimentConfig oracle_cfg;
    oracle_cfg.partition.oracle = true;

    const std::vector<std::string> labels = {"ours", "ideal-network",
                                             "ideal-data"};
    const bench::SweepOutcome sweep =
        bench::runSweep({ours_cfg, ideal_net_cfg, oracle_cfg});

    Table table({"app", "ours%", "ideal-network%", "ideal-data%"});
    std::vector<double> v_ours, v_net, v_data;
    for (std::size_t a = 0; a < sweep.apps.size(); ++a) {
        const std::vector<driver::SweepCell> &cells = sweep.grid[a];
        v_ours.push_back(cells[0].result.execTimeReductionPct());
        v_net.push_back(cells[1].result.execTimeReductionPct());
        v_data.push_back(cells[2].result.execTimeReductionPct());
        table.row()
            .cell(sweep.apps[a].name)
            .cell(v_ours.back())
            .cell(v_net.back())
            .cell(v_data.back());
    }
    table.row()
        .cell("geomean")
        .cell(driver::geomeanPct(v_ours))
        .cell(driver::geomeanPct(v_net))
        .cell(driver::geomeanPct(v_data));
    table.print(std::cout);

    bench::timingTable(labels, sweep.apps, sweep.grid);
    bench::timingFooter(sweep.stats);
    return 0;
}
