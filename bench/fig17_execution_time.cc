/**
 * @file
 * Figure 17: percentage reduction in execution time over the default
 * (profile-guided, locality-optimized) placement, for (1) our
 * compiler approach, (2) the ideal-network scenario (all messages take
 * 0 cycles), and (3) ideal data analysis (perfect locations and
 * disambiguation). Paper geomeans: 18.4% / 24.4% / 22.3%.
 *
 * All 36 (app, config) runs fan out across NDP_BENCH_THREADS workers
 * (and each run's loop nests across the same pool); the table is
 * bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig17_execution_time", "Figure 17");

    driver::ExperimentConfig ours_cfg;

    driver::ExperimentConfig ideal_net_cfg;
    ideal_net_cfg.optimizeComputation = false;
    ideal_net_cfg.idealNetwork = true;

    driver::ExperimentConfig oracle_cfg;
    oracle_cfg.partition.oracle = true;

    const bench::SweepOutcome sweep =
        bench::runSweep({ours_cfg, ideal_net_cfg, oracle_cfg});

    const auto exec_reduction = [](const AppResult &r) {
        return r.execTimeReductionPct();
    };
    bench::printMetricTable(
        sweep, {{"ours%", 0, exec_reduction,
                 bench::MetricColumn::Summary::Geomean},
                {"ideal-network%", 1, exec_reduction,
                 bench::MetricColumn::Summary::Geomean},
                {"ideal-data%", 2, exec_reduction,
                 bench::MetricColumn::Summary::Geomean}});

    bench::printTiming({"ours", "ideal-network", "ideal-data"}, sweep);
    return 0;
}
