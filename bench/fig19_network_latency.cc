/**
 * @file
 * Figure 19: reduction in average and maximum on-chip network message
 * latency (the maximum being the congestion proxy) brought by the
 * optimized schedule. The paper reports reductions for every
 * application — i.e. the approach adds no network bottleneck.
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig19_network_latency", "Figure 19");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep,
        {{"avg latency reduction%", 0,
          [](const AppResult &r) {
              return r.avgNetLatencyReductionPct();
          }},
         {"max latency reduction%", 0, [](const AppResult &r) {
              return r.maxNetLatencyReductionPct();
          }}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
