/**
 * @file
 * Figure 19: reduction in average and maximum on-chip network message
 * latency (the maximum being the congestion proxy) brought by the
 * optimized schedule. The paper reports reductions for every
 * application — i.e. the approach adds no network bottleneck.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig19_network_latency", "Figure 19");

    driver::ExperimentRunner runner;
    Table table({"app", "avg latency reduction%",
                 "max latency reduction%"});
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        table.row()
            .cell(w.name)
            .cell(result.avgNetLatencyReductionPct())
            .cell(result.maxNetLatencyReductionPct());
    });
    table.print(std::cout);
    return 0;
}
