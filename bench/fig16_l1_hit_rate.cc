/**
 * @file
 * Figure 16: improvement in L1 hit rate over the default placement,
 * from scheduling reuse-sharing subcomputations onto the nodes that
 * already hold the data (Section 4.3's multi-statement windows).
 * Paper: 11.6% average improvement.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig16_l1_hit_rate", "Figure 16");

    driver::ExperimentRunner runner;
    Table table({"app", "default L1", "optimized L1", "improvement%"});
    std::vector<double> improvements;
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        improvements.push_back(result.l1HitRateImprovementPct());
        table.row()
            .cell(w.name)
            .cell(result.defaultL1HitRate, 3)
            .cell(result.optimizedL1HitRate, 3)
            .cell(improvements.back());
    });
    table.row().cell("mean").cell("").cell("").cell(
        arithmeticMean(improvements));
    table.print(std::cout);
    return 0;
}
