/**
 * @file
 * Figure 16: improvement in L1 hit rate over the default placement,
 * from scheduling reuse-sharing subcomputations onto the nodes that
 * already hold the data (Section 4.3's multi-statement windows).
 * Paper: 11.6% average improvement.
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig16_l1_hit_rate", "Figure 16");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep,
        {{"default L1", 0,
          [](const AppResult &r) { return r.defaultL1HitRate; },
          bench::MetricColumn::Summary::None, 3},
         {"optimized L1", 0,
          [](const AppResult &r) { return r.optimizedL1HitRate; },
          bench::MetricColumn::Summary::None, 3},
         {"improvement%", 0,
          [](const AppResult &r) {
              return r.l1HitRateImprovementPct();
          },
          bench::MetricColumn::Summary::Mean}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
