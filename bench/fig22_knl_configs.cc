/**
 * @file
 * Figure 22: normalized execution time across the KNL-style
 * configuration grid — cluster mode (A: all-to-all, B: quadrant, C:
 * SNC-4) x memory mode (X: flat, Y: cache, Z: hybrid) x code version
 * (1: original, 2: optimized). All values are normalized against the
 * default configuration (B,X,1); lower is better.
 *
 * Paper observations to check: the optimized code wins in every
 * configuration; the cluster-mode differences shrink under our
 * approach; flat beats cache mode; (C,X,2) is the best configuration;
 * and (A,X,2) outperforms (C,X,1).
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig22_knl_configs", "Figure 22");

    struct Cluster
    {
        char tag;
        mem::ClusterMode mode;
    };
    struct Memory
    {
        char tag;
        mem::MemoryMode mode;
    };
    const Cluster clusters[] = {
        {'A', mem::ClusterMode::AllToAll},
        {'B', mem::ClusterMode::Quadrant},
        {'C', mem::ClusterMode::SNC4},
    };
    const Memory memories[] = {
        {'X', mem::MemoryMode::Flat},
        {'Y', mem::MemoryMode::Cache},
        {'Z', mem::MemoryMode::Hybrid},
    };

    std::vector<std::string> headers = {"app"};
    for (const Cluster &c : clusters) {
        for (const Memory &m : memories) {
            for (int v = 1; v <= 2; ++v) {
                headers.push_back(std::string(1, c.tag) + "," +
                                  std::string(1, m.tag) + "," +
                                  std::to_string(v));
            }
        }
    }
    Table table(headers);

    std::vector<double> norm_sum(headers.size() - 1, 0.0);
    int app_count = 0;

    bench::forEachApp([&](const workloads::Workload &w) {
        // Reference: (B,X,1) — quadrant, flat, original code.
        driver::ExperimentConfig ref_cfg;
        ref_cfg.machine.clusterMode = mem::ClusterMode::Quadrant;
        ref_cfg.machine.memoryMode = mem::MemoryMode::Flat;
        driver::ExperimentRunner ref_runner(ref_cfg);
        const auto ref = ref_runner.runApp(w);
        const double base =
            static_cast<double>(ref.defaultMakespan);

        table.row().cell(w.name);
        std::size_t col = 0;
        for (const Cluster &c : clusters) {
            for (const Memory &m : memories) {
                driver::ExperimentConfig cfg;
                cfg.machine.clusterMode = c.mode;
                cfg.machine.memoryMode = m.mode;
                driver::ExperimentRunner runner(cfg);
                const auto result = runner.runApp(w);
                const double orig =
                    static_cast<double>(result.defaultMakespan) / base;
                const double opt =
                    static_cast<double>(result.optimizedMakespan) /
                    base;
                table.cell(orig, 3).cell(opt, 3);
                norm_sum[col++] += orig;
                norm_sum[col++] += opt;
            }
        }
        ++app_count;
    });

    table.row().cell("mean");
    for (double sum : norm_sum)
        table.cell(sum / std::max(1, app_count), 3);
    table.print(std::cout);
    return 0;
}
