/**
 * @file
 * Figure 22: normalized execution time across the KNL-style
 * configuration grid — cluster mode (A: all-to-all, B: quadrant, C:
 * SNC-4) x memory mode (X: flat, Y: cache, Z: hybrid) x code version
 * (1: original, 2: optimized). All values are normalized against the
 * default configuration (B,X,1); lower is better.
 *
 * Paper observations to check: the optimized code wins in every
 * configuration; the cluster-mode differences shrink under our
 * approach; flat beats cache mode; (C,X,2) is the best configuration;
 * and (A,X,2) outperforms (C,X,1).
 *
 * The heaviest sweep in the suite: 12 apps x 9 machine configs fan out
 * across NDP_BENCH_THREADS workers. The (B,X,1) reference is the
 * deterministic default run of the (B,X) cell itself, so no separate
 * reference experiment is needed. The table is bit-identical for any
 * thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    bench::banner("fig22_knl_configs", "Figure 22");

    struct Cluster
    {
        char tag;
        mem::ClusterMode mode;
    };
    struct Memory
    {
        char tag;
        mem::MemoryMode mode;
    };
    const Cluster clusters[] = {
        {'A', mem::ClusterMode::AllToAll},
        {'B', mem::ClusterMode::Quadrant},
        {'C', mem::ClusterMode::SNC4},
    };
    const Memory memories[] = {
        {'X', mem::MemoryMode::Flat},
        {'Y', mem::MemoryMode::Cache},
        {'Z', mem::MemoryMode::Hybrid},
    };

    std::vector<std::string> headers = {"app"};
    std::vector<std::string> cfg_labels;
    std::vector<driver::ExperimentConfig> configs;
    std::size_t ref_index = 0; // the (B,X) cell
    for (const Cluster &c : clusters) {
        for (const Memory &m : memories) {
            const std::string label = std::string(1, c.tag) + "," +
                                      std::string(1, m.tag);
            for (int v = 1; v <= 2; ++v)
                headers.push_back(label + "," + std::to_string(v));
            cfg_labels.push_back(label);

            driver::ExperimentConfig cfg;
            cfg.machine.clusterMode = c.mode;
            cfg.machine.memoryMode = m.mode;
            if (c.mode == mem::ClusterMode::Quadrant &&
                m.mode == mem::MemoryMode::Flat) {
                ref_index = configs.size();
            }
            configs.push_back(cfg);
        }
    }
    Table table(headers);

    const bench::SweepOutcome sweep = bench::runSweep(configs);

    std::vector<double> norm_sum(headers.size() - 1, 0.0);
    int app_count = 0;
    for (std::size_t a = 0; a < sweep.apps.size(); ++a) {
        const std::vector<driver::SweepCell> &cells = sweep.grid[a];
        const double base = static_cast<double>(
            cells[ref_index].result.defaultMakespan);

        table.row().cell(sweep.apps[a].name);
        std::size_t col = 0;
        for (const driver::SweepCell &cell : cells) {
            const double orig =
                static_cast<double>(cell.result.defaultMakespan) /
                base;
            const double opt =
                static_cast<double>(cell.result.optimizedMakespan) /
                base;
            table.cell(orig, 3).cell(opt, 3);
            norm_sum[col++] += orig;
            norm_sum[col++] += opt;
        }
        ++app_count;
    }

    table.row().cell("mean");
    for (double sum : norm_sum)
        table.cell(sum / std::max(1, app_count), 3);
    table.print(std::cout);

    bench::printTiming(cfg_labels, sweep);
    return 0;
}
