/**
 * @file
 * Ablation of the design choices DESIGN.md calls out, beyond the
 * paper's own figures: execution-time improvement with each mechanism
 * disabled in isolation —
 *
 *   full        : the complete approach
 *   -reuse      : variable2node map off (reuse-agnostic windows; the
 *                 paper reports this costs ~11% of the benefit)
 *   -balance    : load-balancing veto off
 *   -syncmin    : transitive synchronisation minimisation off
 *   -selection  : profile-guided plan selection off (raw partitioner)
 *   window=1    : single-statement optimization only (no windows)
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("ablation_design_choices", "DESIGN.md ablations");

    driver::ExperimentConfig full;

    driver::ExperimentConfig no_reuse = full;
    no_reuse.partition.exploitReuse = false;

    driver::ExperimentConfig no_balance = full;
    no_balance.partition.loadBalance = false;

    driver::ExperimentConfig no_syncmin = full;
    no_syncmin.partition.minimizeSyncs = false;

    driver::ExperimentConfig no_selection = full;
    no_selection.planSelection = false;

    driver::ExperimentConfig window1 = full;
    window1.partition.fixedWindowSize = 1;

    struct Variant
    {
        const char *name;
        driver::ExperimentRunner runner;
    };
    Variant variants[] = {
        {"full", driver::ExperimentRunner(full)},
        {"-reuse", driver::ExperimentRunner(no_reuse)},
        {"-balance", driver::ExperimentRunner(no_balance)},
        {"-syncmin", driver::ExperimentRunner(no_syncmin)},
        {"-selection", driver::ExperimentRunner(no_selection)},
        {"window=1", driver::ExperimentRunner(window1)},
    };

    std::vector<std::string> headers = {"app"};
    for (const Variant &v : variants)
        headers.push_back(v.name);
    Table table(headers);

    std::vector<std::vector<double>> columns(std::size(variants));
    bench::forEachApp([&](const workloads::Workload &w) {
        table.row().cell(w.name);
        for (std::size_t v = 0; v < std::size(variants); ++v) {
            const double pct =
                variants[v].runner.runApp(w).execTimeReductionPct();
            columns[v].push_back(pct);
            table.cell(pct);
        }
    });
    table.row().cell("geomean");
    for (const auto &col : columns)
        table.cell(driver::geomeanPct(col));
    table.print(std::cout);
    return 0;
}
