/**
 * @file
 * Ablation of the design choices DESIGN.md calls out, beyond the
 * paper's own figures: execution-time improvement with each mechanism
 * disabled in isolation —
 *
 *   full        : the complete approach
 *   -reuse      : variable2node map off (reuse-agnostic windows; the
 *                 paper reports this costs ~11% of the benefit)
 *   -balance    : load-balancing veto off
 *   -syncmin    : transitive synchronisation minimisation off
 *   -selection  : profile-guided plan selection off (raw partitioner)
 *   window=1    : single-statement optimization only (no windows)
 *
 * All 72 (app, variant) runs fan out across NDP_BENCH_THREADS workers
 * (and each run's loop nests across the same pool); the table is
 * bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("ablation_design_choices", "DESIGN.md ablations");

    driver::ExperimentConfig full;

    driver::ExperimentConfig no_reuse = full;
    no_reuse.partition.exploitReuse = false;

    driver::ExperimentConfig no_balance = full;
    no_balance.partition.loadBalance = false;

    driver::ExperimentConfig no_syncmin = full;
    no_syncmin.partition.minimizeSyncs = false;

    driver::ExperimentConfig no_selection = full;
    no_selection.planSelection = false;

    driver::ExperimentConfig window1 = full;
    window1.partition.fixedWindowSize = 1;

    const std::vector<std::string> labels = {
        "full",       "-reuse",     "-balance",
        "-syncmin",   "-selection", "window=1"};
    const bench::SweepOutcome sweep = bench::runSweep(
        {full, no_reuse, no_balance, no_syncmin, no_selection,
         window1});

    std::vector<bench::MetricColumn> columns;
    for (std::size_t c = 0; c < labels.size(); ++c)
        columns.push_back({labels[c], c,
                           [](const AppResult &r) {
                               return r.execTimeReductionPct();
                           },
                           bench::MetricColumn::Summary::Geomean});
    bench::printMetricTable(sweep, columns);

    bench::printTiming(labels, sweep);
    return 0;
}
