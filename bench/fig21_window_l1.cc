/**
 * @file
 * Figure 21: the L1 hit-rate improvement behind Figure 20's execution
 * times, for each fixed window size. The paper observes the execution
 * time results follow the L1 hit-rate trend.
 *
 * All 96 (app, window) runs fan out across NDP_BENCH_THREADS workers
 * (and each run's loop nests across the same pool); the table is
 * bit-identical for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig21_window_l1", "Figure 21");

    std::vector<driver::ExperimentConfig> configs;
    std::vector<std::string> labels;
    for (int w = 1; w <= 8; ++w) {
        driver::ExperimentConfig cfg;
        cfg.partition.fixedWindowSize = w;
        configs.push_back(cfg);
        labels.push_back("w=" + std::to_string(w));
    }

    const bench::SweepOutcome sweep = bench::runSweep(configs);

    std::vector<bench::MetricColumn> columns;
    for (std::size_t c = 0; c < configs.size(); ++c)
        columns.push_back({labels[c], c, [](const AppResult &r) {
                               return r.l1HitRateImprovementPct();
                           }});
    bench::printMetricTable(sweep, columns);

    bench::printTiming(labels, sweep);
    return 0;
}
