/**
 * @file
 * Figure 21: the L1 hit-rate improvement behind Figure 20's execution
 * times, for each fixed window size. The paper observes the execution
 * time results follow the L1 hit-rate trend.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig21_window_l1", "Figure 21");

    std::vector<std::string> headers = {"app"};
    for (int w = 1; w <= 8; ++w)
        headers.push_back("w=" + std::to_string(w));
    Table table(headers);

    std::vector<driver::ExperimentRunner> fixed;
    for (int w = 1; w <= 8; ++w) {
        driver::ExperimentConfig cfg;
        cfg.partition.fixedWindowSize = w;
        fixed.emplace_back(cfg);
    }

    bench::forEachApp([&](const workloads::Workload &w) {
        table.row().cell(w.name);
        for (auto &runner : fixed)
            table.cell(runner.runApp(w).l1HitRateImprovementPct());
    });
    table.print(std::cout);
    return 0;
}
