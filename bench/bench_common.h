#ifndef NDP_BENCH_BENCH_COMMON_H
#define NDP_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared scaffolding for the figure/table reproduction harnesses: a
 * common workload scale (overridable via NDP_BENCH_SCALE), per-app
 * iteration, and uniform headers so outputs are diffable.
 */

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace ndp::bench {

/** Problem scale: NDP_BENCH_SCALE env var or a fast default. */
inline std::int64_t
benchScale()
{
    if (const char *env = std::getenv("NDP_BENCH_SCALE")) {
        const long long v = std::atoll(env);
        if (v >= 256)
            return v;
    }
    return 2048;
}

/** Run @p fn on each of the paper's 12 applications. */
inline void
forEachApp(const std::function<void(const workloads::Workload &)> &fn)
{
    workloads::WorkloadFactory factory(benchScale());
    for (const std::string &name :
         workloads::WorkloadFactory::appNames()) {
        fn(factory.build(name));
    }
}

/** Print the standard harness banner. */
inline void
banner(const std::string &experiment, const std::string &paper_ref)
{
    std::cout << "== " << experiment << " — reproduces " << paper_ref
              << " ==\n"
              << "(scale " << benchScale()
              << "; set NDP_BENCH_SCALE to change)\n\n";
}

} // namespace ndp::bench

#endif // NDP_BENCH_BENCH_COMMON_H
