#ifndef NDP_BENCH_BENCH_COMMON_H
#define NDP_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared scaffolding for the figure/table reproduction harnesses: a
 * common workload scale (overridable via NDP_BENCH_SCALE), per-app
 * iteration, parallel (app x config) sweeps (worker count overridable
 * via NDP_BENCH_THREADS), and uniform headers so outputs are diffable.
 *
 * Output discipline: result tables go to stdout and are bit-identical
 * for any thread count; wall-clock timing (inherently nondeterministic)
 * goes to stderr so `bench > table.txt` stays diffable across runs.
 */

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/sweep.h"
#include "support/table.h"
#include "workloads/workload.h"

namespace ndp::bench {

/** Problem scale: NDP_BENCH_SCALE env var or a fast default. */
inline std::int64_t
benchScale()
{
    if (const char *env = std::getenv("NDP_BENCH_SCALE")) {
        const long long v = std::atoll(env);
        if (v >= 256)
            return v;
    }
    return 2048;
}

/** Sweep worker count: NDP_BENCH_THREADS env var or all cores. */
inline int
benchThreads()
{
    return driver::SweepRunner::defaultThreads();
}

/** The paper's 12 applications at the bench scale. */
inline std::vector<workloads::Workload>
allApps()
{
    workloads::WorkloadFactory factory(benchScale());
    return factory.buildAll();
}

/** Run @p fn on each of the paper's 12 applications. */
inline void
forEachApp(const std::function<void(const workloads::Workload &)> &fn)
{
    workloads::WorkloadFactory factory(benchScale());
    for (const std::string &name :
         workloads::WorkloadFactory::appNames()) {
        fn(factory.build(name));
    }
}

/** Everything one parallel (app x config) sweep produces. */
struct SweepOutcome
{
    std::vector<workloads::Workload> apps;
    /** grid[a][c]: apps[a] under configs[c], submission order. */
    std::vector<std::vector<driver::SweepCell>> grid;
    driver::SweepStats stats;
};

/**
 * Run every app under every config on a SweepRunner. The grid layout
 * — and thus any stdout table built from it — is independent of the
 * thread count; only the wallSeconds fields vary.
 */
inline SweepOutcome
runSweep(const std::vector<driver::ExperimentConfig> &configs)
{
    SweepOutcome outcome;
    outcome.apps = allApps();
    driver::SweepRunner runner(benchThreads());
    outcome.grid = runner.runGrid(outcome.apps, configs);
    outcome.stats = runner.stats();
    return outcome;
}

/** Print the standard harness banner. */
inline void
banner(const std::string &experiment, const std::string &paper_ref)
{
    std::cout << "== " << experiment << " — reproduces " << paper_ref
              << " ==\n"
              << "(scale " << benchScale()
              << "; set NDP_BENCH_SCALE to change)\n\n";
}

/**
 * Print the sweep's wall-clock summary — to stderr, because timing is
 * the one nondeterministic output and stdout must stay diffable across
 * thread counts (the determinism contract of driver::SweepRunner).
 */
inline void
timingFooter(const driver::SweepStats &stats)
{
    std::clog << "[sweep] " << stats.cells << " runs on "
              << stats.threads << " thread(s): " << stats.wallSeconds
              << "s wall, " << stats.cellSecondsSum
              << "s serial-equivalent (speedup x" << stats.speedup()
              << "; set NDP_BENCH_THREADS to change)\n";
}

/**
 * Per-app wall-clock table (stderr, same rationale as timingFooter).
 * @p labels names each config column.
 */
inline void
timingTable(const std::vector<std::string> &labels,
            const std::vector<workloads::Workload> &apps,
            const std::vector<std::vector<driver::SweepCell>> &grid)
{
    std::vector<std::string> headers = {"app"};
    for (const std::string &label : labels)
        headers.push_back(label + " s");
    Table table(headers);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        table.row().cell(apps[a].name);
        for (const driver::SweepCell &cell : grid[a])
            table.cell(cell.wallSeconds, 3);
    }
    std::clog << "[sweep] per-run wall-clock seconds:\n";
    table.print(std::clog);
}

} // namespace ndp::bench

#endif // NDP_BENCH_BENCH_COMMON_H
