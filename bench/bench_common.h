#ifndef NDP_BENCH_BENCH_COMMON_H
#define NDP_BENCH_BENCH_COMMON_H

/**
 * @file
 * Shared scaffolding for the figure/table reproduction harnesses: a
 * common workload scale (overridable via NDP_BENCH_SCALE), parallel
 * (app x config) sweeps (worker count overridable via
 * NDP_BENCH_THREADS), and a declarative metric-table printer so each
 * harness reduces to its config grid plus one row-formatter per
 * column.
 *
 * Output discipline: result tables go to stdout and are bit-identical
 * for any thread count; wall-clock timing (inherently nondeterministic)
 * goes to stderr so `bench > table.txt` stays diffable across runs.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/sweep.h"
#include "support/error.h"
#include "support/stats.h"
#include "support/table.h"
#include "verify/verify_level.h"
#include "workloads/workload.h"

namespace ndp::bench {

/** Problem scale: NDP_BENCH_SCALE env var or a fast default. */
inline std::int64_t
benchScale()
{
    if (const char *env = std::getenv("NDP_BENCH_SCALE")) {
        const long long v = std::atoll(env);
        if (v >= 256)
            return v;
    }
    return 2048;
}

/** Sweep worker count: NDP_BENCH_THREADS env var or all cores. */
inline int
benchThreads()
{
    return driver::SweepRunner::defaultThreads();
}

/** The paper's 12 applications at the bench scale. */
inline std::vector<workloads::Workload>
allApps()
{
    workloads::WorkloadFactory factory(benchScale());
    return factory.buildAll();
}

/** Process-wide --verify override; empty = follow NDP_VERIFY. */
inline std::optional<verify::VerifyLevel> &
verifyOverride()
{
    static std::optional<verify::VerifyLevel> override;
    return override;
}

/**
 * Parse the harness command line shared by every bench: `--verify`
 * (full) or `--verify=off|cheap|full` forces the static-verification
 * level of every config in the sweep, overriding NDP_VERIFY. Other
 * arguments are left for the harness's own parser.
 */
inline void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--verify") == 0) {
            verifyOverride() = verify::VerifyLevel::Full;
        } else if (std::strncmp(arg, "--verify=", 9) == 0) {
            verify::VerifyLevel level = verify::VerifyLevel::Off;
            if (!verify::parseVerifyLevel(arg + 9, level))
                ndp::fatal(std::string("unknown verify level '") +
                           (arg + 9) + "' (off|cheap|full)");
            verifyOverride() = level;
        }
    }
}

/**
 * The effective verification level of a sweep: the --verify flag when
 * given, else whatever the configs carry (NDP_VERIFY's default).
 */
inline std::vector<driver::ExperimentConfig>
applyVerifyLevel(std::vector<driver::ExperimentConfig> configs)
{
    if (verifyOverride()) {
        for (driver::ExperimentConfig &config : configs)
            config.partition.verifyLevel = *verifyOverride();
    }
    return configs;
}

/** Everything one parallel (app x config) sweep produces. */
struct SweepOutcome
{
    std::vector<workloads::Workload> apps;
    /** grid[a][c]: apps[a] under configs[c], submission order. */
    std::vector<std::vector<driver::SweepCell>> grid;
    driver::SweepStats stats;
};

/**
 * Write the machine-readable verifier report of @p sweep to the path
 * named by NDP_VERIFY_JSON (no-op when unset or nothing was
 * verified). One JSON object per app x config cell with its per-nest
 * verify::Report::renderJson() inlined — CI uploads this as the
 * full-verify artifact.
 */
inline void
maybeWriteVerifyJson(const SweepOutcome &sweep)
{
    const char *path = std::getenv("NDP_VERIFY_JSON");
    if (!path || sweep.stats.verify.plansVerified == 0)
        return;
    std::ofstream out(path);
    if (!out) {
        std::clog << "[verify] cannot open NDP_VERIFY_JSON path '"
                  << path << "'\n";
        return;
    }
    const verify::ReportCounts &totals = sweep.stats.verify;
    out << "{\n  \"scale\": " << benchScale()
        << ",\n  \"plans_verified\": " << totals.plansVerified
        << ",\n  \"errors\": " << totals.errors
        << ",\n  \"warnings\": " << totals.warnings
        << ",\n  \"notes\": " << totals.notes << ",\n  \"apps\": [";
    bool first_app = true;
    for (std::size_t a = 0; a < sweep.apps.size(); ++a) {
        out << (first_app ? "" : ",") << "\n    {\"app\": \""
            << sweep.apps[a].name << "\", \"configs\": [";
        first_app = false;
        for (std::size_t c = 0; c < sweep.grid[a].size(); ++c) {
            const driver::AppResult &r = sweep.grid[a][c].result;
            out << (c == 0 ? "" : ",") << "\n      {\"config\": " << c
                << ", \"plans_verified\": " << r.verify.plansVerified
                << ", \"errors\": " << r.verify.errors
                << ", \"warnings\": " << r.verify.warnings
                << ", \"notes\": " << r.verify.notes
                << ", \"nests\": [";
            bool first_nest = true;
            for (const driver::NestResult &nest : r.nests) {
                if (nest.verify.counts().plansVerified == 0 &&
                    nest.verify.counts().total() == 0)
                    continue;
                out << (first_nest ? "" : ",") << "\n        "
                    << nest.verify.renderJson();
                first_nest = false;
            }
            out << "]}";
        }
        out << "\n    ]}";
    }
    out << "\n  ]\n}\n";
    std::clog << "[verify] wrote JSON report to " << path << "\n";
}

/**
 * Run every app under every config on a SweepRunner (both parallelism
 * axes: cells across the pool, loop nests within each cell). The grid
 * layout — and thus any stdout table built from it — is independent
 * of the thread count; only the wallSeconds fields vary. Honours the
 * --verify flag (see parseBenchArgs) and, when NDP_VERIFY_JSON names
 * a path, drops the machine-readable verifier report there.
 */
inline SweepOutcome
runSweep(const std::vector<driver::ExperimentConfig> &configs)
{
    SweepOutcome outcome;
    outcome.apps = allApps();
    driver::SweepRunner runner(benchThreads());
    outcome.grid = runner.runGrid(outcome.apps, applyVerifyLevel(configs));
    outcome.stats = runner.stats();
    maybeWriteVerifyJson(outcome);
    return outcome;
}

/**
 * One stdout column of a harness table: a scalar metric of one
 * config's AppResult, plus how (and whether) to summarise it across
 * apps in the table's footer row.
 */
struct MetricColumn
{
    enum class Summary { None, Geomean, Mean };

    std::string header;
    /** Which sweep config (grid column) this metric reads. */
    std::size_t config = 0;
    std::function<double(const driver::AppResult &)> metric;
    Summary summary = Summary::None;
    int precision = 2;
};

/**
 * Print the standard per-app metric table for @p sweep to stdout: one
 * row per app, one cell per column, and — when any column asks for a
 * summary — a footer row labelled "geomean" (or "mean" when only
 * arithmetic means were requested) summarising those columns.
 */
inline void
printMetricTable(const SweepOutcome &sweep,
                 const std::vector<MetricColumn> &columns)
{
    std::vector<std::string> headers = {"app"};
    for (const MetricColumn &col : columns)
        headers.push_back(col.header);
    Table table(headers);

    std::vector<std::vector<double>> values(columns.size());
    for (std::size_t a = 0; a < sweep.apps.size(); ++a) {
        table.row().cell(sweep.apps[a].name);
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const MetricColumn &col = columns[c];
            const double v =
                col.metric(sweep.grid[a][col.config].result);
            values[c].push_back(v);
            table.cell(v, col.precision);
        }
    }

    bool any_geomean = false;
    bool any_mean = false;
    for (const MetricColumn &col : columns) {
        any_geomean |= col.summary == MetricColumn::Summary::Geomean;
        any_mean |= col.summary == MetricColumn::Summary::Mean;
    }
    if (any_geomean || any_mean) {
        table.row().cell(any_geomean ? "geomean" : "mean");
        for (std::size_t c = 0; c < columns.size(); ++c) {
            switch (columns[c].summary) {
            case MetricColumn::Summary::Geomean:
                table.cell(driver::geomeanPct(values[c]),
                           columns[c].precision);
                break;
            case MetricColumn::Summary::Mean:
                table.cell(arithmeticMean(values[c]),
                           columns[c].precision);
                break;
            case MetricColumn::Summary::None:
                table.cell("");
                break;
            }
        }
    }
    table.print(std::cout);
}

/** Print the standard harness banner. */
inline void
banner(const std::string &experiment, const std::string &paper_ref)
{
    std::cout << "== " << experiment << " — reproduces " << paper_ref
              << " ==\n"
              << "(scale " << benchScale()
              << "; set NDP_BENCH_SCALE to change)\n\n";
}

/**
 * Per-app wall-clock table — to stderr, because timing is the one
 * nondeterministic output and stdout must stay diffable across thread
 * counts (the determinism contract of driver::SweepRunner).
 * @p labels names each config column.
 */
inline void
timingTable(const std::vector<std::string> &labels,
            const std::vector<workloads::Workload> &apps,
            const std::vector<std::vector<driver::SweepCell>> &grid)
{
    std::vector<std::string> headers = {"app"};
    for (const std::string &label : labels)
        headers.push_back(label + " s");
    Table table(headers);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        table.row().cell(apps[a].name);
        for (const driver::SweepCell &cell : grid[a])
            table.cell(cell.wallSeconds, 3);
    }
    std::clog << "[sweep] per-run wall-clock seconds:\n";
    table.print(std::clog);
}

/**
 * The whole stderr timing block: the per-app wall-clock table plus the
 * one-line SweepStats summary every harness ends with.
 */
inline void
printTiming(const std::vector<std::string> &labels,
            const SweepOutcome &sweep)
{
    timingTable(labels, sweep.apps, sweep.grid);
    sweep.stats.printSummary(std::clog);
}

} // namespace ndp::bench

#endif // NDP_BENCH_BENCH_COMMON_H
