/**
 * @file
 * Figure 14: degree of subcomputation parallelism — the average and
 * maximum number of subcomputations of one statement instance that can
 * execute in parallel. Paper: ~3 on average, larger for Ocean/Barnes
 * (their longer statements split into more parallel subcomputations).
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig14_parallelism", "Figure 14");

    driver::ExperimentRunner runner;
    Table table({"app", "avg DoP", "max DoP"});
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        table.row()
            .cell(w.name)
            .cell(result.degreeOfParallelism.mean())
            .cell(result.degreeOfParallelism.max());
    });
    table.print(std::cout);
    return 0;
}
