/**
 * @file
 * Figure 14: degree of subcomputation parallelism — the average and
 * maximum number of subcomputations of one statement instance that can
 * execute in parallel. Paper: ~3 on average, larger for Ocean/Barnes
 * (their longer statements split into more parallel subcomputations).
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig14_parallelism", "Figure 14");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep,
        {{"avg DoP", 0,
          [](const AppResult &r) {
              return r.degreeOfParallelism.mean();
          }},
         {"max DoP", 0, [](const AppResult &r) {
              return r.degreeOfParallelism.max();
          }}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
