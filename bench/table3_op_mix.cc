/**
 * @file
 * Table 3: the mix of computation types re-mapped (offloaded to
 * subcomputations on other nodes) by the compiler, per application:
 * add/sub vs mul/div vs others (shift, logical, min/max).
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("table3_op_mix", "Table 3");

    driver::ExperimentRunner runner;
    Table table({"app", "add/sub%", "mul/div%", "others%"});
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        const double total = static_cast<double>(
            result.offloadedOps[0] + result.offloadedOps[1] +
            result.offloadedOps[2]);
        auto pct = [&](int c) {
            return total == 0.0 ? 0.0
                                : 100.0 *
                                      static_cast<double>(
                                          result.offloadedOps[c]) /
                                      total;
        };
        table.row().cell(w.name).cell(pct(0), 1).cell(pct(1), 1).cell(
            pct(2), 1);
    });
    table.print(std::cout);
    return 0;
}
