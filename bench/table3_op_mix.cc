/**
 * @file
 * Table 3: the mix of computation types re-mapped (offloaded to
 * subcomputations on other nodes) by the compiler, per application:
 * add/sub vs mul/div vs others (shift, logical, min/max).
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

namespace {

double
offloadedPct(const ndp::driver::AppResult &r, int category)
{
    const double total = static_cast<double>(
        r.offloadedOps[0] + r.offloadedOps[1] + r.offloadedOps[2]);
    if (total == 0.0)
        return 0.0;
    return 100.0 * static_cast<double>(r.offloadedOps[category]) /
           total;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("table3_op_mix", "Table 3");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep,
        {{"add/sub%", 0,
          [](const AppResult &r) { return offloadedPct(r, 0); },
          bench::MetricColumn::Summary::None, 1},
         {"mul/div%", 0,
          [](const AppResult &r) { return offloadedPct(r, 1); },
          bench::MetricColumn::Summary::None, 1},
         {"others%", 0,
          [](const AppResult &r) { return offloadedPct(r, 2); },
          bench::MetricColumn::Summary::None, 1}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
