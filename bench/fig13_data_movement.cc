/**
 * @file
 * Figure 13: per-statement reduction in data movement (Equation 1)
 * over the locality-optimized default placement — average and maximum
 * across all statement instances. Paper: 35.3% geometric-mean average
 * reduction; Barnes/Ocean/MiniMD high, Cholesky/LU low.
 *
 * All 12 app runs fan out across NDP_BENCH_THREADS workers (and each
 * run's loop nests across the same pool); the table is bit-identical
 * for any thread count (timing on stderr).
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace ndp;
    bench::parseBenchArgs(argc, argv);
    using driver::AppResult;
    bench::banner("fig13_data_movement", "Figure 13");

    const bench::SweepOutcome sweep =
        bench::runSweep({driver::ExperimentConfig{}});
    bench::printMetricTable(
        sweep,
        {{"avg reduction%", 0,
          [](const AppResult &r) {
              return r.movementReductionPct.mean();
          },
          bench::MetricColumn::Summary::Geomean},
         {"max reduction%", 0, [](const AppResult &r) {
              return r.movementReductionPct.max();
          }}});

    bench::printTiming({"run"}, sweep);
    return 0;
}
