/**
 * @file
 * Figure 13: per-statement reduction in data movement (Equation 1)
 * over the locality-optimized default placement — average and maximum
 * across all statement instances. Paper: 35.3% geometric-mean average
 * reduction; Barnes/Ocean/MiniMD high, Cholesky/LU low.
 */

#include "bench_common.h"

int
main()
{
    using namespace ndp;
    bench::banner("fig13_data_movement", "Figure 13");

    driver::ExperimentRunner runner;
    Table table({"app", "avg reduction%", "max reduction%"});
    std::vector<double> averages;
    bench::forEachApp([&](const workloads::Workload &w) {
        const auto result = runner.runApp(w);
        averages.push_back(result.movementReductionPct.mean());
        table.row()
            .cell(w.name)
            .cell(result.movementReductionPct.mean())
            .cell(result.movementReductionPct.max());
    });
    table.row().cell("geomean").cell(driver::geomeanPct(averages)).cell(
        "");
    table.print(std::cout);
    return 0;
}
