file(REMOVE_RECURSE
  "CMakeFiles/ndp_sim.dir/energy.cc.o"
  "CMakeFiles/ndp_sim.dir/energy.cc.o.d"
  "CMakeFiles/ndp_sim.dir/engine.cc.o"
  "CMakeFiles/ndp_sim.dir/engine.cc.o.d"
  "CMakeFiles/ndp_sim.dir/manycore.cc.o"
  "CMakeFiles/ndp_sim.dir/manycore.cc.o.d"
  "CMakeFiles/ndp_sim.dir/trace.cc.o"
  "CMakeFiles/ndp_sim.dir/trace.cc.o.d"
  "libndp_sim.a"
  "libndp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
