# Empty dependencies file for ndp_sim.
# This may be replaced when dependencies are built.
