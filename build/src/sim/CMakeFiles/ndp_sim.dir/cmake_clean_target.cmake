file(REMOVE_RECURSE
  "libndp_sim.a"
)
