file(REMOVE_RECURSE
  "libndp_support.a"
)
