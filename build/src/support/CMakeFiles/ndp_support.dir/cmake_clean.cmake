file(REMOVE_RECURSE
  "CMakeFiles/ndp_support.dir/stats.cc.o"
  "CMakeFiles/ndp_support.dir/stats.cc.o.d"
  "CMakeFiles/ndp_support.dir/table.cc.o"
  "CMakeFiles/ndp_support.dir/table.cc.o.d"
  "libndp_support.a"
  "libndp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
