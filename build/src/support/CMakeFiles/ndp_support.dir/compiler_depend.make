# Empty compiler generated dependencies file for ndp_support.
# This may be replaced when dependencies are built.
