file(REMOVE_RECURSE
  "libndp_mem.a"
)
