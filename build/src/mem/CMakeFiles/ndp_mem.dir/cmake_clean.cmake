file(REMOVE_RECURSE
  "CMakeFiles/ndp_mem.dir/address_mapping.cc.o"
  "CMakeFiles/ndp_mem.dir/address_mapping.cc.o.d"
  "CMakeFiles/ndp_mem.dir/cache.cc.o"
  "CMakeFiles/ndp_mem.dir/cache.cc.o.d"
  "CMakeFiles/ndp_mem.dir/memory_controller.cc.o"
  "CMakeFiles/ndp_mem.dir/memory_controller.cc.o.d"
  "CMakeFiles/ndp_mem.dir/miss_predictor.cc.o"
  "CMakeFiles/ndp_mem.dir/miss_predictor.cc.o.d"
  "libndp_mem.a"
  "libndp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
