# Empty dependencies file for ndp_mem.
# This may be replaced when dependencies are built.
