
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_mapping.cc" "src/mem/CMakeFiles/ndp_mem.dir/address_mapping.cc.o" "gcc" "src/mem/CMakeFiles/ndp_mem.dir/address_mapping.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/ndp_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/ndp_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/memory_controller.cc" "src/mem/CMakeFiles/ndp_mem.dir/memory_controller.cc.o" "gcc" "src/mem/CMakeFiles/ndp_mem.dir/memory_controller.cc.o.d"
  "/root/repo/src/mem/miss_predictor.cc" "src/mem/CMakeFiles/ndp_mem.dir/miss_predictor.cc.o" "gcc" "src/mem/CMakeFiles/ndp_mem.dir/miss_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ndp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ndp_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
