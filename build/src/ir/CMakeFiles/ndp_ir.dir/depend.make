# Empty dependencies file for ndp_ir.
# This may be replaced when dependencies are built.
