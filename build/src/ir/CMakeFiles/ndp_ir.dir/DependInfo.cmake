
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cc" "src/ir/CMakeFiles/ndp_ir.dir/affine.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/affine.cc.o.d"
  "/root/repo/src/ir/array.cc" "src/ir/CMakeFiles/ndp_ir.dir/array.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/array.cc.o.d"
  "/root/repo/src/ir/dependence.cc" "src/ir/CMakeFiles/ndp_ir.dir/dependence.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/dependence.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/ir/CMakeFiles/ndp_ir.dir/expr.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/expr.cc.o.d"
  "/root/repo/src/ir/instance.cc" "src/ir/CMakeFiles/ndp_ir.dir/instance.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/instance.cc.o.d"
  "/root/repo/src/ir/nested_sets.cc" "src/ir/CMakeFiles/ndp_ir.dir/nested_sets.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/nested_sets.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/ir/CMakeFiles/ndp_ir.dir/parser.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/parser.cc.o.d"
  "/root/repo/src/ir/statement.cc" "src/ir/CMakeFiles/ndp_ir.dir/statement.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/statement.cc.o.d"
  "/root/repo/src/ir/transform.cc" "src/ir/CMakeFiles/ndp_ir.dir/transform.cc.o" "gcc" "src/ir/CMakeFiles/ndp_ir.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ndp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ndp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ndp_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
