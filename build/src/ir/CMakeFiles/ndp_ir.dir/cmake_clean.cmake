file(REMOVE_RECURSE
  "CMakeFiles/ndp_ir.dir/affine.cc.o"
  "CMakeFiles/ndp_ir.dir/affine.cc.o.d"
  "CMakeFiles/ndp_ir.dir/array.cc.o"
  "CMakeFiles/ndp_ir.dir/array.cc.o.d"
  "CMakeFiles/ndp_ir.dir/dependence.cc.o"
  "CMakeFiles/ndp_ir.dir/dependence.cc.o.d"
  "CMakeFiles/ndp_ir.dir/expr.cc.o"
  "CMakeFiles/ndp_ir.dir/expr.cc.o.d"
  "CMakeFiles/ndp_ir.dir/instance.cc.o"
  "CMakeFiles/ndp_ir.dir/instance.cc.o.d"
  "CMakeFiles/ndp_ir.dir/nested_sets.cc.o"
  "CMakeFiles/ndp_ir.dir/nested_sets.cc.o.d"
  "CMakeFiles/ndp_ir.dir/parser.cc.o"
  "CMakeFiles/ndp_ir.dir/parser.cc.o.d"
  "CMakeFiles/ndp_ir.dir/statement.cc.o"
  "CMakeFiles/ndp_ir.dir/statement.cc.o.d"
  "CMakeFiles/ndp_ir.dir/transform.cc.o"
  "CMakeFiles/ndp_ir.dir/transform.cc.o.d"
  "libndp_ir.a"
  "libndp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
