file(REMOVE_RECURSE
  "libndp_ir.a"
)
