file(REMOVE_RECURSE
  "libndp_workloads.a"
)
