# Empty dependencies file for ndp_workloads.
# This may be replaced when dependencies are built.
