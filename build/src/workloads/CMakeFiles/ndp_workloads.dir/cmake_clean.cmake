file(REMOVE_RECURSE
  "CMakeFiles/ndp_workloads.dir/workload.cc.o"
  "CMakeFiles/ndp_workloads.dir/workload.cc.o.d"
  "libndp_workloads.a"
  "libndp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
