# Empty compiler generated dependencies file for ndp_baseline.
# This may be replaced when dependencies are built.
