file(REMOVE_RECURSE
  "libndp_baseline.a"
)
