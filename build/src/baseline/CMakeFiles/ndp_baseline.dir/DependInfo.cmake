
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/data_to_mc.cc" "src/baseline/CMakeFiles/ndp_baseline.dir/data_to_mc.cc.o" "gcc" "src/baseline/CMakeFiles/ndp_baseline.dir/data_to_mc.cc.o.d"
  "/root/repo/src/baseline/default_placement.cc" "src/baseline/CMakeFiles/ndp_baseline.dir/default_placement.cc.o" "gcc" "src/baseline/CMakeFiles/ndp_baseline.dir/default_placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ndp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ndp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ndp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ndp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ndp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
