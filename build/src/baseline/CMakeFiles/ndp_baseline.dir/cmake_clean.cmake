file(REMOVE_RECURSE
  "CMakeFiles/ndp_baseline.dir/data_to_mc.cc.o"
  "CMakeFiles/ndp_baseline.dir/data_to_mc.cc.o.d"
  "CMakeFiles/ndp_baseline.dir/default_placement.cc.o"
  "CMakeFiles/ndp_baseline.dir/default_placement.cc.o.d"
  "libndp_baseline.a"
  "libndp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
