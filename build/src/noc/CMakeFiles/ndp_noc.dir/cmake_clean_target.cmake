file(REMOVE_RECURSE
  "libndp_noc.a"
)
