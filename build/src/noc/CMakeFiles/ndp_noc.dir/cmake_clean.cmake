file(REMOVE_RECURSE
  "CMakeFiles/ndp_noc.dir/mesh_topology.cc.o"
  "CMakeFiles/ndp_noc.dir/mesh_topology.cc.o.d"
  "CMakeFiles/ndp_noc.dir/noc_model.cc.o"
  "CMakeFiles/ndp_noc.dir/noc_model.cc.o.d"
  "CMakeFiles/ndp_noc.dir/traffic_matrix.cc.o"
  "CMakeFiles/ndp_noc.dir/traffic_matrix.cc.o.d"
  "libndp_noc.a"
  "libndp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
