# Empty dependencies file for ndp_noc.
# This may be replaced when dependencies are built.
