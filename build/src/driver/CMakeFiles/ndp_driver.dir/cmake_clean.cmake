file(REMOVE_RECURSE
  "CMakeFiles/ndp_driver.dir/experiment.cc.o"
  "CMakeFiles/ndp_driver.dir/experiment.cc.o.d"
  "libndp_driver.a"
  "libndp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
