# Empty compiler generated dependencies file for ndp_driver.
# This may be replaced when dependencies are built.
