file(REMOVE_RECURSE
  "libndp_driver.a"
)
