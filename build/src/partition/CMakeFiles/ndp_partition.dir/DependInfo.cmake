
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/codegen.cc" "src/partition/CMakeFiles/ndp_partition.dir/codegen.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/codegen.cc.o.d"
  "/root/repo/src/partition/data_locator.cc" "src/partition/CMakeFiles/ndp_partition.dir/data_locator.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/data_locator.cc.o.d"
  "/root/repo/src/partition/inspector.cc" "src/partition/CMakeFiles/ndp_partition.dir/inspector.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/inspector.cc.o.d"
  "/root/repo/src/partition/load_balancer.cc" "src/partition/CMakeFiles/ndp_partition.dir/load_balancer.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/load_balancer.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/partition/CMakeFiles/ndp_partition.dir/partitioner.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/partitioner.cc.o.d"
  "/root/repo/src/partition/splitter.cc" "src/partition/CMakeFiles/ndp_partition.dir/splitter.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/splitter.cc.o.d"
  "/root/repo/src/partition/sync_graph.cc" "src/partition/CMakeFiles/ndp_partition.dir/sync_graph.cc.o" "gcc" "src/partition/CMakeFiles/ndp_partition.dir/sync_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ndp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ndp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ndp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ndp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ndp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
