file(REMOVE_RECURSE
  "CMakeFiles/ndp_partition.dir/codegen.cc.o"
  "CMakeFiles/ndp_partition.dir/codegen.cc.o.d"
  "CMakeFiles/ndp_partition.dir/data_locator.cc.o"
  "CMakeFiles/ndp_partition.dir/data_locator.cc.o.d"
  "CMakeFiles/ndp_partition.dir/inspector.cc.o"
  "CMakeFiles/ndp_partition.dir/inspector.cc.o.d"
  "CMakeFiles/ndp_partition.dir/load_balancer.cc.o"
  "CMakeFiles/ndp_partition.dir/load_balancer.cc.o.d"
  "CMakeFiles/ndp_partition.dir/partitioner.cc.o"
  "CMakeFiles/ndp_partition.dir/partitioner.cc.o.d"
  "CMakeFiles/ndp_partition.dir/splitter.cc.o"
  "CMakeFiles/ndp_partition.dir/splitter.cc.o.d"
  "CMakeFiles/ndp_partition.dir/sync_graph.cc.o"
  "CMakeFiles/ndp_partition.dir/sync_graph.cc.o.d"
  "libndp_partition.a"
  "libndp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
