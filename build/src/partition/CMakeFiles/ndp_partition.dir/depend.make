# Empty dependencies file for ndp_partition.
# This may be replaced when dependencies are built.
