file(REMOVE_RECURSE
  "libndp_partition.a"
)
