file(REMOVE_RECURSE
  "CMakeFiles/fig14_parallelism.dir/fig14_parallelism.cc.o"
  "CMakeFiles/fig14_parallelism.dir/fig14_parallelism.cc.o.d"
  "fig14_parallelism"
  "fig14_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
