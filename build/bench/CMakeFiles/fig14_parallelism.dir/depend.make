# Empty dependencies file for fig14_parallelism.
# This may be replaced when dependencies are built.
