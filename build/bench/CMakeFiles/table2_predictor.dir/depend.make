# Empty dependencies file for table2_predictor.
# This may be replaced when dependencies are built.
