file(REMOVE_RECURSE
  "CMakeFiles/table2_predictor.dir/table2_predictor.cc.o"
  "CMakeFiles/table2_predictor.dir/table2_predictor.cc.o.d"
  "table2_predictor"
  "table2_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
