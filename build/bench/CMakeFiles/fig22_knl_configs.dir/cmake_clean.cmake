file(REMOVE_RECURSE
  "CMakeFiles/fig22_knl_configs.dir/fig22_knl_configs.cc.o"
  "CMakeFiles/fig22_knl_configs.dir/fig22_knl_configs.cc.o.d"
  "fig22_knl_configs"
  "fig22_knl_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_knl_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
