# Empty dependencies file for fig22_knl_configs.
# This may be replaced when dependencies are built.
