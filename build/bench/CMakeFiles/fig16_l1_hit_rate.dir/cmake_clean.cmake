file(REMOVE_RECURSE
  "CMakeFiles/fig16_l1_hit_rate.dir/fig16_l1_hit_rate.cc.o"
  "CMakeFiles/fig16_l1_hit_rate.dir/fig16_l1_hit_rate.cc.o.d"
  "fig16_l1_hit_rate"
  "fig16_l1_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_l1_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
