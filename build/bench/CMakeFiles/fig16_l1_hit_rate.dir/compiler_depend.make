# Empty compiler generated dependencies file for fig16_l1_hit_rate.
# This may be replaced when dependencies are built.
