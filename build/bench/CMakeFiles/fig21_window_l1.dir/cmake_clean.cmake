file(REMOVE_RECURSE
  "CMakeFiles/fig21_window_l1.dir/fig21_window_l1.cc.o"
  "CMakeFiles/fig21_window_l1.dir/fig21_window_l1.cc.o.d"
  "fig21_window_l1"
  "fig21_window_l1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_window_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
