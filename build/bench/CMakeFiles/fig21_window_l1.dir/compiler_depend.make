# Empty compiler generated dependencies file for fig21_window_l1.
# This may be replaced when dependencies are built.
