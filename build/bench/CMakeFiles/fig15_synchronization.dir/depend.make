# Empty dependencies file for fig15_synchronization.
# This may be replaced when dependencies are built.
