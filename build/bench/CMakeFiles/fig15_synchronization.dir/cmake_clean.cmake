file(REMOVE_RECURSE
  "CMakeFiles/fig15_synchronization.dir/fig15_synchronization.cc.o"
  "CMakeFiles/fig15_synchronization.dir/fig15_synchronization.cc.o.d"
  "fig15_synchronization"
  "fig15_synchronization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_synchronization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
