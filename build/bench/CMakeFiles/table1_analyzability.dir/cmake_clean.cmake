file(REMOVE_RECURSE
  "CMakeFiles/table1_analyzability.dir/table1_analyzability.cc.o"
  "CMakeFiles/table1_analyzability.dir/table1_analyzability.cc.o.d"
  "table1_analyzability"
  "table1_analyzability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_analyzability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
