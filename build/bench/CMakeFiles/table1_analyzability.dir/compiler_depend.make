# Empty compiler generated dependencies file for table1_analyzability.
# This may be replaced when dependencies are built.
