file(REMOVE_RECURSE
  "CMakeFiles/fig20_window_size.dir/fig20_window_size.cc.o"
  "CMakeFiles/fig20_window_size.dir/fig20_window_size.cc.o.d"
  "fig20_window_size"
  "fig20_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
