# Empty dependencies file for fig20_window_size.
# This may be replaced when dependencies are built.
