file(REMOVE_RECURSE
  "CMakeFiles/fig13_data_movement.dir/fig13_data_movement.cc.o"
  "CMakeFiles/fig13_data_movement.dir/fig13_data_movement.cc.o.d"
  "fig13_data_movement"
  "fig13_data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
