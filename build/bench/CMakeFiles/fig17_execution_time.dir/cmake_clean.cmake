file(REMOVE_RECURSE
  "CMakeFiles/fig17_execution_time.dir/fig17_execution_time.cc.o"
  "CMakeFiles/fig17_execution_time.dir/fig17_execution_time.cc.o.d"
  "fig17_execution_time"
  "fig17_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
