# Empty dependencies file for micro_partitioner.
# This may be replaced when dependencies are built.
