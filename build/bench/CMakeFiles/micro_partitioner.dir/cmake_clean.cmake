file(REMOVE_RECURSE
  "CMakeFiles/micro_partitioner.dir/micro_partitioner.cc.o"
  "CMakeFiles/micro_partitioner.dir/micro_partitioner.cc.o.d"
  "micro_partitioner"
  "micro_partitioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_partitioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
