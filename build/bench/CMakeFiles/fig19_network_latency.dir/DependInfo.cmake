
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig19_network_latency.cc" "bench/CMakeFiles/fig19_network_latency.dir/fig19_network_latency.cc.o" "gcc" "bench/CMakeFiles/fig19_network_latency.dir/fig19_network_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ndp_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ndp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ndp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ndp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ndp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ndp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ndp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ndp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ndp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
