file(REMOVE_RECURSE
  "CMakeFiles/fig19_network_latency.dir/fig19_network_latency.cc.o"
  "CMakeFiles/fig19_network_latency.dir/fig19_network_latency.cc.o.d"
  "fig19_network_latency"
  "fig19_network_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_network_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
