# Empty compiler generated dependencies file for fig19_network_latency.
# This may be replaced when dependencies are built.
