file(REMOVE_RECURSE
  "CMakeFiles/fig24_energy.dir/fig24_energy.cc.o"
  "CMakeFiles/fig24_energy.dir/fig24_energy.cc.o.d"
  "fig24_energy"
  "fig24_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
