file(REMOVE_RECURSE
  "CMakeFiles/fig18_metric_isolation.dir/fig18_metric_isolation.cc.o"
  "CMakeFiles/fig18_metric_isolation.dir/fig18_metric_isolation.cc.o.d"
  "fig18_metric_isolation"
  "fig18_metric_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_metric_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
