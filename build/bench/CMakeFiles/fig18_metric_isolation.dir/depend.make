# Empty dependencies file for fig18_metric_isolation.
# This may be replaced when dependencies are built.
