file(REMOVE_RECURSE
  "CMakeFiles/table3_op_mix.dir/table3_op_mix.cc.o"
  "CMakeFiles/table3_op_mix.dir/table3_op_mix.cc.o.d"
  "table3_op_mix"
  "table3_op_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_op_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
