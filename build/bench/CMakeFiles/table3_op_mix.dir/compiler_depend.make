# Empty compiler generated dependencies file for table3_op_mix.
# This may be replaced when dependencies are built.
