# Empty dependencies file for fig23_data_mapping.
# This may be replaced when dependencies are built.
