file(REMOVE_RECURSE
  "CMakeFiles/fig23_data_mapping.dir/fig23_data_mapping.cc.o"
  "CMakeFiles/fig23_data_mapping.dir/fig23_data_mapping.cc.o.d"
  "fig23_data_mapping"
  "fig23_data_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_data_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
