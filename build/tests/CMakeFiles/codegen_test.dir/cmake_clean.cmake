file(REMOVE_RECURSE
  "CMakeFiles/codegen_test.dir/codegen_test.cc.o"
  "CMakeFiles/codegen_test.dir/codegen_test.cc.o.d"
  "codegen_test"
  "codegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
