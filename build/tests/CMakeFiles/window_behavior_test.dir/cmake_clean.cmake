file(REMOVE_RECURSE
  "CMakeFiles/window_behavior_test.dir/window_behavior_test.cc.o"
  "CMakeFiles/window_behavior_test.dir/window_behavior_test.cc.o.d"
  "window_behavior_test"
  "window_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
