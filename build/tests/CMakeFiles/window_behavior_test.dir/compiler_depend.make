# Empty compiler generated dependencies file for window_behavior_test.
# This may be replaced when dependencies are built.
