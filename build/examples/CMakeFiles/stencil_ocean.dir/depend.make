# Empty dependencies file for stencil_ocean.
# This may be replaced when dependencies are built.
