file(REMOVE_RECURSE
  "CMakeFiles/stencil_ocean.dir/stencil_ocean.cpp.o"
  "CMakeFiles/stencil_ocean.dir/stencil_ocean.cpp.o.d"
  "stencil_ocean"
  "stencil_ocean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_ocean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
