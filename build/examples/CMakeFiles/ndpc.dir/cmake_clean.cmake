file(REMOVE_RECURSE
  "CMakeFiles/ndpc.dir/ndpc.cpp.o"
  "CMakeFiles/ndpc.dir/ndpc.cpp.o.d"
  "ndpc"
  "ndpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
