# Empty compiler generated dependencies file for ndpc.
# This may be replaced when dependencies are built.
