file(REMOVE_RECURSE
  "CMakeFiles/irregular_minimd.dir/irregular_minimd.cpp.o"
  "CMakeFiles/irregular_minimd.dir/irregular_minimd.cpp.o.d"
  "irregular_minimd"
  "irregular_minimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_minimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
