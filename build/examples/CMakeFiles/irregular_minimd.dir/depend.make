# Empty dependencies file for irregular_minimd.
# This may be replaced when dependencies are built.
