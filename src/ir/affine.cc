#include "ir/affine.h"

#include <algorithm>

#include "support/error.h"

namespace ndp::ir {

AffineExpr
AffineExpr::constant(std::int64_t c)
{
    AffineExpr e;
    e.constant_ = c;
    return e;
}

AffineExpr
AffineExpr::term(int loop_index, std::int64_t coeff)
{
    AffineExpr e;
    e.addTerm(loop_index, coeff);
    return e;
}

void
AffineExpr::addTerm(int loop_index, std::int64_t coeff)
{
    NDP_CHECK(loop_index >= 0, "negative loop index");
    for (auto &[idx, c] : terms_) {
        if (idx == loop_index) {
            c += coeff;
            normalize();
            return;
        }
    }
    if (coeff != 0) {
        terms_.emplace_back(loop_index, coeff);
        std::sort(terms_.begin(), terms_.end());
    }
}

std::int64_t
AffineExpr::coefficient(int loop_index) const
{
    for (const auto &[idx, c] : terms_) {
        if (idx == loop_index)
            return c;
    }
    return 0;
}

std::int64_t
AffineExpr::evaluate(const IterationVector &iter) const
{
    std::int64_t value = constant_;
    for (const auto &[idx, c] : terms_) {
        NDP_CHECK(static_cast<std::size_t>(idx) < iter.size(),
                  "iteration vector too short for affine term");
        value += c * iter[static_cast<std::size_t>(idx)];
    }
    return value;
}

AffineExpr
AffineExpr::operator+(const AffineExpr &other) const
{
    AffineExpr result = *this;
    result.constant_ += other.constant_;
    for (const auto &[idx, c] : other.terms_)
        result.addTerm(idx, c);
    return result;
}

AffineExpr
AffineExpr::operator*(std::int64_t scale) const
{
    AffineExpr result;
    result.constant_ = constant_ * scale;
    if (scale != 0) {
        for (const auto &[idx, c] : terms_)
            result.terms_.emplace_back(idx, c * scale);
    }
    return result;
}

bool
AffineExpr::operator==(const AffineExpr &other) const
{
    return constant_ == other.constant_ && terms_ == other.terms_;
}

void
AffineExpr::normalize()
{
    std::erase_if(terms_, [](const auto &t) { return t.second == 0; });
    std::sort(terms_.begin(), terms_.end());
}

std::string
AffineExpr::toString(const std::vector<std::string> &loop_names) const
{
    std::string out;
    for (const auto &[idx, c] : terms_) {
        const std::string name =
            static_cast<std::size_t>(idx) < loop_names.size()
                ? loop_names[static_cast<std::size_t>(idx)]
                : "v" + std::to_string(idx);
        if (!out.empty())
            out += c >= 0 ? "+" : "";
        if (c == 1) {
            out += name;
        } else if (c == -1) {
            out += "-" + name;
        } else {
            out += std::to_string(c) + "*" + name;
        }
    }
    if (constant_ != 0 || out.empty()) {
        if (!out.empty() && constant_ >= 0)
            out += "+";
        out += std::to_string(constant_);
    }
    return out;
}

} // namespace ndp::ir
