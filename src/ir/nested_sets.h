#ifndef NDP_IR_NESTED_SETS_H
#define NDP_IR_NESTED_SETS_H

/**
 * @file
 * The paper's nested variable sets (Section 4.2, Algorithm 1 line 5):
 * the operands of a statement are classified into nested sets according
 * to operator priority and parentheses; MSTs are built per level from
 * the innermost set outwards, treating an already-processed set as a
 * single component.
 *
 * We flatten maximal runs of same-precedence-class operators into one
 * set. Subtraction flattens into the AddLike run (as addition of a
 * negated value) and division into the MulLike run, so reordering the
 * elements of a set never changes the statement's value. Shift runs,
 * which are not reorderable, stay as binary (two-element) sets.
 */

#include <memory>
#include <vector>

#include "ir/ops.h"
#include "ir/statement.h"

namespace ndp::ir {

/**
 * One level of the nested-set hierarchy. Elements are either leaf
 * operands (indices into Statement::reads()) or nested sub-sets.
 */
struct VarSet
{
    struct Elem
    {
        /**
         * The operator tag attaching this element to the set's fold.
         * The first element carries the class identity op (Add / Mul /
         * the run's op); later elements carry the actual operator, so
         * e.g. `a - b + c` becomes AddLike{(+,a), (-,b), (+,c)}.
         */
        OpKind op = OpKind::Add;
        /** Leaf operand index into Statement::reads(); -1 for sub-sets. */
        int leaf = -1;
        std::unique_ptr<VarSet> sub;

        bool isLeaf() const { return leaf >= 0; }
    };

    OpClass cls = OpClass::AddLike;
    std::vector<Elem> elems;

    /** Total leaves in this set and all nested sets. */
    std::size_t leafCount() const;

    /** Depth of set nesting (a flat statement has depth 1). */
    std::size_t depth() const;
};

/**
 * Build the nested variable sets of @p stmt's RHS. Leaf indices refer
 * to positions in stmt.reads(). Constants are dropped (they have no
 * network location); a statement whose RHS is a single reference or
 * constant yields a set with <= 1 element.
 */
VarSet buildVarSets(const Statement &stmt);

} // namespace ndp::ir

#endif // NDP_IR_NESTED_SETS_H
