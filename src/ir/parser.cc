#include "ir/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "support/error.h"

namespace ndp::ir {

namespace {

enum class TokKind
{
    End,
    Ident,
    Int,
    Float,
    Symbol, // single or double char punctuation / operator
};

struct Token
{
    TokKind kind = TokKind::End;
    std::string text;
    std::int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 1;
    int col = 1;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src)
        : src_(src)
    {
        advance();
    }

    const Token &peek() const { return tok_; }

    Token
    next()
    {
        Token t = tok_;
        advance();
        return t;
    }

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal("parse error at line " + std::to_string(tok_.line) +
              ", col " + std::to_string(tok_.col) + ": " + msg +
              (tok_.kind == TokKind::End ? " (at end of input)"
                                         : " (near '" + tok_.text + "')"));
    }

  private:
    void
    skipSpace()
    {
        for (;;) {
            while (pos_ < src_.size() &&
                   std::isspace(static_cast<unsigned char>(src_[pos_]))) {
                bump();
            }
            // Line comments: // or #
            if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
                src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    bump();
            } else if (pos_ < src_.size() && src_[pos_] == '#') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    bump();
            } else {
                return;
            }
        }
    }

    void
    bump()
    {
        if (src_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
    }

    void
    advance()
    {
        skipSpace();
        tok_ = Token();
        tok_.line = line_;
        tok_.col = col_;
        if (pos_ >= src_.size()) {
            tok_.kind = TokKind::End;
            return;
        }
        const char c = src_[pos_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            while (pos_ < src_.size() &&
                   (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '_')) {
                tok_.text += src_[pos_];
                bump();
            }
            tok_.kind = TokKind::Ident;
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            bool is_float = false;
            while (pos_ < src_.size() &&
                   (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                    src_[pos_] == '.')) {
                // ".." is the range operator, not a decimal point.
                if (src_[pos_] == '.') {
                    if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '.')
                        break;
                    is_float = true;
                }
                tok_.text += src_[pos_];
                bump();
            }
            // stod/stoll throw std::out_of_range on huge literals;
            // surface that as a located parse error, not a crash.
            try {
                if (is_float) {
                    tok_.kind = TokKind::Float;
                    tok_.floatValue = std::stod(tok_.text);
                } else {
                    tok_.kind = TokKind::Int;
                    tok_.intValue = std::stoll(tok_.text);
                }
            } catch (const std::exception &) {
                error("numeric literal '" + tok_.text +
                      "' out of range");
            }
            return;
        }
        // Two-character symbols first.
        static const char *two_char[] = {"..", "<<", ">>"};
        for (const char *s : two_char) {
            if (src_.compare(pos_, 2, s) == 0) {
                tok_.kind = TokKind::Symbol;
                tok_.text = s;
                bump();
                bump();
                return;
            }
        }
        tok_.kind = TokKind::Symbol;
        tok_.text = std::string(1, c);
        bump();
    }

    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    Token tok_;
};

class Parser
{
  public:
    Parser(const std::string &src, const std::string &name,
           ArrayTable &arrays, const ParamMap &params)
        : lex_(src), name_(name), arrays_(arrays), params_(params)
    {}

    LoopNest
    parse()
    {
        while (peekIs("array"))
            parseArrayDecl();
        expectIdent("for");
        parseLoop();
        if (lex_.peek().kind != TokKind::End)
            lex_.error("trailing input after loop nest");
        if (statements_.empty())
            lex_.error("kernel '" + name_ + "' has no statements");
        return LoopNest(name_, std::move(loops_), std::move(statements_));
    }

  private:
    bool
    peekIs(const std::string &text) const
    {
        return lex_.peek().text == text;
    }

    bool
    acceptSymbol(const std::string &text)
    {
        if (lex_.peek().kind == TokKind::Symbol && peekIs(text)) {
            lex_.next();
            return true;
        }
        return false;
    }

    void
    expectSymbol(const std::string &text)
    {
        if (!acceptSymbol(text))
            lex_.error("expected '" + text + "'");
    }

    std::string
    expectAnyIdent()
    {
        if (lex_.peek().kind != TokKind::Ident)
            lex_.error("expected identifier");
        return lex_.next().text;
    }

    void
    expectIdent(const std::string &text)
    {
        if (lex_.peek().kind != TokKind::Ident || !peekIs(text))
            lex_.error("expected '" + text + "'");
        lex_.next();
    }

    /** Integer-valued size expression: ints, params, + - * /. */
    std::int64_t
    parseSizeExpr()
    {
        std::int64_t value = parseSizeTerm();
        for (;;) {
            if (acceptSymbol("+")) {
                value += parseSizeTerm();
            } else if (acceptSymbol("-")) {
                value -= parseSizeTerm();
            } else {
                return value;
            }
        }
    }

    std::int64_t
    parseSizeTerm()
    {
        std::int64_t value = parseSizeAtom();
        for (;;) {
            if (acceptSymbol("*")) {
                value *= parseSizeAtom();
            } else if (acceptSymbol("/")) {
                const std::int64_t d = parseSizeAtom();
                if (d == 0)
                    lex_.error("division by zero in size expression");
                value /= d;
            } else {
                return value;
            }
        }
    }

    std::int64_t
    parseSizeAtom()
    {
        const Token &t = lex_.peek();
        if (t.kind == TokKind::Int)
            return lex_.next().intValue;
        if (t.kind == TokKind::Ident) {
            const auto it = params_.find(t.text);
            if (it == params_.end())
                lex_.error("unknown size parameter '" + t.text + "'");
            lex_.next();
            return it->second;
        }
        if (acceptSymbol("(")) {
            const std::int64_t v = parseSizeExpr();
            expectSymbol(")");
            return v;
        }
        lex_.error("expected integer, parameter, or '('");
    }

    void
    parseArrayDecl()
    {
        expectIdent("array");
        const std::string name = expectAnyIdent();
        // Validate here, not in ArrayTable::create, so the diagnostic
        // carries the source location like every other parse error.
        if (arrays_.find(name) != kInvalidArray)
            lex_.error("duplicate array '" + name + "'");
        std::vector<std::int64_t> extents;
        while (acceptSymbol("[")) {
            extents.push_back(parseSizeExpr());
            if (extents.back() <= 0) {
                lex_.error("array '" + name + "' has non-positive extent " +
                           std::to_string(extents.back()));
            }
            expectSymbol("]");
        }
        if (extents.empty())
            lex_.error("array '" + name + "' needs at least one extent");
        std::uint32_t elem_size = 0; // table default
        if (lex_.peek().kind == TokKind::Ident && peekIs("bytes")) {
            // Optional: "array A[N] bytes 4;"
            lex_.next();
            const std::int64_t bytes = parseSizeExpr();
            if (bytes <= 0 || bytes > (1 << 20))
                lex_.error("array '" + name + "' has bad element size " +
                           std::to_string(bytes));
            elem_size = static_cast<std::uint32_t>(bytes);
        }
        arrays_.create(name, std::move(extents), elem_size);
        expectSymbol(";");
    }

    int
    loopIndexOf(const std::string &var) const
    {
        for (std::size_t i = 0; i < loops_.size(); ++i) {
            if (loops_[i].var == var)
                return static_cast<int>(i);
        }
        return -1;
    }

    void
    parseLoop()
    {
        // "for" already consumed by caller.
        Loop loop;
        loop.var = expectAnyIdent();
        if (loopIndexOf(loop.var) >= 0)
            lex_.error("duplicate loop variable '" + loop.var + "'");
        expectSymbol("=");
        loop.lower = parseSizeExpr();
        expectSymbol("..");
        loop.upper = parseSizeExpr();
        if (lex_.peek().kind == TokKind::Ident && peekIs("step")) {
            lex_.next();
            loop.step = parseSizeExpr();
        }
        if (loop.tripCount() <= 0)
            lex_.error("loop '" + loop.var + "' has an empty range");
        loops_.push_back(loop);
        expectSymbol("{");
        if (lex_.peek().kind == TokKind::Ident && peekIs("for")) {
            lex_.next();
            parseLoop();
        } else {
            while (!peekIs("}"))
                parseStatement();
        }
        expectSymbol("}");
    }

    void
    parseStatement()
    {
        std::string label;
        ExprPtr guard;
        if (lex_.peek().kind == TokKind::Ident && peekIs("if")) {
            lex_.next();
            expectSymbol("(");
            guard = parseExpr(0);
            expectSymbol(")");
        }
        // Lookahead to distinguish "label:" from "ref = ...".
        if (lex_.peek().kind != TokKind::Ident)
            lex_.error("expected statement");
        const std::string first = lex_.next().text;
        if (acceptSymbol(":")) {
            label = first;
        } else {
            // `first` begins the LHS reference; put it back logically by
            // parsing the ref with a pre-read name.
            ArrayRef lhs = parseRefWithName(first);
            finishStatement(std::move(label), std::move(lhs),
                            std::move(guard));
            return;
        }
        if (!guard && lex_.peek().kind == TokKind::Ident && peekIs("if")) {
            lex_.next();
            expectSymbol("(");
            guard = parseExpr(0);
            expectSymbol(")");
        }
        const std::string lhs_name = expectAnyIdent();
        ArrayRef lhs = parseRefWithName(lhs_name);
        finishStatement(std::move(label), std::move(lhs), std::move(guard));
    }

    void
    finishStatement(std::string label, ArrayRef lhs, ExprPtr guard)
    {
        expectSymbol("=");
        ExprPtr rhs = parseExpr(0);
        expectSymbol(";");
        if (label.empty())
            label = "S" + std::to_string(statements_.size() + 1);
        statements_.emplace_back(std::move(label), std::move(lhs),
                                 std::move(rhs), std::move(guard));
    }

    ArrayId
    arrayOrError(const std::string &name)
    {
        const ArrayId id = arrays_.find(name);
        if (id == kInvalidArray)
            lex_.error("unknown array '" + name + "'");
        return id;
    }

    /** Parse subscripts for array @p name (already consumed). */
    ArrayRef
    parseRefWithName(const std::string &name)
    {
        ArrayRef ref;
        ref.array = arrayOrError(name);
        while (acceptSymbol("["))
            ref.subscripts.push_back(parseSubscript());
        const std::size_t dims = arrays_.info(ref.array).extents.size();
        if (ref.subscripts.size() != dims) {
            lex_.error("array '" + name + "' expects " +
                       std::to_string(dims) + " subscripts");
        }
        return ref;
    }

    /** One "[...]" body; the ']' is consumed here. */
    Subscript
    parseSubscript()
    {
        // Indirect form: ArrayName [ affine ] — detect by the next
        // identifier naming a known array followed by '['.
        if (lex_.peek().kind == TokKind::Ident &&
            arrays_.find(lex_.peek().text) != kInvalidArray) {
            const std::string inner = lex_.next().text;
            expectSymbol("[");
            AffineExpr idx = parseAffine();
            expectSymbol("]");
            expectSymbol("]");
            return Subscript::throughArray(arrayOrError(inner),
                                           std::move(idx));
        }
        AffineExpr idx = parseAffine();
        expectSymbol("]");
        return Subscript::direct(std::move(idx));
    }

    /** Affine expression over loop variables, params, and integers. */
    AffineExpr
    parseAffine()
    {
        AffineExpr expr = parseAffineTerm(+1);
        for (;;) {
            if (acceptSymbol("+")) {
                expr = expr + parseAffineTerm(+1);
            } else if (acceptSymbol("-")) {
                expr = expr + parseAffineTerm(-1);
            } else {
                return expr;
            }
        }
    }

    AffineExpr
    parseAffineTerm(int sign)
    {
        // term := int | int '*' var | var | var '*' int | param ...
        std::optional<std::int64_t> coeff;
        std::optional<int> var;
        auto absorb = [&](const Token &t) {
            if (t.kind == TokKind::Int) {
                coeff = coeff.value_or(1) * t.intValue;
                return;
            }
            const int li = loopIndexOf(t.text);
            if (li >= 0) {
                if (var)
                    lex_.error("non-affine subscript (var * var)");
                var = li;
                return;
            }
            const auto it = params_.find(t.text);
            if (it == params_.end())
                lex_.error("unknown name '" + t.text + "' in subscript");
            coeff = coeff.value_or(1) * it->second;
        };
        absorb(lex_.next());
        while (acceptSymbol("*"))
            absorb(lex_.next());
        AffineExpr e;
        const std::int64_t c = sign * coeff.value_or(1);
        if (var) {
            e.addTerm(*var, c);
        } else {
            e.addConstant(c);
        }
        return e;
    }

    /** Precedence-climbing RHS expression parser. */
    ExprPtr
    parseExpr(int min_prec)
    {
        ExprPtr lhs = parsePrimary();
        for (;;) {
            const std::optional<OpKind> op = peekBinaryOp();
            if (!op || opPrecedence(*op) < min_prec)
                return lhs;
            lex_.next();
            ExprPtr rhs = parseExpr(opPrecedence(*op) + 1);
            lhs = Expr::binary(*op, std::move(lhs), std::move(rhs));
        }
    }

    std::optional<OpKind>
    peekBinaryOp() const
    {
        const Token &t = lex_.peek();
        if (t.kind != TokKind::Symbol)
            return std::nullopt;
        if (t.text == "+")
            return OpKind::Add;
        if (t.text == "-")
            return OpKind::Sub;
        if (t.text == "*")
            return OpKind::Mul;
        if (t.text == "/")
            return OpKind::Div;
        if (t.text == "<<")
            return OpKind::Shl;
        if (t.text == ">>")
            return OpKind::Shr;
        if (t.text == "&")
            return OpKind::And;
        if (t.text == "|")
            return OpKind::Or;
        if (t.text == "^")
            return OpKind::Xor;
        return std::nullopt;
    }

    ExprPtr
    parsePrimary()
    {
        const Token &t = lex_.peek();
        if (t.kind == TokKind::Int) {
            return Expr::constant(
                static_cast<double>(lex_.next().intValue));
        }
        if (t.kind == TokKind::Float)
            return Expr::constant(lex_.next().floatValue);
        if (acceptSymbol("(")) {
            ExprPtr e = parseExpr(0);
            expectSymbol(")");
            return e;
        }
        if (t.kind == TokKind::Ident) {
            if (t.text == "min" || t.text == "max") {
                const OpKind op =
                    t.text == "min" ? OpKind::Min : OpKind::Max;
                lex_.next();
                expectSymbol("(");
                ExprPtr a = parseExpr(0);
                expectSymbol(",");
                ExprPtr b = parseExpr(0);
                expectSymbol(")");
                return Expr::binary(op, std::move(a), std::move(b));
            }
            const std::string name = lex_.next().text;
            return Expr::ref(parseRefWithName(name));
        }
        lex_.error("expected expression");
    }

    Lexer lex_;
    std::string name_;
    ArrayTable &arrays_;
    const ParamMap &params_;
    std::vector<Loop> loops_;
    std::vector<Statement> statements_;
};

} // namespace

LoopNest
parseKernel(const std::string &source, const std::string &name,
            ArrayTable &arrays, const ParamMap &params)
{
    return Parser(source, name, arrays, params).parse();
}

} // namespace ndp::ir
