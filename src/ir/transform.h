#ifndef NDP_IR_TRANSFORM_H
#define NDP_IR_TRANSFORM_H

/**
 * @file
 * Loop-nest transformations used around the partitioner. The paper's
 * Figure 12 unrolls the loop body by one iteration "to have enough
 * statements filling the window"; unroll() provides exactly that:
 * body statements are replicated with the innermost induction variable
 * shifted, and the loop step scaled.
 */

#include "ir/statement.h"

namespace ndp::ir {

/**
 * Unroll the innermost loop of @p nest by @p factor.
 *
 * The result's innermost loop advances by factor*step and its body
 * contains factor copies of the original statements, copy k reading
 * and writing with the innermost variable shifted by k*step. Labels
 * gain a ".k" suffix (S1 -> S1.0, S1.1, ...), matching the paper's
 * S11/S21 naming idea.
 *
 * The innermost trip count must be divisible by @p factor (no
 * remainder loop is generated).
 */
LoopNest unroll(const LoopNest &nest, std::int64_t factor);

/**
 * Shift every affine use of loop variable @p loop_index in @p expr by
 * @p offset iterations (i -> i + offset). Indirect subscripts shift
 * their index-array position the same way.
 */
AffineExpr shiftAffine(const AffineExpr &expr, int loop_index,
                       std::int64_t offset);

/** Shift a whole reference (all its subscripts). */
ArrayRef shiftRef(const ArrayRef &ref, int loop_index,
                  std::int64_t offset);

} // namespace ndp::ir

#endif // NDP_IR_TRANSFORM_H
