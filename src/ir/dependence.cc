#include "ir/dependence.h"

#include "support/error.h"

namespace ndp::ir {

const char *
toString(DepKind kind)
{
    switch (kind) {
      case DepKind::Flow:
        return "flow";
      case DepKind::Anti:
        return "anti";
      case DepKind::Output:
        return "output";
    }
    return "?";
}

namespace {

/** Resolved access set of one instance. */
struct AccessSet
{
    ResolvedRef write;
    std::vector<ResolvedRef> reads;
};

/**
 * Whether two refs may touch the same element. Exact when both are
 * resolvable; conservative same-array aliasing otherwise.
 */
bool
mayConflict(const ResolvedRef &a, const ResolvedRef &b,
            bool inspector_resolved, bool &is_may)
{
    if (a.array != b.array)
        return false;
    if (!inspector_resolved && (!a.analyzable || !b.analyzable)) {
        // Cannot compare addresses at compile time: conservatively
        // assume a conflict (a may-dependence).
        is_may = true;
        return true;
    }
    is_may = false;
    return a.addr == b.addr;
}

} // namespace

std::vector<Dependence>
analyzeDependences(std::span<const StatementInstance> instances,
                   const ArrayTable &arrays, bool inspector_resolved)
{
    std::vector<AccessSet> sets;
    sets.reserve(instances.size());
    for (const StatementInstance &inst : instances) {
        AccessSet set;
        set.write = resolveWrite(inst, arrays);
        set.reads = resolveReads(inst, arrays);
        sets.push_back(std::move(set));
    }

    std::vector<Dependence> deps;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
            bool may = false;
            // Flow: i writes, j reads.
            bool flow = false;
            for (const ResolvedRef &r : sets[j].reads) {
                bool m = false;
                if (mayConflict(sets[i].write, r, inspector_resolved, m)) {
                    flow = true;
                    may = may || m;
                }
            }
            if (flow)
                deps.push_back({i, j, DepKind::Flow, may});

            // Anti: i reads, j writes.
            may = false;
            bool anti = false;
            for (const ResolvedRef &r : sets[i].reads) {
                bool m = false;
                if (mayConflict(r, sets[j].write, inspector_resolved, m)) {
                    anti = true;
                    may = may || m;
                }
            }
            if (anti)
                deps.push_back({i, j, DepKind::Anti, may});

            // Output: both write.
            bool m = false;
            if (mayConflict(sets[i].write, sets[j].write,
                            inspector_resolved, m)) {
                deps.push_back({i, j, DepKind::Output, m});
            }
        }
    }
    return deps;
}

double
analyzableFraction(const LoopNest &nest)
{
    std::int64_t total = 0;
    std::int64_t analyzable = 0;
    for (const Statement &stmt : nest.body()) {
        ++total;
        if (stmt.lhs().isAnalyzable())
            ++analyzable;
        for (const ArrayRef *ref : stmt.reads()) {
            ++total;
            if (ref->isAnalyzable())
                ++analyzable;
        }
    }
    return total == 0 ? 1.0
                      : static_cast<double>(analyzable) /
                            static_cast<double>(total);
}

} // namespace ndp::ir
