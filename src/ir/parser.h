#ifndef NDP_IR_PARSER_H
#define NDP_IR_PARSER_H

/**
 * @file
 * A small textual front end for loop-nest kernels, standing in for the
 * paper's LLVM source-to-source translator. Example:
 *
 *   array A[N]; array B[N]; array C[N]; array D[N]; array E[N];
 *   for i = 0..N {
 *     S1: A[i] = B[i] + C[i] + D[i] + E[i];
 *     S2: X[i] = Y[i] + C[i];
 *   }
 *
 * Supported: multi-dimensional arrays and loops, affine subscripts
 * (i, 2*i+1, i+j-1), one-level indirect subscripts (X[Y[i]]),
 * parentheses and the operators + - * / << >> & | ^ min() max(),
 * floating literals, optional statement labels, and optional guards
 * (`if (M[i]) stmt`). Identifiers in bounds/extents resolve through a
 * caller-supplied parameter map.
 */

#include <cstdint>
#include <map>
#include <string>

#include "ir/statement.h"

namespace ndp::ir {

/** Symbolic parameters usable in array extents and loop bounds. */
using ParamMap = std::map<std::string, std::int64_t>;

/**
 * Parse one kernel (declarations + a single loop nest).
 *
 * Arrays declared with `array NAME[extent]...;` are created in
 * @p arrays; previously created arrays may be referenced without a
 * declaration. Throws ndp::FatalError with a line/column diagnostic on
 * malformed input.
 */
LoopNest parseKernel(const std::string &source, const std::string &name,
                     ArrayTable &arrays, const ParamMap &params = {});

} // namespace ndp::ir

#endif // NDP_IR_PARSER_H
