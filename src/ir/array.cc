#include "ir/array.h"

#include "support/error.h"

namespace ndp::ir {

ArrayId
ArrayTable::create(const std::string &name,
                   std::vector<std::int64_t> extents,
                   std::uint32_t element_size)
{
    NDP_REQUIRE(!name.empty(), "array needs a name");
    NDP_REQUIRE(byName_.find(name) == byName_.end(),
                "duplicate array name '" << name << "'");
    NDP_REQUIRE(!extents.empty(), "array '" << name << "' needs extents");
    for (std::int64_t e : extents)
        NDP_REQUIRE(e > 0, "array '" << name << "' has extent " << e);
    if (element_size == 0)
        element_size = defaultElemSize_;

    ArrayInfo info;
    info.id = static_cast<ArrayId>(arrays_.size());
    info.name = name;
    info.extents = std::move(extents);
    info.elementSize = element_size;
    info.base = nextBase_;

    // Page-align the next base and leave one guard page between arrays
    // so distinct arrays never share a page (keeps page-level profiling
    // per-array, like separate allocations would). Each array is then
    // staggered by a few lines within its first page so same-subscript
    // elements of different arrays do not all collide in one L1 set.
    const mem::Addr span = info.sizeBytes();
    nextBase_ = mem::pageAlign(nextBase_ + span + 2 * mem::kPageSize - 1);
    nextBase_ += (static_cast<mem::Addr>(info.id + 1) % 8) *
                 3 * mem::kLineSize;

    byName_.emplace(info.name, info.id);
    arrays_.push_back(std::move(info));
    return arrays_.back().id;
}

void
ArrayTable::setDefaultElementSize(std::uint32_t bytes)
{
    NDP_REQUIRE(bytes > 0, "zero default element size");
    defaultElemSize_ = bytes;
}

const ArrayInfo &
ArrayTable::info(ArrayId id) const
{
    NDP_CHECK(id >= 0 && static_cast<std::size_t>(id) < arrays_.size(),
              "bad array id " << id);
    return arrays_[static_cast<std::size_t>(id)];
}

ArrayInfo &
ArrayTable::info(ArrayId id)
{
    NDP_CHECK(id >= 0 && static_cast<std::size_t>(id) < arrays_.size(),
              "bad array id " << id);
    return arrays_[static_cast<std::size_t>(id)];
}

ArrayId
ArrayTable::find(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? kInvalidArray : it->second;
}

mem::Addr
ArrayTable::elementAddr(ArrayId id, std::int64_t flat) const
{
    const ArrayInfo &a = info(id);
    // Out-of-bounds indirect indices are clamped modulo the extent; the
    // paper's irregular applications guarantee in-range indices, but a
    // synthetic index table must never escape the array.
    const std::int64_t n = a.elementCount();
    std::int64_t idx = flat % n;
    if (idx < 0)
        idx += n;
    return a.base + static_cast<mem::Addr>(idx) * a.elementSize;
}

std::int64_t
ArrayTable::flatIndex(ArrayId id,
                      const std::vector<std::int64_t> &indices) const
{
    const ArrayInfo &a = info(id);
    NDP_CHECK(indices.size() == a.extents.size(),
              "array '" << a.name << "' expects " << a.extents.size()
                        << " subscripts, got " << indices.size());
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < indices.size(); ++d) {
        std::int64_t idx = indices[d] % a.extents[d];
        if (idx < 0)
            idx += a.extents[d];
        flat = flat * a.extents[d] + idx;
    }
    return flat;
}

mem::Addr
ArrayTable::elementAddr(ArrayId id,
                        const std::vector<std::int64_t> &indices) const
{
    return elementAddr(id, flatIndex(id, indices));
}

void
ArrayTable::setIndexData(ArrayId id, std::vector<std::int64_t> values)
{
    const ArrayInfo &a = info(id);
    NDP_REQUIRE(static_cast<std::int64_t>(values.size()) ==
                    a.elementCount(),
                "index data size mismatch for '" << a.name << "'");
    indexData_[id] = std::move(values);
}

bool
ArrayTable::hasIndexData(ArrayId id) const
{
    return indexData_.find(id) != indexData_.end();
}

std::int64_t
ArrayTable::indexValue(ArrayId id, std::int64_t flat) const
{
    const auto it = indexData_.find(id);
    NDP_CHECK(it != indexData_.end(),
              "no index data for array " << info(id).name);
    const auto &values = it->second;
    std::int64_t idx = flat % static_cast<std::int64_t>(values.size());
    if (idx < 0)
        idx += static_cast<std::int64_t>(values.size());
    return values[static_cast<std::size_t>(idx)];
}

} // namespace ndp::ir
