#ifndef NDP_IR_EXPR_H
#define NDP_IR_EXPR_H

/**
 * @file
 * Expression trees for statement right-hand sides. References carry
 * affine subscripts (statically analyzable, Table 1) or one-level
 * indirect subscripts X[Y[affine]] (the may-dependence case handled by
 * the inspector/executor, Section 4.5).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/affine.h"
#include "ir/array.h"
#include "ir/ops.h"

namespace ndp::ir {

/**
 * One array subscript: either an affine function of the loop variables
 * or an indirect lookup through an index array.
 */
struct Subscript
{
    /** Affine part; for indirect subscripts this indexes @ref indirect. */
    AffineExpr affine;
    /** Index array for X[Y[...]] patterns; kInvalidArray when affine. */
    ArrayId indirect = kInvalidArray;

    bool isIndirect() const { return indirect != kInvalidArray; }

    static Subscript
    direct(AffineExpr e)
    {
        Subscript s;
        s.affine = std::move(e);
        return s;
    }

    static Subscript
    throughArray(ArrayId index_array, AffineExpr e)
    {
        Subscript s;
        s.affine = std::move(e);
        s.indirect = index_array;
        return s;
    }
};

/** A reference to one array element, e.g. A[i+1][j] or X[Y[i]]. */
struct ArrayRef
{
    ArrayId array = kInvalidArray;
    std::vector<Subscript> subscripts;

    /** All subscripts affine => location derivable at compile time. */
    bool
    isAnalyzable() const
    {
        for (const Subscript &s : subscripts) {
            if (s.isIndirect())
                return false;
        }
        return true;
    }

    std::string toString(const ArrayTable &arrays,
                         const std::vector<std::string> &loop_names) const;
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/**
 * Immutable expression node: an array reference, a literal constant, or
 * a binary operation.
 */
class Expr
{
  public:
    enum class Kind
    {
        Ref,
        Const,
        Binary,
    };

    static ExprPtr ref(ArrayRef r);
    static ExprPtr constant(double value);
    static ExprPtr binary(OpKind op, ExprPtr lhs, ExprPtr rhs);

    Kind kind() const { return kind_; }

    const ArrayRef &asRef() const;
    double asConstant() const;
    OpKind op() const;
    const Expr &lhs() const;
    const Expr &rhs() const;

    ExprPtr clone() const;

    /** Append pointers to every ArrayRef leaf, left-to-right. */
    void collectRefs(std::vector<const ArrayRef *> &out) const;

    /** Count operations by Table 3 category (AddSub/MulDiv/Other). */
    void countOps(std::int64_t counts[3]) const;

    /** Total load-balancing cost of the operators in this tree. */
    std::int64_t totalOpCost() const;

    std::string toString(const ArrayTable &arrays,
                         const std::vector<std::string> &loop_names) const;

  private:
    Expr() = default;

    Kind kind_ = Kind::Const;
    ArrayRef ref_;
    double value_ = 0.0;
    OpKind op_ = OpKind::Add;
    ExprPtr lhs_;
    ExprPtr rhs_;
};

} // namespace ndp::ir

#endif // NDP_IR_EXPR_H
