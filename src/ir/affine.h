#ifndef NDP_IR_AFFINE_H
#define NDP_IR_AFFINE_H

/**
 * @file
 * Affine expressions over loop induction variables:
 * sum(coeff_k * loopvar_k) + constant. These are the statically
 * analyzable subscripts of Table 1; everything else (indirect
 * subscripts) goes through the inspector/executor path.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace ndp::ir {

/** A concrete iteration point: one value per loop, outermost first. */
using IterationVector = std::vector<std::int64_t>;

/** Affine function of the enclosing loops' induction variables. */
class AffineExpr
{
  public:
    AffineExpr() = default;

    /** The constant function @p c. */
    static AffineExpr constant(std::int64_t c);

    /** coeff * loopvar(index) (+ 0). */
    static AffineExpr term(int loop_index, std::int64_t coeff = 1);

    /** Add @p coeff * loopvar(index) to this expression. */
    void addTerm(int loop_index, std::int64_t coeff);
    void addConstant(std::int64_t c) { constant_ += c; }

    std::int64_t constantPart() const { return constant_; }

    /** Coefficient of loopvar(index), 0 if absent. */
    std::int64_t coefficient(int loop_index) const;

    /** True when no loop variable appears (pure constant). */
    bool isConstant() const { return terms_.empty(); }

    /** Evaluate at the concrete iteration @p iter. */
    std::int64_t evaluate(const IterationVector &iter) const;

    AffineExpr operator+(const AffineExpr &other) const;
    AffineExpr operator*(std::int64_t scale) const;
    bool operator==(const AffineExpr &other) const;

    /** Render with loop-variable names from @p loop_names. */
    std::string toString(const std::vector<std::string> &loop_names) const;

  private:
    void normalize();

    // Sparse (loop index, coefficient) pairs, sorted by loop index,
    // coefficients never zero.
    std::vector<std::pair<int, std::int64_t>> terms_;
    std::int64_t constant_ = 0;
};

} // namespace ndp::ir

#endif // NDP_IR_AFFINE_H
