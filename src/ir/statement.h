#ifndef NDP_IR_STATEMENT_H
#define NDP_IR_STATEMENT_H

/**
 * @file
 * Program statements and loop nests: the unit the paper's algorithm
 * consumes. A Statement is `lhs = rhs-expression` with an optional
 * guard (a conditional that must be duplicated alongside offloaded
 * subcomputations, Section 4.5). A LoopNest carries the enclosing
 * loops, the statement body, and an optional outer timing loop (the
 * inspector/executor hook).
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace ndp::ir {

/** Index of a statement within its loop-nest body. */
using StatementIndex = std::int32_t;

/** One assignment statement. */
class Statement
{
  public:
    Statement(std::string label, ArrayRef lhs, ExprPtr rhs,
              ExprPtr guard = nullptr);

    Statement(Statement &&) = default;
    Statement &operator=(Statement &&) = default;
    Statement(const Statement &other) { *this = other; }
    Statement &operator=(const Statement &other);

    const std::string &label() const { return label_; }
    const ArrayRef &lhs() const { return lhs_; }
    const Expr &rhs() const { return *rhs_; }

    bool hasGuard() const { return guard_ != nullptr; }
    const Expr &guard() const;

    /**
     * The read operands (RHS leaves followed by guard leaves),
     * left-to-right. Pointers remain valid for the statement's
     * lifetime.
     */
    const std::vector<const ArrayRef *> &reads() const { return reads_; }

    /** Number of RHS leaves (excludes guard reads). */
    std::size_t rhsReadCount() const { return rhsReadCount_; }

    /** Operator counts by Table 3 category. */
    void countOps(std::int64_t counts[3]) const { rhs_->countOps(counts); }

    /** Total operator cost (division 10x) of the RHS. */
    std::int64_t totalOpCost() const { return rhs_->totalOpCost(); }

    std::string toString(const ArrayTable &arrays,
                         const std::vector<std::string> &loop_names) const;

  private:
    void rebuildReadCache();

    std::string label_;
    ArrayRef lhs_;
    ExprPtr rhs_;
    ExprPtr guard_;
    std::vector<const ArrayRef *> reads_;
    std::size_t rhsReadCount_ = 0;
};

/** One loop of a nest: for (var = lower; var < upper; var += step). */
struct Loop
{
    std::string var;
    std::int64_t lower = 0;
    std::int64_t upper = 0; ///< exclusive
    std::int64_t step = 1;

    std::int64_t
    tripCount() const
    {
        if (step <= 0 || upper <= lower)
            return 0;
        return (upper - lower + step - 1) / step;
    }
};

/** A perfectly nested loop with a straight-line statement body. */
class LoopNest
{
  public:
    LoopNest(std::string name, std::vector<Loop> loops,
             std::vector<Statement> body);

    const std::string &name() const { return name_; }
    const std::vector<Loop> &loops() const { return loops_; }
    const std::vector<Statement> &body() const { return body_; }
    std::vector<Statement> &body() { return body_; }

    /** Loop variable names, outermost first. */
    std::vector<std::string> loopNames() const;

    /** Product of all trip counts. */
    std::int64_t iterationCount() const;

    /**
     * Enumerate the iteration space in lexicographic order, invoking
     * @p fn with each concrete iteration vector.
     */
    void forEachIteration(
        const std::function<void(const IterationVector &)> &fn) const;

    /** The @p k-th iteration (lexicographic), 0-based. */
    IterationVector iterationAt(std::int64_t k) const;

    /**
     * Trip count of the surrounding timing loop (Section 4.5's
     * inspector/executor): the driver runs @ref inspectorTrips of them
     * through the inspector and the rest through the optimized
     * executor. Defaults model a non-iterative kernel.
     */
    std::int64_t timingTrips = 1;
    std::int64_t inspectorTrips = 0;

    std::string toString(const ArrayTable &arrays) const;

  private:
    std::string name_;
    std::vector<Loop> loops_;
    std::vector<Statement> body_;
};

} // namespace ndp::ir

#endif // NDP_IR_STATEMENT_H
