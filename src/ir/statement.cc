#include "ir/statement.h"

#include "support/error.h"

namespace ndp::ir {

Statement::Statement(std::string label, ArrayRef lhs, ExprPtr rhs,
                     ExprPtr guard)
    : label_(std::move(label)),
      lhs_(std::move(lhs)),
      rhs_(std::move(rhs)),
      guard_(std::move(guard))
{
    NDP_REQUIRE(rhs_ != nullptr, "statement without RHS");
    NDP_REQUIRE(lhs_.array != kInvalidArray, "statement without LHS");
    rebuildReadCache();
}

Statement &
Statement::operator=(const Statement &other)
{
    if (this == &other)
        return *this;
    label_ = other.label_;
    lhs_ = other.lhs_;
    rhs_ = other.rhs_->clone();
    guard_ = other.guard_ ? other.guard_->clone() : nullptr;
    rebuildReadCache();
    return *this;
}

const Expr &
Statement::guard() const
{
    NDP_CHECK(guard_ != nullptr, "guard() on unguarded statement");
    return *guard_;
}

void
Statement::rebuildReadCache()
{
    reads_.clear();
    rhs_->collectRefs(reads_);
    rhsReadCount_ = reads_.size();
    if (guard_)
        guard_->collectRefs(reads_);
}

std::string
Statement::toString(const ArrayTable &arrays,
                    const std::vector<std::string> &loop_names) const
{
    std::string out;
    if (guard_) {
        out += "if (" + guard_->toString(arrays, loop_names) + ") ";
    }
    out += lhs_.toString(arrays, loop_names) + " = " +
           rhs_->toString(arrays, loop_names);
    return out;
}

LoopNest::LoopNest(std::string name, std::vector<Loop> loops,
                   std::vector<Statement> body)
    : name_(std::move(name)), loops_(std::move(loops)),
      body_(std::move(body))
{
    NDP_REQUIRE(!loops_.empty(), "loop nest '" << name_ << "' has no loops");
    NDP_REQUIRE(!body_.empty(),
                "loop nest '" << name_ << "' has an empty body");
    for (const Loop &l : loops_)
        NDP_REQUIRE(l.step > 0, "loop '" << l.var << "' has step " << l.step);
}

std::vector<std::string>
LoopNest::loopNames() const
{
    std::vector<std::string> names;
    names.reserve(loops_.size());
    for (const Loop &l : loops_)
        names.push_back(l.var);
    return names;
}

std::int64_t
LoopNest::iterationCount() const
{
    std::int64_t n = 1;
    for (const Loop &l : loops_)
        n *= l.tripCount();
    return n;
}

void
LoopNest::forEachIteration(
    const std::function<void(const IterationVector &)> &fn) const
{
    IterationVector iter(loops_.size());
    const std::int64_t total = iterationCount();
    for (std::int64_t k = 0; k < total; ++k) {
        std::int64_t rem = k;
        for (std::size_t d = loops_.size(); d-- > 0;) {
            const std::int64_t trips = loops_[d].tripCount();
            iter[d] = loops_[d].lower + (rem % trips) * loops_[d].step;
            rem /= trips;
        }
        fn(iter);
    }
}

IterationVector
LoopNest::iterationAt(std::int64_t k) const
{
    NDP_CHECK(k >= 0 && k < iterationCount(),
              "iteration index " << k << " out of range");
    IterationVector iter(loops_.size());
    std::int64_t rem = k;
    for (std::size_t d = loops_.size(); d-- > 0;) {
        const std::int64_t trips = loops_[d].tripCount();
        iter[d] = loops_[d].lower + (rem % trips) * loops_[d].step;
        rem /= trips;
    }
    return iter;
}

std::string
LoopNest::toString(const ArrayTable &arrays) const
{
    const std::vector<std::string> names = loopNames();
    std::string out;
    std::string indent;
    for (const Loop &l : loops_) {
        out += indent + "for " + l.var + " = " + std::to_string(l.lower) +
               ".." + std::to_string(l.upper);
        if (l.step != 1)
            out += " step " + std::to_string(l.step);
        out += " {\n";
        indent += "  ";
    }
    for (const Statement &s : body_)
        out += indent + s.label() + ": " + s.toString(arrays, names) + "\n";
    for (std::size_t d = loops_.size(); d-- > 0;) {
        indent.resize(indent.size() - 2);
        out += indent + "}\n";
    }
    return out;
}

} // namespace ndp::ir
