#include "ir/instance.h"

#include "support/error.h"

namespace ndp::ir {

std::vector<std::int64_t>
evaluateSubscripts(const ArrayRef &ref, const IterationVector &iter,
                   const ArrayTable &arrays)
{
    std::vector<std::int64_t> values;
    values.reserve(ref.subscripts.size());
    for (const Subscript &s : ref.subscripts) {
        std::int64_t v = s.affine.evaluate(iter);
        if (s.isIndirect()) {
            // One-level indirection: the affine part indexes the index
            // array, whose realised contents give the actual subscript.
            v = arrays.indexValue(s.indirect, v);
        }
        values.push_back(v);
    }
    return values;
}

mem::Addr
resolveAddr(const ArrayRef &ref, const IterationVector &iter,
            const ArrayTable &arrays)
{
    return arrays.elementAddr(ref.array,
                              evaluateSubscripts(ref, iter, arrays));
}

ResolvedRef
resolveRef(const ArrayRef &ref, const IterationVector &iter,
           const ArrayTable &arrays)
{
    ResolvedRef r;
    r.ref = &ref;
    r.array = ref.array;
    r.addr = resolveAddr(ref, iter, arrays);
    r.size = arrays.info(ref.array).elementSize;
    r.analyzable = ref.isAnalyzable();
    return r;
}

std::vector<ResolvedRef>
resolveReads(const StatementInstance &inst, const ArrayTable &arrays)
{
    std::vector<ResolvedRef> out;
    resolveReadsInto(inst, arrays, out);
    return out;
}

void
resolveReadsInto(const StatementInstance &inst, const ArrayTable &arrays,
                 std::vector<ResolvedRef> &out)
{
    NDP_CHECK(inst.stmt != nullptr, "instance without statement");
    out.clear();
    out.reserve(inst.stmt->reads().size());
    for (const ArrayRef *ref : inst.stmt->reads())
        out.push_back(resolveRef(*ref, inst.iter, arrays));
}

ResolvedRef
resolveWrite(const StatementInstance &inst, const ArrayTable &arrays)
{
    NDP_CHECK(inst.stmt != nullptr, "instance without statement");
    return resolveRef(inst.stmt->lhs(), inst.iter, arrays);
}

bool
refsIterationInvariant(const Statement &stmt)
{
    // A constant affine subscript resolves the same whether direct or
    // indirect: an indirect subscript at a fixed position reads a fixed
    // index-array element, and index data does not change mid-plan.
    const auto invariant = [](const ArrayRef &ref) {
        for (const Subscript &s : ref.subscripts) {
            if (!s.affine.isConstant())
                return false;
        }
        return true;
    };
    if (!invariant(stmt.lhs()))
        return false;
    for (const ArrayRef *ref : stmt.reads()) {
        if (!invariant(*ref))
            return false;
    }
    return true;
}

} // namespace ndp::ir
