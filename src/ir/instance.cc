#include "ir/instance.h"

#include "support/error.h"

namespace ndp::ir {

std::vector<std::int64_t>
evaluateSubscripts(const ArrayRef &ref, const IterationVector &iter,
                   const ArrayTable &arrays)
{
    std::vector<std::int64_t> values;
    values.reserve(ref.subscripts.size());
    for (const Subscript &s : ref.subscripts) {
        std::int64_t v = s.affine.evaluate(iter);
        if (s.isIndirect()) {
            // One-level indirection: the affine part indexes the index
            // array, whose realised contents give the actual subscript.
            v = arrays.indexValue(s.indirect, v);
        }
        values.push_back(v);
    }
    return values;
}

mem::Addr
resolveAddr(const ArrayRef &ref, const IterationVector &iter,
            const ArrayTable &arrays)
{
    return arrays.elementAddr(ref.array,
                              evaluateSubscripts(ref, iter, arrays));
}

ResolvedRef
resolveRef(const ArrayRef &ref, const IterationVector &iter,
           const ArrayTable &arrays)
{
    ResolvedRef r;
    r.ref = &ref;
    r.array = ref.array;
    r.addr = resolveAddr(ref, iter, arrays);
    r.size = arrays.info(ref.array).elementSize;
    r.analyzable = ref.isAnalyzable();
    return r;
}

std::vector<ResolvedRef>
resolveReads(const StatementInstance &inst, const ArrayTable &arrays)
{
    NDP_CHECK(inst.stmt != nullptr, "instance without statement");
    std::vector<ResolvedRef> out;
    out.reserve(inst.stmt->reads().size());
    for (const ArrayRef *ref : inst.stmt->reads())
        out.push_back(resolveRef(*ref, inst.iter, arrays));
    return out;
}

ResolvedRef
resolveWrite(const StatementInstance &inst, const ArrayTable &arrays)
{
    NDP_CHECK(inst.stmt != nullptr, "instance without statement");
    return resolveRef(inst.stmt->lhs(), inst.iter, arrays);
}

} // namespace ndp::ir
