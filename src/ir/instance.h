#ifndef NDP_IR_INSTANCE_H
#define NDP_IR_INSTANCE_H

/**
 * @file
 * Statement instances (a statement executed at one concrete loop
 * iteration — the paper's footnote 2) and reference resolution: turning
 * an ArrayRef plus an iteration vector into a concrete address.
 * Indirect subscripts resolve through the index-array contents held by
 * the ArrayTable, which is exactly the information the inspector phase
 * gathers at runtime.
 */

#include <cstdint>
#include <vector>

#include "ir/statement.h"

namespace ndp::ir {

/** A (statement, iteration) pair. */
struct StatementInstance
{
    const Statement *stmt = nullptr;
    IterationVector iter;
    /** Lexicographic iteration number, for ordering/windowing. */
    std::int64_t iterationNumber = 0;
};

/** A reference resolved to a concrete address. */
struct ResolvedRef
{
    const ArrayRef *ref = nullptr;
    ArrayId array = kInvalidArray;
    mem::Addr addr = 0;
    std::uint32_t size = 0;
    /**
     * Whether the compiler can resolve this address statically (all
     * subscripts affine). Non-analyzable refs are resolvable here only
     * because the ArrayTable holds the realised index values — i.e.,
     * only after the inspector ran.
     */
    bool analyzable = true;
};

/** Concrete subscript values of @p ref at @p iter. */
std::vector<std::int64_t> evaluateSubscripts(const ArrayRef &ref,
                                             const IterationVector &iter,
                                             const ArrayTable &arrays);

/** Concrete address of @p ref at @p iter. */
mem::Addr resolveAddr(const ArrayRef &ref, const IterationVector &iter,
                      const ArrayTable &arrays);

/** Fully resolved descriptor of @p ref at @p iter. */
ResolvedRef resolveRef(const ArrayRef &ref, const IterationVector &iter,
                       const ArrayTable &arrays);

/** Resolve every read of @p inst (RHS leaves then guard leaves). */
std::vector<ResolvedRef> resolveReads(const StatementInstance &inst,
                                      const ArrayTable &arrays);

/**
 * resolveReads into a caller-owned buffer (cleared first). The
 * partitioner's compile loop resolves every instance of a nest; reusing
 * one buffer removes an allocation per statement instance.
 */
void resolveReadsInto(const StatementInstance &inst,
                      const ArrayTable &arrays,
                      std::vector<ResolvedRef> &out);

/** Resolve the write (LHS) of @p inst. */
ResolvedRef resolveWrite(const StatementInstance &inst,
                         const ArrayTable &arrays);

/**
 * True when every subscript of the statement's write and reads is a
 * constant affine function: the resolved addresses are then identical
 * at every iteration, so per-iteration re-resolution is pure waste
 * (the pre-warm loop skips it).
 */
bool refsIterationInvariant(const Statement &stmt);

} // namespace ndp::ir

#endif // NDP_IR_INSTANCE_H
