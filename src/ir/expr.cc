#include "ir/expr.h"

#include "support/error.h"

namespace ndp::ir {

const char *
toString(OpKind op)
{
    switch (op) {
      case OpKind::Add:
        return "+";
      case OpKind::Sub:
        return "-";
      case OpKind::Mul:
        return "*";
      case OpKind::Div:
        return "/";
      case OpKind::Shl:
        return "<<";
      case OpKind::Shr:
        return ">>";
      case OpKind::And:
        return "&";
      case OpKind::Or:
        return "|";
      case OpKind::Xor:
        return "^";
      case OpKind::Min:
        return "min";
      case OpKind::Max:
        return "max";
    }
    return "?";
}

const char *
toString(OpCategory cat)
{
    switch (cat) {
      case OpCategory::AddSub:
        return "add/sub";
      case OpCategory::MulDiv:
        return "mul/div";
      case OpCategory::Other:
        return "other";
    }
    return "?";
}

std::string
ArrayRef::toString(const ArrayTable &arrays,
                   const std::vector<std::string> &loop_names) const
{
    std::string out = arrays.info(array).name;
    for (const Subscript &s : subscripts) {
        out += "[";
        if (s.isIndirect()) {
            out += arrays.info(s.indirect).name + "[" +
                   s.affine.toString(loop_names) + "]";
        } else {
            out += s.affine.toString(loop_names);
        }
        out += "]";
    }
    return out;
}

ExprPtr
Expr::ref(ArrayRef r)
{
    NDP_CHECK(r.array != kInvalidArray, "ref to invalid array");
    auto e = ExprPtr(new Expr());
    e->kind_ = Kind::Ref;
    e->ref_ = std::move(r);
    return e;
}

ExprPtr
Expr::constant(double value)
{
    auto e = ExprPtr(new Expr());
    e->kind_ = Kind::Const;
    e->value_ = value;
    return e;
}

ExprPtr
Expr::binary(OpKind op, ExprPtr lhs, ExprPtr rhs)
{
    NDP_CHECK(lhs && rhs, "binary expr with null child");
    auto e = ExprPtr(new Expr());
    e->kind_ = Kind::Binary;
    e->op_ = op;
    e->lhs_ = std::move(lhs);
    e->rhs_ = std::move(rhs);
    return e;
}

const ArrayRef &
Expr::asRef() const
{
    NDP_CHECK(kind_ == Kind::Ref, "asRef() on non-ref expr");
    return ref_;
}

double
Expr::asConstant() const
{
    NDP_CHECK(kind_ == Kind::Const, "asConstant() on non-const expr");
    return value_;
}

OpKind
Expr::op() const
{
    NDP_CHECK(kind_ == Kind::Binary, "op() on non-binary expr");
    return op_;
}

const Expr &
Expr::lhs() const
{
    NDP_CHECK(kind_ == Kind::Binary, "lhs() on non-binary expr");
    return *lhs_;
}

const Expr &
Expr::rhs() const
{
    NDP_CHECK(kind_ == Kind::Binary, "rhs() on non-binary expr");
    return *rhs_;
}

ExprPtr
Expr::clone() const
{
    switch (kind_) {
      case Kind::Ref:
        return ref(ref_);
      case Kind::Const:
        return constant(value_);
      case Kind::Binary:
        return binary(op_, lhs_->clone(), rhs_->clone());
    }
    ndp::panic("unreachable expr kind");
}

void
Expr::collectRefs(std::vector<const ArrayRef *> &out) const
{
    switch (kind_) {
      case Kind::Ref:
        out.push_back(&ref_);
        return;
      case Kind::Const:
        return;
      case Kind::Binary:
        lhs_->collectRefs(out);
        rhs_->collectRefs(out);
        return;
    }
}

void
Expr::countOps(std::int64_t counts[3]) const
{
    if (kind_ != Kind::Binary)
        return;
    ++counts[static_cast<int>(opCategory(op_))];
    lhs_->countOps(counts);
    rhs_->countOps(counts);
}

std::int64_t
Expr::totalOpCost() const
{
    if (kind_ != Kind::Binary)
        return 0;
    return opCost(op_) + lhs_->totalOpCost() + rhs_->totalOpCost();
}

std::string
Expr::toString(const ArrayTable &arrays,
               const std::vector<std::string> &loop_names) const
{
    switch (kind_) {
      case Kind::Ref:
        return ref_.toString(arrays, loop_names);
      case Kind::Const: {
        std::string s = std::to_string(value_);
        // Trim trailing zeros for readability.
        while (s.size() > 1 && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
        return s;
      }
      case Kind::Binary: {
        auto wrap = [&](const Expr &child) {
            std::string text = child.toString(arrays, loop_names);
            if (child.kind() == Kind::Binary &&
                opPrecedence(child.op()) < opPrecedence(op_)) {
                return "(" + text + ")";
            }
            return text;
        };
        return wrap(*lhs_) + " " + ndp::ir::toString(op_) + " " +
               wrap(*rhs_);
      }
    }
    ndp::panic("unreachable expr kind");
}

} // namespace ndp::ir
