#ifndef NDP_IR_ARRAY_H
#define NDP_IR_ARRAY_H

/**
 * @file
 * Program arrays and the virtual address layout that determines their
 * on-chip homes. The ArrayTable plays the role of the paper's
 * OS-assisted allocator (Section 4.1): bases are page-aligned and the
 * (identity) VA->PA mapping preserves bank/channel bits, so the
 * compiler can derive every datum's home node from its address.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address.h"

namespace ndp::ir {

using ArrayId = std::int32_t;
inline constexpr ArrayId kInvalidArray = -1;

/** Static description of one program array. */
struct ArrayInfo
{
    ArrayId id = kInvalidArray;
    std::string name;
    /** Extent of each dimension, outermost first; row-major layout. */
    std::vector<std::int64_t> extents;
    /** Bytes per element (8 = double, the common case). */
    std::uint32_t elementSize = 8;
    /** Virtual base address (page-aligned). */
    mem::Addr base = 0;
    /**
     * Whether the flat-memory-mode profiling step (Vtune-like, Section
     * 6.1) placed this array into MCDRAM rather than DDR.
     */
    bool preferMcdram = false;

    std::int64_t
    elementCount() const
    {
        std::int64_t n = 1;
        for (std::int64_t e : extents)
            n *= e;
        return n;
    }

    std::uint64_t
    sizeBytes() const
    {
        return static_cast<std::uint64_t>(elementCount()) * elementSize;
    }
};

/**
 * Registry and allocator for a program's arrays.
 *
 * Also stores element values for *index arrays* (arrays used inside
 * another array's subscript, e.g. Y in X[Y[i]]): the simulator and the
 * inspector both need the realised index values.
 */
class ArrayTable
{
  public:
    ArrayTable() = default;

    /**
     * Create an array and assign it the next page-aligned base address.
     * @param extents per-dimension extents, outermost first
     * @param element_size bytes per element; 0 uses the table default
     *        (initially 8). Workloads that model array-of-structures
     *        data (particles, grid cells) set the default to a full
     *        cache line.
     */
    ArrayId create(const std::string &name,
                   std::vector<std::int64_t> extents,
                   std::uint32_t element_size = 0);

    /** Element size applied when create() is passed 0. */
    void setDefaultElementSize(std::uint32_t bytes);
    std::uint32_t defaultElementSize() const { return defaultElemSize_; }

    const ArrayInfo &info(ArrayId id) const;
    ArrayInfo &info(ArrayId id);

    /** Lookup by name; kInvalidArray when absent. */
    ArrayId find(const std::string &name) const;

    std::size_t size() const { return arrays_.size(); }

    /** Address of the element at row-major flat index @p flat. */
    mem::Addr elementAddr(ArrayId id, std::int64_t flat) const;

    /** Address of the element at multi-dimensional @p indices. */
    mem::Addr elementAddr(ArrayId id,
                          const std::vector<std::int64_t> &indices) const;

    /** Row-major flat index for multi-dimensional @p indices. */
    std::int64_t flatIndex(ArrayId id,
                           const std::vector<std::int64_t> &indices) const;

    /** Install the contents of an index array (for X[Y[i]] patterns). */
    void setIndexData(ArrayId id, std::vector<std::int64_t> values);

    /** True when index data was installed for @p id. */
    bool hasIndexData(ArrayId id) const;

    /** Value of index array @p id at flat position @p flat. */
    std::int64_t indexValue(ArrayId id, std::int64_t flat) const;

  private:
    std::vector<ArrayInfo> arrays_;
    std::unordered_map<std::string, ArrayId> byName_;
    std::unordered_map<ArrayId, std::vector<std::int64_t>> indexData_;
    mem::Addr nextBase_ = mem::kPageSize; // keep address 0 unused
    std::uint32_t defaultElemSize_ = 8;
};

} // namespace ndp::ir

#endif // NDP_IR_ARRAY_H
