#ifndef NDP_IR_OPS_H
#define NDP_IR_OPS_H

/**
 * @file
 * Operator kinds appearing in statement right-hand sides, their
 * precedence classes (used to build the paper's nested variable sets),
 * and their costs (Section 4.5: division is 10x costlier than
 * addition/multiplication for load-balancing purposes) and Table 3
 * categories (add/sub vs mul/div vs shift/logical/others).
 */

#include <cstdint>

namespace ndp::ir {

/** Binary operators supported in statement bodies. */
enum class OpKind : std::uint8_t
{
    Add,
    Sub,
    Mul,
    Div,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Min,
    Max,
};

/**
 * Associative precedence class. Runs of operators in the same class
 * flatten into one nested-set level (Section 4.2).
 */
enum class OpClass : std::uint8_t
{
    AddLike, ///< + and -
    MulLike, ///< * and /
    Shift,   ///< << and >>
    Logical, ///< & | ^
    MinMax,  ///< min / max
};

/** Table 3 reporting buckets. */
enum class OpCategory : std::uint8_t
{
    AddSub,
    MulDiv,
    Other, ///< shift, logical, min/max
};

constexpr OpClass
opClass(OpKind op)
{
    switch (op) {
      case OpKind::Add:
      case OpKind::Sub:
        return OpClass::AddLike;
      case OpKind::Mul:
      case OpKind::Div:
        return OpClass::MulLike;
      case OpKind::Shl:
      case OpKind::Shr:
        return OpClass::Shift;
      case OpKind::And:
      case OpKind::Or:
      case OpKind::Xor:
        return OpClass::Logical;
      case OpKind::Min:
      case OpKind::Max:
        return OpClass::MinMax;
    }
    return OpClass::AddLike;
}

constexpr OpCategory
opCategory(OpKind op)
{
    switch (opClass(op)) {
      case OpClass::AddLike:
        return OpCategory::AddSub;
      case OpClass::MulLike:
        return OpCategory::MulDiv;
      default:
        return OpCategory::Other;
    }
}

/**
 * Parser/printer precedence (higher binds tighter). MulLike > AddLike;
 * shifts below AddLike and logical lowest, mirroring C.
 */
constexpr int
opPrecedence(OpKind op)
{
    switch (opClass(op)) {
      case OpClass::MulLike:
        return 5;
      case OpClass::AddLike:
        return 4;
      case OpClass::Shift:
        return 3;
      case OpClass::MinMax:
        return 2;
      case OpClass::Logical:
        return 1;
    }
    return 0;
}

/**
 * Load-balancing cost of performing one operation (Section 4.5
 * footnote: division counts 10x an addition/multiplication).
 */
constexpr std::int64_t
opCost(OpKind op)
{
    return op == OpKind::Div ? 10 : 1;
}

/** Whether a op b == b op a (safe to reorder siblings freely). */
constexpr bool
isCommutative(OpKind op)
{
    switch (op) {
      case OpKind::Sub:
      case OpKind::Div:
      case OpKind::Shl:
      case OpKind::Shr:
        return false;
      default:
        return true;
    }
}

const char *toString(OpKind op);
const char *toString(OpCategory cat);

} // namespace ndp::ir

#endif // NDP_IR_OPS_H
