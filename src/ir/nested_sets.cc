#include "ir/nested_sets.h"

#include "support/error.h"

namespace ndp::ir {

std::size_t
VarSet::leafCount() const
{
    std::size_t n = 0;
    for (const Elem &e : elems)
        n += e.isLeaf() ? 1 : e.sub->leafCount();
    return n;
}

std::size_t
VarSet::depth() const
{
    std::size_t d = 1;
    for (const Elem &e : elems) {
        if (!e.isLeaf())
            d = std::max(d, 1 + e.sub->depth());
    }
    return d;
}

namespace {

/** Whether a run of class @p cls may absorb the operator @p op. */
bool
canFlattenInto(OpClass cls, OpKind op)
{
    if (opClass(op) != cls)
        return false;
    switch (cls) {
      case OpClass::AddLike: // a - b == a + (-b): reorderable
      case OpClass::MulLike: // a / b == a * (1/b): reorderable
        return true;
      case OpClass::Logical:
      case OpClass::MinMax:
        return true; // commutative and associative per operator
      case OpClass::Shift:
        return false; // (a<<b)<<c != a<<(b<<c); keep binary
    }
    return false;
}

/**
 * Recursive builder. @p next_leaf walks Statement::reads() in the same
 * left-to-right order as Expr::collectRefs().
 */
void buildInto(const Expr &e, VarSet &set, OpKind tag, int &next_leaf);

std::unique_ptr<VarSet>
buildSet(const Expr &e, int &next_leaf)
{
    auto set = std::make_unique<VarSet>();
    if (e.kind() == Expr::Kind::Binary) {
        set->cls = opClass(e.op());
        // Identity tag for the first element of the run.
        const OpKind lead =
            set->cls == OpClass::MulLike ? OpKind::Mul : e.op();
        buildInto(e.lhs(), *set,
                  set->cls == OpClass::AddLike ? OpKind::Add : lead,
                  next_leaf);
        buildInto(e.rhs(), *set, e.op(), next_leaf);
    } else {
        buildInto(e, *set, OpKind::Add, next_leaf);
    }
    return set;
}

void
buildInto(const Expr &e, VarSet &set, OpKind tag, int &next_leaf)
{
    switch (e.kind()) {
      case Expr::Kind::Const:
        // Constants occupy no node; they fold into whichever
        // subcomputation consumes them.
        return;
      case Expr::Kind::Ref: {
        VarSet::Elem elem;
        elem.op = tag;
        elem.leaf = next_leaf++;
        set.elems.push_back(std::move(elem));
        return;
      }
      case Expr::Kind::Binary: {
        if (canFlattenInto(set.cls, e.op())) {
            // Same-priority run: keep flattening into this set. The
            // left subtree keeps the incoming tag (left-assoc parse
            // puts the run's head there); the right subtree gets this
            // node's operator.
            buildInto(e.lhs(), set, tag, next_leaf);
            buildInto(e.rhs(), set, e.op(), next_leaf);
            return;
        }
        // Different priority (or parentheses): nested set.
        VarSet::Elem elem;
        elem.op = tag;
        elem.sub = buildSet(e, next_leaf);
        // A sub-set that collapsed to a single element (constants were
        // dropped) is hoisted to keep the hierarchy minimal.
        if (elem.sub->elems.size() == 1) {
            VarSet::Elem inner = std::move(elem.sub->elems.front());
            inner.op = tag;
            set.elems.push_back(std::move(inner));
        } else if (!elem.sub->elems.empty()) {
            set.elems.push_back(std::move(elem));
        }
        return;
      }
    }
}

} // namespace

VarSet
buildVarSets(const Statement &stmt)
{
    int next_leaf = 0;
    std::unique_ptr<VarSet> root = buildSet(stmt.rhs(), next_leaf);
    NDP_CHECK(static_cast<std::size_t>(next_leaf) == stmt.rhsReadCount(),
              "nested-set leaf walk out of sync with reads(): "
                  << next_leaf << " vs " << stmt.rhsReadCount());
    return std::move(*root);
}

} // namespace ndp::ir
