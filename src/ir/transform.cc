#include "ir/transform.h"

#include "support/error.h"

namespace ndp::ir {

AffineExpr
shiftAffine(const AffineExpr &expr, int loop_index, std::int64_t offset)
{
    AffineExpr shifted = expr;
    shifted.addConstant(expr.coefficient(loop_index) * offset);
    return shifted;
}

ArrayRef
shiftRef(const ArrayRef &ref, int loop_index, std::int64_t offset)
{
    ArrayRef out = ref;
    for (Subscript &sub : out.subscripts)
        sub.affine = shiftAffine(sub.affine, loop_index, offset);
    return out;
}

namespace {

/** Deep-copy an expression with every reference shifted. */
ExprPtr
shiftExpr(const Expr &e, int loop_index, std::int64_t offset)
{
    switch (e.kind()) {
      case Expr::Kind::Ref:
        return Expr::ref(shiftRef(e.asRef(), loop_index, offset));
      case Expr::Kind::Const:
        return Expr::constant(e.asConstant());
      case Expr::Kind::Binary:
        return Expr::binary(e.op(),
                            shiftExpr(e.lhs(), loop_index, offset),
                            shiftExpr(e.rhs(), loop_index, offset));
    }
    ndp::panic("unreachable expr kind");
}

} // namespace

LoopNest
unroll(const LoopNest &nest, std::int64_t factor)
{
    NDP_REQUIRE(factor >= 1, "unroll factor must be >= 1");
    if (factor == 1)
        return nest;

    const int inner =
        static_cast<int>(nest.loops().size()) - 1;
    const Loop &inner_loop = nest.loops()[static_cast<std::size_t>(inner)];
    NDP_REQUIRE(inner_loop.tripCount() % factor == 0,
                "innermost trip count " << inner_loop.tripCount()
                                        << " not divisible by unroll "
                                        << factor);

    std::vector<Loop> loops = nest.loops();
    loops[static_cast<std::size_t>(inner)].step =
        inner_loop.step * factor;

    std::vector<Statement> body;
    body.reserve(nest.body().size() * static_cast<std::size_t>(factor));
    for (std::int64_t k = 0; k < factor; ++k) {
        const std::int64_t offset = k * inner_loop.step;
        for (const Statement &stmt : nest.body()) {
            ExprPtr rhs = shiftExpr(stmt.rhs(), inner, offset);
            ExprPtr guard =
                stmt.hasGuard()
                    ? shiftExpr(stmt.guard(), inner, offset)
                    : nullptr;
            body.emplace_back(stmt.label() + "." + std::to_string(k),
                              shiftRef(stmt.lhs(), inner, offset),
                              std::move(rhs), std::move(guard));
        }
    }

    LoopNest out(nest.name() + "/unroll" + std::to_string(factor),
                 std::move(loops), std::move(body));
    out.timingTrips = nest.timingTrips;
    out.inspectorTrips = nest.inspectorTrips;
    return out;
}

} // namespace ndp::ir
