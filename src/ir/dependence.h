#ifndef NDP_IR_DEPENDENCE_H
#define NDP_IR_DEPENDENCE_H

/**
 * @file
 * Data-dependence analysis over a window of statement instances
 * (Section 4.5). Affine references compare exactly (Maydan-style exact
 * analysis degenerates to address comparison once iterations are
 * concrete). Indirect references are *may*-dependences until the
 * inspector has recorded the realised index values, after which they
 * compare exactly too.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "ir/instance.h"

namespace ndp::ir {

enum class DepKind : std::uint8_t
{
    Flow,   ///< write then read (true dependence)
    Anti,   ///< read then write
    Output, ///< write then write
};

const char *toString(DepKind kind);

/** A dependence from instance @ref from to the later instance @ref to. */
struct Dependence
{
    std::size_t from = 0;
    std::size_t to = 0;
    DepKind kind = DepKind::Flow;
    /**
     * True when the dependence could not be proven or disproven
     * (indirect subscripts without inspector data): the pair *may*
     * conflict and the scheduler must serialise it.
     */
    bool may = false;
};

/**
 * All pairwise dependences among @p instances (which must be listed in
 * execution order).
 *
 * @param inspector_resolved when true, indirect subscripts are resolved
 *        through the ArrayTable's index data (the inspector has run);
 *        when false they produce conservative may-dependences against
 *        any access to the same array.
 */
std::vector<Dependence> analyzeDependences(
    std::span<const StatementInstance> instances, const ArrayTable &arrays,
    bool inspector_resolved);

/**
 * Fraction of a nest's static references (reads + writes) whose
 * location is compile-time analyzable — the quantity of Table 1.
 */
double analyzableFraction(const LoopNest &nest);

} // namespace ndp::ir

#endif // NDP_IR_DEPENDENCE_H
