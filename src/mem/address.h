#ifndef NDP_MEM_ADDRESS_H
#define NDP_MEM_ADDRESS_H

/**
 * @file
 * Address-space primitives. The paper's OS support preserves the L2
 * bank bits and memory channel bits across VA->PA translation so the
 * compiler can derive on-chip data locations from virtual addresses
 * (Section 4.1); we model that guarantee with an identity mapping, so a
 * single Addr type serves as both.
 */

#include <cstdint>

namespace ndp::mem {

using Addr = std::uint64_t;

/** Cache-line size in bytes (KNL uses 64B lines). */
inline constexpr Addr kLineSize = 64;
/** Page size in bytes (4KB, matching Figure 2b's 12 offset bits). */
inline constexpr Addr kPageSize = 4096;

inline constexpr Addr
lineAlign(Addr a)
{
    return a & ~(kLineSize - 1);
}

inline constexpr Addr
pageAlign(Addr a)
{
    return a & ~(kPageSize - 1);
}

inline constexpr Addr
lineNumber(Addr a)
{
    return a / kLineSize;
}

inline constexpr Addr
pageNumber(Addr a)
{
    return a / kPageSize;
}

/** Extract @p count bits of @p a starting at bit @p low (Figure 2). */
inline constexpr std::uint64_t
bits(Addr a, unsigned low, unsigned count)
{
    return (a >> low) & ((std::uint64_t{1} << count) - 1);
}

} // namespace ndp::mem

#endif // NDP_MEM_ADDRESS_H
