#ifndef NDP_MEM_ADDRESS_MAPPING_H
#define NDP_MEM_ADDRESS_MAPPING_H

/**
 * @file
 * Physical address mapping (Section 2, Figure 2): cache-line-granularity
 * interleaving of lines over the SNUCA L2 banks, and page-granularity
 * interleaving of pages over memory channels / ranks / banks. Plus the
 * KNL cluster modes (Section 6.1), which constrain the relative
 * positions of the home L2 bank and the servicing memory controller.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/address.h"
#include "noc/mesh_topology.h"

namespace ndp::mem {

/** KNL-style cluster-of-mesh operating modes (Section 6.1). */
enum class ClusterMode
{
    AllToAll, ///< addresses hashed over all banks; any MC may serve
    Quadrant, ///< MC is in the same quadrant as the home L2 bank
    SNC4,     ///< bank and MC both confined to the page's quadrant
};

/** KNL-style memory modes (Section 6.1). */
enum class MemoryMode
{
    Flat,   ///< MCDRAM and DDR are separate address spaces
    Cache,  ///< MCDRAM is a direct-mapped memory-side cache over DDR
    Hybrid, ///< half of MCDRAM as cache, half as flat memory
};

const char *toString(ClusterMode mode);
const char *toString(MemoryMode mode);

/** Decoded page-granularity DRAM coordinates (Figure 2b). */
struct DramCoord
{
    std::uint32_t channel = 0; ///< bits 12..13
    std::uint32_t rank = 0;    ///< bits 14..15
    std::uint32_t bank = 0;    ///< bits 16..18
};

/**
 * Maps addresses onto the mesh: which node's L2 bank is a line's SNUCA
 * home, and which corner memory controller owns its page.
 *
 * One L2 bank per mesh node; one memory channel per corner MC.
 */
class AddressMap
{
  public:
    AddressMap(const noc::MeshTopology &mesh, ClusterMode cluster_mode);

    ClusterMode clusterMode() const { return clusterMode_; }
    const noc::MeshTopology &mesh() const { return *mesh_; }

    /**
     * The node holding the home L2 bank of the line containing @p a.
     * In SNC-4 mode the bank is confined to the quadrant selected by the
     * page's quadrant bits; in the other modes lines interleave over all
     * banks. Under faults, banks of dead nodes are transparently
     * re-homed to the mesh's nearest live node (rehomeOf), so the
     * returned node is always live.
     */
    noc::NodeId homeBankNode(Addr a) const;

    /** The DRAM coordinates of @p a's page (Figure 2b bit fields). */
    DramCoord dramCoord(Addr a) const;

    /**
     * The mesh node of the memory controller that services misses to
     * @p a. AllToAll: the MC selected by the page's channel bits.
     * Quadrant: the MC in the home bank's quadrant. SNC-4: the MC in the
     * page's quadrant.
     */
    noc::NodeId memoryControllerNode(Addr a) const;

    /** Index (0..3) of the controller returned by memoryControllerNode. */
    std::uint32_t memoryControllerIndex(Addr a) const;

    /** Quadrant assigned to @p a's page under SNC-4 semantics. */
    noc::QuadrantId pageQuadrant(Addr a) const;

    /**
     * Install a profile-derived page -> MC-index override (the
     * data-to-MC mapping scheme of Section 6.5 / Figure 23). Pages not
     * present keep their default mapping. Pass an empty map to clear.
     */
    void setPageMcOverride(
        std::unordered_map<std::uint64_t, std::uint32_t> page_to_mc);

    bool hasPageMcOverride() const { return !pageMcOverride_.empty(); }

  private:
    /** Nodes of the given quadrant, row-major. */
    const std::vector<noc::NodeId> &quadrantNodes(noc::QuadrantId q) const;

    const noc::MeshTopology *mesh_;
    ClusterMode clusterMode_;
    std::vector<std::vector<noc::NodeId>> quadNodes_;
    std::unordered_map<std::uint64_t, std::uint32_t> pageMcOverride_;
};

} // namespace ndp::mem

#endif // NDP_MEM_ADDRESS_MAPPING_H
