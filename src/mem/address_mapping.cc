#include "mem/address_mapping.h"

#include "support/error.h"

namespace ndp::mem {

const char *
toString(ClusterMode mode)
{
    switch (mode) {
      case ClusterMode::AllToAll:
        return "all-to-all";
      case ClusterMode::Quadrant:
        return "quadrant";
      case ClusterMode::SNC4:
        return "snc-4";
    }
    return "?";
}

const char *
toString(MemoryMode mode)
{
    switch (mode) {
      case MemoryMode::Flat:
        return "flat";
      case MemoryMode::Cache:
        return "cache";
      case MemoryMode::Hybrid:
        return "hybrid";
    }
    return "?";
}

namespace {

/**
 * Hash the line number before bank selection, approximating KNL's
 * address hash: adjacent lines land on unrelated banks, which spreads
 * a statement's operands across the mesh instead of lining them up in
 * one row (and thereby keeps bank load uniform).
 */
std::uint64_t
mixLine(std::uint64_t line)
{
    std::uint64_t z = line * 0x9e3779b97f4a7c15ull;
    z ^= z >> 29;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 32;
    return z;
}

} // namespace

AddressMap::AddressMap(const noc::MeshTopology &mesh,
                       ClusterMode cluster_mode)
    : mesh_(&mesh), clusterMode_(cluster_mode), quadNodes_(4)
{
    for (noc::NodeId n = 0; n < mesh.nodeCount(); ++n) {
        quadNodes_[static_cast<std::size_t>(mesh.quadrantOf(n))]
            .push_back(n);
    }
    for (const auto &quad : quadNodes_)
        NDP_CHECK(!quad.empty(), "empty mesh quadrant");
}

const std::vector<noc::NodeId> &
AddressMap::quadrantNodes(noc::QuadrantId q) const
{
    NDP_CHECK(q >= 0 && q < 4, "bad quadrant " << q);
    return quadNodes_[static_cast<std::size_t>(q)];
}

noc::QuadrantId
AddressMap::pageQuadrant(Addr a) const
{
    // Two page-address bits select the quadrant, mirroring the channel
    // bit selection of Figure 2b one level up.
    return static_cast<noc::QuadrantId>(pageNumber(a) % 4);
}

noc::NodeId
AddressMap::homeBankNode(Addr a) const
{
    const std::uint64_t line = mixLine(lineNumber(a));
    noc::NodeId home;
    if (clusterMode_ == ClusterMode::SNC4) {
        const auto &quad = quadrantNodes(pageQuadrant(a));
        home = quad[static_cast<std::size_t>(line % quad.size())];
    } else {
        home = static_cast<noc::NodeId>(
            line % static_cast<std::uint64_t>(mesh_->nodeCount()));
    }
    // The interleave function is a property of the address bits and
    // stays fixed under faults; a line whose natural bank sits on a
    // dead node is served by that bank's re-home target instead. Both
    // the compiler (DataLocator) and the simulator resolve homes
    // through this one function, so they always agree on the live
    // home. Identity (and free) on a healthy mesh.
    return mesh_->rehomeOf(home);
}

DramCoord
AddressMap::dramCoord(Addr a) const
{
    DramCoord coord;
    coord.channel = static_cast<std::uint32_t>(bits(a, 12, 2));
    coord.rank = static_cast<std::uint32_t>(bits(a, 14, 2));
    coord.bank = static_cast<std::uint32_t>(bits(a, 16, 3));
    return coord;
}

void
AddressMap::setPageMcOverride(
    std::unordered_map<std::uint64_t, std::uint32_t> page_to_mc)
{
    pageMcOverride_ = std::move(page_to_mc);
}

std::uint32_t
AddressMap::memoryControllerIndex(Addr a) const
{
    if (!pageMcOverride_.empty()) {
        const auto it = pageMcOverride_.find(pageNumber(a));
        if (it != pageMcOverride_.end())
            return it->second;
    }
    switch (clusterMode_) {
      case ClusterMode::AllToAll:
        return dramCoord(a).channel;
      case ClusterMode::Quadrant:
        return static_cast<std::uint32_t>(
            mesh_->quadrantOf(homeBankNode(a)));
      case ClusterMode::SNC4:
        return static_cast<std::uint32_t>(pageQuadrant(a));
    }
    ndp::panic("unreachable cluster mode");
}

noc::NodeId
AddressMap::memoryControllerNode(Addr a) const
{
    const std::uint32_t idx = memoryControllerIndex(a);
    if (!pageMcOverride_.empty() &&
        pageMcOverride_.find(pageNumber(a)) != pageMcOverride_.end()) {
        // Overrides name corner controllers directly.
        return mesh_->memoryControllerNodes()[idx];
    }
    switch (clusterMode_) {
      case ClusterMode::AllToAll:
        return mesh_->memoryControllerNodes()[idx];
      case ClusterMode::Quadrant:
      case ClusterMode::SNC4:
        return mesh_->memoryControllerOfQuadrant(
            static_cast<noc::QuadrantId>(idx));
    }
    ndp::panic("unreachable cluster mode");
}

} // namespace ndp::mem
