#include "mem/memory_controller.h"

#include "support/error.h"

namespace ndp::mem {

MemoryController::MemoryController(noc::NodeId node, MemoryMode mode,
                                   MemoryControllerParams params)
    : node_(node), mode_(mode), params_(params)
{
    if (mode_ == MemoryMode::Cache || mode_ == MemoryMode::Hybrid) {
        std::uint64_t bytes = params_.mcdramCacheBytes;
        if (mode_ == MemoryMode::Hybrid)
            bytes /= 2; // 50%-50% split, matching Section 6.7
        sideCache_ = std::make_unique<SetAssocCache>(bytes, /*ways=*/1);
    }
}

void
MemoryController::recordAccess()
{
    ++recordedLoad_;
}

std::int64_t
MemoryController::queueDelay() const
{
    return params_.queueCyclesPerLoad *
           (recordedLoad_ / params_.queueLoadUnit);
}

std::int64_t
MemoryController::serviceLatency(Addr a, MemoryKind kind,
                                 const DramCoord &coord)
{
    ++serviced_;
    std::int64_t latency = queueDelay();

    // In cache mode everything lives behind the MCDRAM-side cache; in
    // hybrid mode only DDR-backed data does (MCDRAM-flat data bypasses).
    const bool behind_side_cache =
        sideCache_ && (mode_ == MemoryMode::Cache || kind == MemoryKind::Ddr);
    if (behind_side_cache) {
        if (sideCache_->access(a))
            return latency + params_.mcdramLatency;
        latency += params_.mcdramLatency; // probe + fill cost
        kind = MemoryKind::Ddr;
    }

    latency += (kind == MemoryKind::Mcdram) ? params_.mcdramLatency
                                            : params_.ddrLatency;

    const std::uint64_t bank_key =
        (static_cast<std::uint64_t>(coord.rank) << 3) | coord.bank;
    if (lastBankKey_ && *lastBankKey_ == bank_key)
        latency += params_.bankConflictPenalty;
    lastBankKey_ = bank_key;
    return latency;
}

const CacheStats *
MemoryController::sideCacheStats() const
{
    return sideCache_ ? &sideCache_->stats() : nullptr;
}

void
MemoryController::resetServiceState()
{
    serviced_ = 0;
    lastBankKey_.reset();
    if (sideCache_) {
        sideCache_->flush();
        sideCache_->resetStats();
    }
}

void
MemoryController::reset()
{
    resetServiceState();
    recordedLoad_ = 0;
}

} // namespace ndp::mem
