#ifndef NDP_MEM_MEMORY_CONTROLLER_H
#define NDP_MEM_MEMORY_CONTROLLER_H

/**
 * @file
 * Memory-controller queue model. L2 misses travel over the mesh to one
 * of the corner MCs (Figure 1, steps 2-4); the off-chip access time is
 * the second time-consuming period named in Section 2. We model:
 *
 *   service = base_latency(kind)                    [MCDRAM vs DDR4]
 *           + bank_conflict_penalty if the access hits the same DRAM
 *             bank as the previous one on this channel
 *           + queue_delay proportional to pass-1 load on this MC
 *
 * In cache/hybrid memory modes a direct-mapped MCDRAM-side cache is
 * probed first; only its misses pay DDR latency (Section 6.1).
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "mem/address.h"
#include "mem/address_mapping.h"
#include "mem/cache.h"
#include "noc/coord.h"

namespace ndp::mem {

/** Timing/capacity parameters for one memory controller. */
struct MemoryControllerParams
{
    std::int64_t mcdramLatency = 90;      ///< cycles, high-bandwidth path
    std::int64_t ddrLatency = 220;        ///< cycles, DDR4 path
    std::int64_t bankConflictPenalty = 24;///< same-bank back-to-back cost
    std::int64_t queueCyclesPerLoad = 2;  ///< delay per concurrent request
    std::int64_t queueLoadUnit = 512;     ///< accesses per delay unit
    std::uint64_t mcdramCacheBytes = 256ull << 10; ///< per-MC slice when
                                                 ///< MCDRAM acts as cache
};

/** Which physical memory backs an address in flat/hybrid mode. */
enum class MemoryKind
{
    Mcdram,
    Ddr,
};

/**
 * One corner memory controller: queue-pressure accounting (pass 1) and
 * latency responses (pass 2).
 */
class MemoryController
{
  public:
    MemoryController(noc::NodeId node, MemoryMode mode,
                     MemoryControllerParams params);

    noc::NodeId node() const { return node_; }
    MemoryMode mode() const { return mode_; }

    /** Pass 1: record an access so queue pressure is known in pass 2. */
    void recordAccess();

    /**
     * Pass 2: cycles to service a miss to @p a whose backing memory (in
     * flat/hybrid mode) is @p kind. @p coord carries the decoded DRAM
     * bank for the conflict model.
     */
    std::int64_t serviceLatency(Addr a, MemoryKind kind,
                                const DramCoord &coord);

    /** Total recorded accesses (pass-1 load). */
    std::int64_t recordedLoad() const { return recordedLoad_; }

    /** Accesses serviced in pass 2. */
    std::int64_t servicedCount() const { return serviced_; }

    /** MCDRAM-side cache statistics (cache/hybrid mode only). */
    const CacheStats *sideCacheStats() const;

    /** Reset pass-2 state, keeping pass-1 load. */
    void resetServiceState();

    /** Full reset. */
    void reset();

  private:
    std::int64_t queueDelay() const;

    noc::NodeId node_;
    MemoryMode mode_;
    MemoryControllerParams params_;
    std::unique_ptr<SetAssocCache> sideCache_; // MCDRAM-as-cache
    std::int64_t recordedLoad_ = 0;
    std::int64_t serviced_ = 0;
    std::optional<std::uint64_t> lastBankKey_;
};

} // namespace ndp::mem

#endif // NDP_MEM_MEMORY_CONTROLLER_H
