#ifndef NDP_MEM_MISS_PREDICTOR_H
#define NDP_MEM_MISS_PREDICTOR_H

/**
 * @file
 * L2 hit/miss predictor (Section 4.1). The compiler must decide whether
 * a datum's location is its home L2 bank (likely hit) or the memory
 * controller owning its page (likely miss). Following the spirit of
 * Chandra et al. [11], we use a table of saturating counters indexed by
 * a hash of the line address, trained on observed L2 outcomes. Table 2
 * of the paper reports per-application accuracies of 63-92%; the
 * predictor exposes its measured accuracy so the reproduction of that
 * table is an actual measurement, not a constant.
 */

#include <cstdint>
#include <vector>

#include "mem/address.h"

namespace ndp::mem {

/**
 * Tagless table of 2-bit saturating counters over hashed line
 * addresses. predict() then update() per access; accuracy statistics
 * compare the prediction with the actual outcome.
 */
class MissPredictor
{
  public:
    /** @param table_entries power-of-two number of counters */
    explicit MissPredictor(std::size_t table_entries = 4096);

    /** Predicted outcome for the line containing @p a: true = L2 hit. */
    bool predictHit(Addr a) const;

    /**
     * Train with the actual outcome and record whether the (current)
     * prediction was correct.
     */
    void update(Addr a, bool actual_hit);

    /** Fraction of updates whose preceding prediction was correct. */
    double accuracy() const;

    /** Clear the accuracy counters but keep the trained table (used
     *  after warm-up so accuracy covers the measured steady state). */
    void resetStats();

    std::int64_t predictions() const { return total_; }
    std::int64_t correctPredictions() const { return correct_; }

    void reset();

  private:
    std::size_t indexOf(Addr a) const;

    std::vector<std::uint8_t> counters_; // 0..3; >= 2 predicts hit
    std::size_t mask_;
    std::int64_t total_ = 0;
    std::int64_t correct_ = 0;
};

} // namespace ndp::mem

#endif // NDP_MEM_MISS_PREDICTOR_H
