#include "mem/miss_predictor.h"

#include "support/error.h"

namespace ndp::mem {

namespace {

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

std::uint64_t
hashLine(std::uint64_t line)
{
    line ^= line >> 17;
    line *= 0xed5ad4bbull;
    line ^= line >> 11;
    line *= 0xac4c1b51ull;
    line ^= line >> 15;
    return line;
}

} // namespace

MissPredictor::MissPredictor(std::size_t table_entries)
    // Initialise to weak-miss: an untrained entry is most often a
    // first-touch (compulsory miss) in loop-dominated codes.
    : counters_(table_entries, 1), mask_(table_entries - 1)
{
    NDP_REQUIRE(isPowerOfTwo(table_entries),
                "predictor table size must be a power of two, got "
                    << table_entries);
}

std::size_t
MissPredictor::indexOf(Addr a) const
{
    return static_cast<std::size_t>(hashLine(lineNumber(a))) & mask_;
}

bool
MissPredictor::predictHit(Addr a) const
{
    return counters_[indexOf(a)] >= 2;
}

void
MissPredictor::update(Addr a, bool actual_hit)
{
    const std::size_t idx = indexOf(a);
    const bool predicted_hit = counters_[idx] >= 2;
    ++total_;
    if (predicted_hit == actual_hit)
        ++correct_;
    if (actual_hit) {
        if (counters_[idx] < 3)
            ++counters_[idx];
    } else {
        if (counters_[idx] > 0)
            --counters_[idx];
    }
}

double
MissPredictor::accuracy() const
{
    return total_ == 0 ? 0.0
                       : static_cast<double>(correct_) /
                             static_cast<double>(total_);
}

void
MissPredictor::resetStats()
{
    total_ = 0;
    correct_ = 0;
}

void
MissPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(),
              static_cast<std::uint8_t>(1));
    total_ = 0;
    correct_ = 0;
}

} // namespace ndp::mem
