#ifndef NDP_MEM_CACHE_H
#define NDP_MEM_CACHE_H

/**
 * @file
 * Set-associative LRU cache model. Instantiated as the per-node private
 * L1 caches and the per-node shared L2 banks of the SNUCA hierarchy, and
 * (direct-mapped) as the MCDRAM memory-side cache in cache/hybrid
 * memory modes.
 *
 * The model tracks presence only (no data), which is all the simulator
 * needs: a lookup either hits or misses-and-allocates, and statistics
 * count both.
 */

#include <cstdint>
#include <vector>

#include "mem/address.h"

namespace ndp::mem {

/** Hit/miss counters for one cache. */
struct CacheStats
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;

    std::int64_t accesses() const { return hits + misses; }
    double
    hitRate() const
    {
        const std::int64_t total = accesses();
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
    void
    reset()
    {
        hits = 0;
        misses = 0;
    }
};

/**
 * Presence-tracking set-associative cache with true-LRU replacement.
 *
 * Capacity and associativity are fixed at construction; direct-mapped
 * behaviour falls out of ways == 1.
 */
class SetAssocCache
{
  public:
    /**
     * @param capacity_bytes total capacity; must be a positive multiple
     *        of ways * kLineSize
     * @param ways associativity (1 = direct-mapped)
     */
    SetAssocCache(std::uint64_t capacity_bytes, std::uint32_t ways);

    std::uint64_t capacityBytes() const;
    std::uint32_t ways() const { return ways_; }
    std::uint64_t setCount() const { return sets_; }

    /**
     * Access the line containing @p a; on a miss the line is allocated
     * (evicting the LRU way).
     * @return true on hit.
     */
    bool access(Addr a);

    /** Non-allocating presence probe (used by locality models). */
    bool contains(Addr a) const;

    /** Invalidate the line containing @p a if present. */
    void invalidate(Addr a);

    /** Drop all contents (statistics are kept). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(std::uint64_t line) const { return line % sets_; }

    std::uint32_t ways_;
    std::uint64_t sets_;
    std::uint64_t tick_ = 0;
    std::vector<Way> entries_; // sets_ * ways_, set-major
    CacheStats stats_;
};

} // namespace ndp::mem

#endif // NDP_MEM_CACHE_H
