#include "mem/cache.h"

#include "support/error.h"

namespace ndp::mem {

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes,
                             std::uint32_t ways)
    : ways_(ways)
{
    NDP_REQUIRE(ways >= 1, "cache needs at least one way");
    NDP_REQUIRE(capacity_bytes > 0 &&
                    capacity_bytes % (static_cast<std::uint64_t>(ways) *
                                      kLineSize) == 0,
                "cache capacity " << capacity_bytes
                                  << " not a multiple of ways*linesize");
    sets_ = capacity_bytes / (static_cast<std::uint64_t>(ways) * kLineSize);
    entries_.resize(sets_ * ways_);
}

std::uint64_t
SetAssocCache::capacityBytes() const
{
    return sets_ * ways_ * kLineSize;
}

bool
SetAssocCache::access(Addr a)
{
    const std::uint64_t line = lineNumber(a);
    const std::uint64_t set = setIndex(line);
    Way *base = &entries_[set * ways_];
    ++tick_;

    Way *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = tick_;
            ++stats_.hits;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = tick_;
    ++stats_.misses;
    return false;
}

bool
SetAssocCache::contains(Addr a) const
{
    const std::uint64_t line = lineNumber(a);
    const Way *base = &entries_[setIndex(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

void
SetAssocCache::invalidate(Addr a)
{
    const std::uint64_t line = lineNumber(a);
    Way *base = &entries_[setIndex(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line)
            base[w].valid = false;
    }
}

void
SetAssocCache::flush()
{
    for (Way &way : entries_)
        way.valid = false;
}

} // namespace ndp::mem
