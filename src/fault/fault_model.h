#ifndef NDP_FAULT_FAULT_MODEL_H
#define NDP_FAULT_FAULT_MODEL_H

/**
 * @file
 * Deterministic fault injection for the SNUCA mesh. Real manycores
 * ship with disabled cores, failed links, and remapped banks; a
 * FaultModel describes one such degraded chip:
 *
 *  - dead nodes: core, L1, and L2 bank all unusable. The router of a
 *    dead tile is assumed dead too, so no route may pass through it.
 *  - degraded nodes: fully functional but computing slower by a
 *    configurable factor (binning / DVFS-capped tiles).
 *  - failed links: individual *unidirectional* physical links removed
 *    from the topology (the reverse direction may survive).
 *
 * A model is either built explicitly (killNode/failLink/degradeNode)
 * or injected pseudo-randomly from a FaultSpec via support/rng.h; the
 * injection enumerates nodes and links in a fixed canonical order, so
 * a (geometry, spec) pair always yields the same fault set on every
 * platform and thread count.
 *
 * The four corner tiles host the memory controllers and are treated
 * as hardened (off-mesh hard IP): random injection never selects
 * them, and noc::MeshTopology rejects explicit fault sets that kill
 * one with ndp::fatal.
 *
 * signature() digests the whole fault set; the empty model's
 * signature is 0. Consumers (e.g. partition::SplitPlanCache) use it
 * as a fault *epoch*: state keyed under one signature can never leak
 * into a run under another, so a cached plan cannot resurrect a dead
 * node.
 */

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "noc/coord.h"

namespace ndp::fault {

/** Parameters of one pseudo-random injection. */
struct FaultSpec
{
    /** Probability that a (non-corner) node is faulted. */
    double nodeFaultRate = 0.0;
    /** Probability that a unidirectional link fails. */
    double linkFaultRate = 0.0;
    /**
     * Fraction of faulted nodes that are merely degraded (slow)
     * instead of dead.
     */
    double degradedFraction = 0.0;
    /** Seed of the injection draws (support/rng.h). */
    std::uint64_t seed = 0;
};

/** One degraded chip: dead/degraded nodes and failed links. */
class FaultModel
{
  public:
    /** The healthy chip: no faults, signature 0. */
    FaultModel() = default;

    /**
     * Draw a fault set for a cols x rows mesh (torus adds the wrap
     * links to the link enumeration). Deterministic: nodes are visited
     * in id order, links in (node, +x/-x/+y/-y) order, and every
     * stochastic choice flows through one seeded Rng. Corner nodes
     * (the memory controllers) are never selected. The result is not
     * guaranteed to leave the mesh connected — callers validate via
     * noc::MeshTopology and re-draw with a fresh seed if not.
     */
    static FaultModel inject(std::int32_t cols, std::int32_t rows,
                             bool torus, const FaultSpec &spec);

    void killNode(noc::NodeId node);
    void degradeNode(noc::NodeId node);
    /** Fail the unidirectional link @p from -> @p to. */
    void failLink(noc::NodeId from, noc::NodeId to);

    bool empty() const
    {
        return dead_.empty() && degraded_.empty() && links_.empty();
    }

    bool isDead(noc::NodeId node) const
    {
        return deadSet_.count(node) != 0;
    }

    bool isDegraded(noc::NodeId node) const
    {
        return degradedSet_.count(node) != 0;
    }

    bool isLinkFailed(noc::NodeId from, noc::NodeId to) const
    {
        return linkSet_.count(linkKey(from, to)) != 0;
    }

    /** Dead node ids, ascending. */
    const std::vector<noc::NodeId> &deadNodes() const { return dead_; }
    /** Degraded node ids, ascending. */
    const std::vector<noc::NodeId> &degradedNodes() const
    {
        return degraded_;
    }
    /** Failed (from, to) pairs, in insertion (canonical) order. */
    const std::vector<std::pair<noc::NodeId, noc::NodeId>> &
    failedLinks() const
    {
        return links_;
    }

    /** Compute-slowdown multiplier applied to degraded nodes. */
    double degradeFactor() const { return degradeFactor_; }
    void setDegradeFactor(double factor);

    /**
     * Order-independent FNV-1a digest of the fault set (the fault
     * *epoch*). 0 for the empty model; two models with the same dead
     * set, degraded set, failed links, and degrade factor share a
     * signature.
     */
    std::uint64_t signature() const;

    /** "3 dead, 1 degraded, 4 links failed" — for reports and errors. */
    std::string describe() const;

  private:
    static std::uint64_t
    linkKey(noc::NodeId from, noc::NodeId to)
    {
        return (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(from))
                << 32) |
               static_cast<std::uint32_t>(to);
    }

    std::vector<noc::NodeId> dead_;
    std::vector<noc::NodeId> degraded_;
    std::vector<std::pair<noc::NodeId, noc::NodeId>> links_;
    std::unordered_set<noc::NodeId> deadSet_;
    std::unordered_set<noc::NodeId> degradedSet_;
    std::unordered_set<std::uint64_t> linkSet_;
    double degradeFactor_ = 2.0;
};

} // namespace ndp::fault

#endif // NDP_FAULT_FAULT_MODEL_H
