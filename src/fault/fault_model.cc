#include "fault/fault_model.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"

namespace ndp::fault {

namespace {

/** The four corner tiles (memory controllers) are hardened. */
bool
isCorner(std::int32_t x, std::int32_t y, std::int32_t cols,
         std::int32_t rows)
{
    return (x == 0 || x == cols - 1) && (y == 0 || y == rows - 1);
}

void
insertSorted(std::vector<noc::NodeId> &vec, noc::NodeId node)
{
    auto it = std::lower_bound(vec.begin(), vec.end(), node);
    if (it == vec.end() || *it != node)
        vec.insert(it, node);
}

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t word)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    for (int i = 0; i < 8; ++i) {
        h ^= (word >> (i * 8)) & 0xff;
        h *= kPrime;
    }
    return h;
}

} // namespace

FaultModel
FaultModel::inject(std::int32_t cols, std::int32_t rows, bool torus,
                   const FaultSpec &spec)
{
    NDP_REQUIRE(cols >= 2 && rows >= 2,
                "fault injection needs a mesh of at least 2x2, got "
                    << cols << "x" << rows);
    NDP_REQUIRE(spec.nodeFaultRate >= 0.0 && spec.nodeFaultRate <= 1.0,
                "nodeFaultRate must be in [0,1], got "
                    << spec.nodeFaultRate);
    NDP_REQUIRE(spec.linkFaultRate >= 0.0 && spec.linkFaultRate <= 1.0,
                "linkFaultRate must be in [0,1], got "
                    << spec.linkFaultRate);
    NDP_REQUIRE(spec.degradedFraction >= 0.0 &&
                    spec.degradedFraction <= 1.0,
                "degradedFraction must be in [0,1], got "
                    << spec.degradedFraction);

    FaultModel model;
    Rng rng(spec.seed);

    // Nodes in id (row-major) order; a faulted node is then either
    // degraded or dead by a second draw. Both draws happen for every
    // candidate so the stream alignment is independent of outcomes.
    for (std::int32_t y = 0; y < rows; ++y) {
        for (std::int32_t x = 0; x < cols; ++x) {
            const bool faulted = rng.nextBool(spec.nodeFaultRate);
            const bool slow = rng.nextBool(spec.degradedFraction);
            if (!faulted || isCorner(x, y, cols, rows))
                continue;
            const noc::NodeId node = y * cols + x;
            if (slow)
                model.degradeNode(node);
            else
                model.killNode(node);
        }
    }

    // Unidirectional links in (node, +x, +y) order, each direction
    // drawn separately; torus wrap links are part of the enumeration
    // only when they exist. Links touching a dead node are implicitly
    // unusable already, but drawing them anyway keeps the stream
    // canonical.
    const auto drawLink = [&](noc::NodeId from, noc::NodeId to) {
        const bool fwd = rng.nextBool(spec.linkFaultRate);
        const bool rev = rng.nextBool(spec.linkFaultRate);
        if (fwd)
            model.failLink(from, to);
        if (rev)
            model.failLink(to, from);
    };
    for (std::int32_t y = 0; y < rows; ++y) {
        for (std::int32_t x = 0; x < cols; ++x) {
            const noc::NodeId node = y * cols + x;
            if (x + 1 < cols)
                drawLink(node, node + 1);
            else if (torus && cols > 2)
                drawLink(node, y * cols);
            if (y + 1 < rows)
                drawLink(node, node + cols);
            else if (torus && rows > 2)
                drawLink(node, x);
        }
    }
    return model;
}

void
FaultModel::killNode(noc::NodeId node)
{
    NDP_REQUIRE(node >= 0, "killNode: invalid node " << node);
    NDP_REQUIRE(!isDegraded(node),
                "node " << node << " already marked degraded");
    if (deadSet_.insert(node).second)
        insertSorted(dead_, node);
}

void
FaultModel::degradeNode(noc::NodeId node)
{
    NDP_REQUIRE(node >= 0, "degradeNode: invalid node " << node);
    NDP_REQUIRE(!isDead(node), "node " << node << " already marked dead");
    if (degradedSet_.insert(node).second)
        insertSorted(degraded_, node);
}

void
FaultModel::failLink(noc::NodeId from, noc::NodeId to)
{
    NDP_REQUIRE(from >= 0 && to >= 0 && from != to,
                "failLink: invalid link " << from << " -> " << to);
    if (linkSet_.insert(linkKey(from, to)).second)
        links_.emplace_back(from, to);
}

void
FaultModel::setDegradeFactor(double factor)
{
    NDP_REQUIRE(factor >= 1.0,
                "degrade factor must be >= 1, got " << factor);
    degradeFactor_ = factor;
}

std::uint64_t
FaultModel::signature() const
{
    if (empty())
        return 0;
    // FNV-1a over a canonical serialization: tagged sections, sorted
    // node lists, sorted link keys. Order-independent because every
    // accessor is already canonicalized.
    constexpr std::uint64_t kBasis = 0xcbf29ce484222325ull;
    std::uint64_t h = kBasis;
    h = fnvMix(h, 0x6e6f646573ull); // "nodes"
    for (noc::NodeId node : dead_)
        h = fnvMix(h, static_cast<std::uint64_t>(node));
    h = fnvMix(h, 0x64656772ull); // "degr"
    for (noc::NodeId node : degraded_)
        h = fnvMix(h, static_cast<std::uint64_t>(node));
    h = fnvMix(h, 0x6c696e6b73ull); // "links"
    std::vector<std::uint64_t> keys;
    keys.reserve(links_.size());
    for (const auto &[from, to] : links_)
        keys.push_back(linkKey(from, to));
    std::sort(keys.begin(), keys.end());
    for (std::uint64_t key : keys)
        h = fnvMix(h, key);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(degradeFactor_));
    __builtin_memcpy(&bits, &degradeFactor_, sizeof(bits));
    h = fnvMix(h, bits);
    // 0 is reserved for the healthy chip.
    return h == 0 ? 1 : h;
}

std::string
FaultModel::describe() const
{
    return std::to_string(dead_.size()) + " dead, " +
           std::to_string(degraded_.size()) + " degraded, " +
           std::to_string(links_.size()) + " links failed";
}

} // namespace ndp::fault
