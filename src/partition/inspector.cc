#include "partition/inspector.h"

#include <unordered_map>
#include <unordered_set>

#include "ir/instance.h"
#include "support/error.h"

namespace ndp::partition {

namespace {

/** Collect the index arrays used by any subscript of @p nest. */
std::unordered_set<ir::ArrayId>
indexArraysOf(const ir::LoopNest &nest)
{
    std::unordered_set<ir::ArrayId> arrays;
    auto scan = [&](const ir::ArrayRef &ref) {
        for (const ir::Subscript &sub : ref.subscripts) {
            if (sub.isIndirect())
                arrays.insert(sub.indirect);
        }
    };
    for (const ir::Statement &stmt : nest.body()) {
        scan(stmt.lhs());
        for (const ir::ArrayRef *ref : stmt.reads())
            scan(*ref);
    }
    return arrays;
}

} // namespace

bool
Inspector::canResolve(const ir::LoopNest &nest,
                      const ir::ArrayTable &arrays)
{
    if (nest.inspectorTrips <= 0)
        return false;
    for (const ir::ArrayId id : indexArraysOf(nest)) {
        if (!arrays.hasIndexData(id))
            return false;
    }
    return true;
}

InspectionResult
Inspector::inspect(const ir::LoopNest &nest,
                   const ir::ArrayTable &arrays) const
{
    InspectionResult result;
    if (!canResolve(nest, arrays))
        return result;

    // One trip over the iteration space resolves every indirect
    // access; realised indices are trip-invariant in this model.
    std::unordered_map<mem::Addr, std::int64_t> fan_in;
    std::unordered_set<mem::Addr> written;
    ir::StatementInstance inst;

    const std::int64_t iterations = nest.iterationCount();
    for (std::int64_t k = 0; k < iterations; ++k) {
        inst.iter = nest.iterationAt(k);
        inst.iterationNumber = k;
        for (const ir::Statement &stmt : nest.body()) {
            inst.stmt = &stmt;
            const ir::ResolvedRef write = resolveWrite(inst, arrays);
            written.insert(write.addr);
            if (!stmt.lhs().isAnalyzable()) {
                ++result.indirectAccesses;
                ++fan_in[write.addr];
            }
            const auto reads = resolveReads(inst, arrays);
            for (std::size_t r = 0; r < reads.size(); ++r) {
                if (!reads[r].analyzable) {
                    ++result.indirectAccesses;
                    ++fan_in[reads[r].addr];
                }
            }
        }
    }

    result.resolved = true;
    result.distinctTargets =
        static_cast<std::int64_t>(fan_in.size());
    for (const auto &[addr, count] : fan_in) {
        result.maxTargetFanIn =
            std::max(result.maxTargetFanIn, count);
        if (written.count(addr) != 0)
            result.writeConflicts = true;
    }
    return result;
}

} // namespace ndp::partition
