#ifndef NDP_PARTITION_DATA_LOCATOR_H
#define NDP_PARTITION_DATA_LOCATOR_H

/**
 * @file
 * Data location detection (Section 4.1, Algorithm 1's GetNode). The
 * location of a datum is, in priority order:
 *
 *  1. a node whose L1 already holds it because an earlier
 *     subcomputation in the window fetched it (the variable2node map);
 *  2. its SNUCA home L2 bank, when the L2 hit/miss predictor predicts
 *     a hit;
 *  3. otherwise the memory controller that owns its page.
 *
 * An oracle mode (used by the "ideal data analysis" experiment of
 * Section 6.4) replaces the predictor with perfect knowledge obtained
 * by probing the actual cache state.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/address.h"
#include "noc/coord.h"
#include "sim/manycore.h"

namespace ndp::partition {

/** Where a located datum lives. */
enum class LocationSource : std::uint8_t
{
    L1Copy, ///< present in some node's L1 due to a scheduled subcomp.
    L2Home, ///< predicted resident in its home L2 bank
    MemCtrl,///< predicted L2 miss: located at its memory controller
};

struct Location
{
    noc::NodeId node = noc::kInvalidNode;
    LocationSource source = LocationSource::L2Home;
};

/**
 * The compiler-maintained variable2node map (Algorithm 1 line 34):
 * which nodes will hold each line in their L1s because of
 * already-scheduled subcomputations in the current window.
 */
class VariableToNodeMap
{
  public:
    /**
     * @param per_node_capacity how many distinct lines one node's L1 is
     *        trusted to retain within a window; 0 = unlimited. A finite
     *        capacity models the L1 pollution that makes very large
     *        windows counter-productive (Section 4.4): once a node's
     *        budget overflows, its oldest recorded copy is dropped.
     */
    explicit VariableToNodeMap(std::size_t per_node_capacity = 0);

    /** Record that @p node's L1 will hold the line of @p addr. */
    void add(mem::Addr addr, noc::NodeId node);

    /** Nodes holding the line of @p addr (empty if none). */
    const std::vector<noc::NodeId> &nodesFor(mem::Addr addr) const;

    void clear();
    std::size_t size() const { return map_.size(); }

    /**
     * FNV-1a digest of the (line, node) insertion sequence — evictions
     * included, so two maps with the same digest were built by the
     * same add() history. The nest-parallel equivalence tests compare
     * digests to pin that per-nest fan-out replays exactly the serial
     * window state.
     */
    std::uint64_t insertionHash() const { return hash_; }
    /** Number of accepted (non-duplicate) add() calls. */
    std::int64_t insertionCount() const { return inserts_; }

  private:
    void dropOldest(noc::NodeId node);
    void mixHash(std::uint64_t value);

    /**
     * FIFO with an advancing head instead of erase-from-front: popping
     * the oldest line is O(1), and the dead prefix is compacted away
     * only once it exceeds the live half.
     */
    struct LineFifo
    {
        std::vector<std::uint64_t> items;
        std::size_t head = 0;

        std::size_t size() const { return items.size() - head; }
    };

    std::size_t capacity_;
    std::uint64_t hash_ = 0xcbf29ce484222325ull; // FNV offset basis
    std::int64_t inserts_ = 0;
    std::unordered_map<std::uint64_t, std::vector<noc::NodeId>> map_;
    /** Per-node FIFO of the lines recorded for it (oldest first). */
    std::unordered_map<noc::NodeId, LineFifo> fifo_;
    static const std::vector<noc::NodeId> kEmpty;
};

/** GetNode: resolve a datum's on-chip location. */
class DataLocator
{
  public:
    /**
     * @param system supplies the address map, the miss predictor, and
     *        (oracle mode only) the true cache state
     * @param oracle use perfect location knowledge instead of the
     *        predictor (Section 6.4's ideal data analysis)
     */
    DataLocator(sim::ManycoreSystem &system, bool oracle = false);

    /**
     * Locate the line of @p addr. @p map carries the L1 copies planned
     * so far in this window; @p prefer_near biases the choice among
     * multiple L1 copies toward the given node (typically the store
     * node of the statement being split).
     */
    Location locate(mem::Addr addr, const VariableToNodeMap &map,
                    noc::NodeId prefer_near) const;

    /** Location ignoring L1 copies (used for default-placement costs). */
    Location locateHome(mem::Addr addr) const;

  private:
    sim::ManycoreSystem *system_;
    bool oracle_;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_DATA_LOCATOR_H
