#include "partition/splitter.h"

#include <algorithm>

#include "support/disjoint_set.h"
#include "support/error.h"

namespace ndp::partition {

StatementSplitter::StatementSplitter(const noc::MeshTopology &mesh,
                                     std::int64_t fetch_weight,
                                     std::int64_t result_weight)
    : mesh_(&mesh), fetchWeight_(fetch_weight),
      resultWeight_(result_weight)
{
    NDP_REQUIRE(fetch_weight > 0 && result_weight > 0,
                "movement weights must be positive");
}

SplitResult
StatementSplitter::split(const ir::VarSet &sets,
                         const std::vector<Location> &leaf_locations,
                         noc::NodeId store_node, LoadBalancer *balancer)
{
    NDP_CHECK(store_node >= 0 && store_node < mesh_->nodeCount(),
              "bad store node " << store_node);
    SplitResult result;
    // One merge point per located input in the worst case; reserving
    // up front keeps the emit loop reallocation-free.
    result.subs.reserve(leaf_locations.size() + 4);
    splitSet(sets, leaf_locations, store_node, /*outermost=*/true,
             balancer, result);
    NDP_CHECK(result.root >= 0, "split produced no root subcomputation");

    std::int32_t starters = 0;
    for (const Subcomputation &sub : result.subs) {
        if (sub.children.empty())
            ++starters;
        for (int child : sub.children) {
            if (result.subs[static_cast<std::size_t>(child)].node !=
                sub.node) {
                ++result.crossNodeEdges;
            }
        }
    }
    result.degreeOfParallelism = std::max(starters, 1);
    return result;
}

StatementSplitter::Item
StatementSplitter::splitSet(const ir::VarSet &set,
                            const std::vector<Location> &leaf_locations,
                            noc::NodeId store_node, bool outermost,
                            LoadBalancer *balancer, SplitResult &result)
{
    // ---- 1. Materialise the set's elements as located items. ----
    std::vector<Item> items;
    items.reserve(set.elems.size());
    for (const ir::VarSet::Elem &elem : set.elems) {
        Item item;
        item.op = elem.op;
        if (elem.isLeaf()) {
            NDP_CHECK(static_cast<std::size_t>(elem.leaf) <
                          leaf_locations.size(),
                      "leaf index out of range");
            item.leaf = elem.leaf;
            item.node =
                leaf_locations[static_cast<std::size_t>(elem.leaf)].node;
        } else {
            item = splitSet(*elem.sub, leaf_locations, store_node,
                            /*outermost=*/false, balancer, result);
            item.op = elem.op;
            if (item.node == noc::kInvalidNode)
                continue; // all-constant subset: nothing to place
        }
        items.push_back(item);
    }

    // ---- 2. Group items by node into graph vertices. ----
    struct Vertex
    {
        noc::NodeId node = noc::kInvalidNode;
        std::vector<Item> items;
    };
    // The node -> vertex mapping is a flat array leased from a
    // per-recursion-depth pool (mesh node count is known), so grouping
    // is one indexed load instead of a std::map walk. The lease resets
    // only the slots this level touched — one per vertex.
    if (nodeSlotDepth_ == nodeSlotPool_.size())
        nodeSlotPool_.emplace_back(
            static_cast<std::size_t>(mesh_->nodeCount()), -1);
    std::vector<std::int32_t> &slot_of_node =
        nodeSlotPool_[nodeSlotDepth_++];
    std::vector<Vertex> vertices;
    struct SlotLease
    {
        std::vector<std::int32_t> &slots;
        std::vector<Vertex> &vertices;
        std::size_t &depth;
        ~SlotLease()
        {
            for (const Vertex &v : vertices)
                slots[static_cast<std::size_t>(v.node)] = -1;
            --depth;
        }
    } slot_lease{slot_of_node, vertices, nodeSlotDepth_};
    auto vertex_for = [&](noc::NodeId node) -> std::size_t {
        std::int32_t &slot =
            slot_of_node[static_cast<std::size_t>(node)];
        if (slot < 0) {
            slot = static_cast<std::int32_t>(vertices.size());
            vertices.push_back({node, {}});
        }
        return static_cast<std::size_t>(slot);
    };
    for (Item &item : items)
        vertices[vertex_for(item.node)].items.push_back(item);
    if (outermost)
        vertex_for(store_node); // the store node always joins the MST

    if (vertices.empty()) {
        // Pure-constant (sub)expression: no located data at all.
        if (!outermost)
            return Item{};
        vertex_for(store_node);
    }

    // Helper: emit one subcomputation merging @p inputs at @p at_node.
    auto emit_sub = [&](noc::NodeId at_node,
                        const std::vector<Item> &inputs,
                        bool is_root) -> int {
        Subcomputation sub;
        sub.node = at_node;
        sub.isRoot = is_root;
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const Item &in = inputs[i];
            if (in.leaf >= 0) {
                sub.leaves.push_back(in.leaf);
            } else if (in.sub >= 0) {
                sub.children.push_back(in.sub);
            }
            if (i > 0) {
                sub.ops.push_back(in.op);
                sub.opCost += ir::opCost(in.op);
            }
        }
        // Load balancing: if the merge node is over-loaded, slide the
        // work to the least-loaded input node that accepts it; the
        // result then pays one extra trip back (Section 4.5).
        noc::NodeId chosen = at_node;
        if (balancer && sub.opCost > 0 && !is_root &&
            !balancer->accepts(at_node, sub.opCost)) {
            noc::NodeId best = noc::kInvalidNode;
            std::int64_t best_load = 0;
            for (const Item &in : inputs) {
                if (in.node == at_node || in.node == noc::kInvalidNode)
                    continue;
                if (!balancer->accepts(in.node, sub.opCost))
                    continue;
                const std::int64_t l = balancer->load(in.node);
                if (best == noc::kInvalidNode || l < best_load ||
                    (l == best_load && in.node < best)) {
                    best = in.node;
                    best_load = l;
                }
            }
            if (best != noc::kInvalidNode) {
                chosen = best;
                result.plannedMovement +=
                    resultWeight_ * mesh_->distance(best, at_node);
            }
        }
        sub.node = chosen;
        if (balancer && sub.opCost > 0)
            balancer->add(chosen, sub.opCost);
        result.subs.push_back(std::move(sub));
        const int idx = static_cast<int>(result.subs.size()) - 1;
        if (is_root) {
            result.root = idx;
            result.subs[static_cast<std::size_t>(idx)].isRoot = true;
        }
        return idx;
    };

    // ---- 3. Single-vertex fast path (everything already colocated).
    if (vertices.size() == 1) {
        Vertex &v = vertices.front();
        if (outermost) {
            emit_sub(store_node, v.items, /*is_root=*/true);
            return Item{};
        }
        if (v.items.size() == 1)
            return v.items.front();
        const int idx = emit_sub(v.node, v.items, false);
        Item out;
        out.node = v.node;
        out.sub = idx;
        return out;
    }

    // ---- 4. Kruskal's algorithm over the complete vertex graph. ----
    struct Edge
    {
        std::int32_t weight;
        std::size_t a;
        std::size_t b;
    };
    std::vector<Edge> edges;
    edges.reserve(vertices.size() * (vertices.size() - 1) / 2);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        for (std::size_t j = i + 1; j < vertices.size(); ++j) {
            edges.push_back(
                {mesh_->distance(vertices[i].node, vertices[j].node), i,
                 j});
        }
    }
    // Equal-weight edges tie-break toward the store vertex first (a
    // shallower tree rooted at the store gives more subcomputation
    // parallelism at identical movement), then on node ids for
    // determinism — a refinement of the paper's random pick.
    const bool have_store_vertex =
        outermost &&
        slot_of_node[static_cast<std::size_t>(store_node)] >= 0;
    const std::size_t store_vertex =
        have_store_vertex
            ? static_cast<std::size_t>(
                  slot_of_node[static_cast<std::size_t>(store_node)])
            : SIZE_MAX;
    std::sort(edges.begin(), edges.end(), [&](const Edge &x,
                                              const Edge &y) {
        if (x.weight != y.weight)
            return x.weight < y.weight;
        const bool xs = x.a == store_vertex || x.b == store_vertex;
        const bool ys = y.a == store_vertex || y.b == store_vertex;
        if (xs != ys)
            return xs;
        if (vertices[x.a].node != vertices[y.a].node)
            return vertices[x.a].node < vertices[y.a].node;
        return vertices[x.b].node < vertices[y.b].node;
    });

    DisjointSet forest(vertices.size());
    std::vector<std::vector<std::size_t>> adjacency(vertices.size());
    for (const Edge &e : edges) {
        if (forest.unite(e.a, e.b)) {
            adjacency[e.a].push_back(e.b);
            adjacency[e.b].push_back(e.a);
            result.edges.push_back(
                {vertices[e.a].node, vertices[e.b].node, e.weight});
        }
    }

    // ---- 5. Pick the tree root. ----
    std::size_t root_vertex = 0;
    if (outermost) {
        root_vertex = static_cast<std::size_t>(
            slot_of_node[static_cast<std::size_t>(store_node)]);
    } else {
        std::int32_t best = mesh_->distance(vertices[0].node, store_node);
        for (std::size_t i = 1; i < vertices.size(); ++i) {
            const std::int32_t d =
                mesh_->distance(vertices[i].node, store_node);
            if (d < best ||
                (d == best && vertices[i].node < vertices[root_vertex].node)) {
                best = d;
                root_vertex = i;
            }
        }
    }

    // ---- 6. Post-order walk: leaves flow toward the root, one
    // subcomputation per merge point (Section 4.3). Iterative to keep
    // stack use bounded.
    std::vector<Item> vertex_result(vertices.size());
    std::vector<std::size_t> parent(vertices.size(), SIZE_MAX);
    std::vector<std::size_t> order; // pre-order; reversed = post-order
    order.reserve(vertices.size());
    order.push_back(root_vertex);
    parent[root_vertex] = root_vertex;
    for (std::size_t at = 0; at < order.size(); ++at) {
        const std::size_t v = order[at];
        for (std::size_t next : adjacency[v]) {
            if (parent[next] == SIZE_MAX) {
                parent[next] = v;
                order.push_back(next);
            }
        }
    }
    NDP_CHECK(order.size() == vertices.size(),
              "MST did not span all vertices");

    for (std::size_t at = order.size(); at-- > 0;) {
        const std::size_t v = order[at];
        std::vector<Item> inputs = vertices[v].items;
        for (std::size_t c : adjacency[v]) {
            if (parent[c] != v || c == v)
                continue;
            const Item &in = vertex_result[c];
            if (in.node == noc::kInvalidNode)
                continue;
            // The child's value crosses the MST edge exactly once:
            // a full line when a lone operand is fetched, a single
            // element when a subcomputation forwards its result
            // (Equation 1 weights movement by data size).
            const std::int64_t weight =
                in.leaf >= 0 ? fetchWeight_ : resultWeight_;
            result.plannedMovement +=
                weight * mesh_->distance(vertices[c].node,
                                         vertices[v].node);
            inputs.push_back(in);
        }
        const bool is_root_vertex = (v == root_vertex);
        if (is_root_vertex && outermost) {
            emit_sub(store_node, inputs, /*is_root=*/true);
            continue;
        }
        if (inputs.empty()) {
            vertex_result[v] = Item{};
        } else if (inputs.size() == 1 && inputs.front().leaf >= 0) {
            // A lone operand about to cross an MST edge: read it here
            // — where it lives (its home bank or a planned L1 copy) —
            // and forward the *value*. Shipping one element instead of
            // pulling a full line to the consumer is the essence of
            // bringing computation to data; it also realises the L1
            // reuse the variable2node map planned (Section 4.3).
            const int idx = emit_sub(vertices[v].node, inputs, false);
            Item out;
            out.node = vertices[v].node;
            out.sub = idx;
            out.op = inputs.front().op;
            vertex_result[v] = out;
        } else if (inputs.size() == 1) {
            // Pass-through of an already-forwarded partial result.
            Item out = inputs.front();
            out.node = vertices[v].node;
            vertex_result[v] = out;
        } else {
            const int idx = emit_sub(vertices[v].node, inputs, false);
            Item out;
            out.node =
                result.subs[static_cast<std::size_t>(idx)].node;
            out.sub = idx;
            vertex_result[v] = out;
        }
    }

    if (outermost)
        return Item{};
    return vertex_result[root_vertex];
}

} // namespace ndp::partition
