#ifndef NDP_PARTITION_COMPILE_STATS_H
#define NDP_PARTITION_COMPILE_STATS_H

/**
 * @file
 * Counters for the partitioner's own compile loop: how many statement
 * instances were planned, how many split plans were computed from
 * scratch vs. replayed from the SplitPlanCache, and (optionally) where
 * the nanoseconds went. The paper evaluates what the *plans* buy at run
 * time; this layer makes the cost of *producing* the plans a measured,
 * trackable quantity (the BENCH_partitioner.json trajectory).
 *
 * The phase timers are gated: when PartitionOptions::collectCompileTimers
 * is off (the default) no clock is ever read — the counters alone are a
 * handful of increments per instance.
 */

#include <chrono>
#include <cstdint>

namespace ndp::partition {

/** Compile-loop statistics for one planning pass (or a merge of many). */
struct CompileStats
{
    /** Statement instances streamed through the planner. */
    std::int64_t instancesPlanned = 0;
    /** Instances whose split plan was needed (analyzable instances). */
    std::int64_t splitsRequested = 0;
    /** Split plans computed by running Kruskal/splitSet. */
    std::int64_t plansComputed = 0;
    /** Split plans replayed from the SplitPlanCache. */
    std::int64_t plansMemoized = 0;
    /** Split requests that bypassed the cache (load-balanced splits). */
    std::int64_t cacheBypassed = 0;

    // Phase timers, nanoseconds; zero unless collectCompileTimers was on.
    std::int64_t resolveNs = 0; ///< resolveReads/resolveWrite
    std::int64_t locateNs = 0;  ///< DataLocator::locate per operand
    std::int64_t splitNs = 0;   ///< splitter runs + cache lookups
    std::int64_t syncNs = 0;    ///< per-window sync minimisation
    std::int64_t totalNs = 0;   ///< whole planWithWindow body

    /** Cache hits over all cache-eligible split requests. */
    double
    hitRate() const
    {
        const std::int64_t eligible = plansComputed + plansMemoized;
        return eligible == 0 ? 0.0
                             : static_cast<double>(plansMemoized) /
                                   static_cast<double>(eligible);
    }

    void
    merge(const CompileStats &other)
    {
        instancesPlanned += other.instancesPlanned;
        splitsRequested += other.splitsRequested;
        plansComputed += other.plansComputed;
        plansMemoized += other.plansMemoized;
        cacheBypassed += other.cacheBypassed;
        resolveNs += other.resolveNs;
        locateNs += other.locateNs;
        splitNs += other.splitNs;
        syncNs += other.syncNs;
        totalNs += other.totalNs;
    }
};

/**
 * RAII phase timer: accumulates the scope's duration into @p slot, or
 * does nothing at all (no clock read) when constructed with nullptr —
 * the pattern the planner uses to keep timers zero-cost when off.
 */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(std::int64_t *slot) : slot_(slot)
    {
        if (slot_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedPhaseTimer()
    {
        if (slot_ != nullptr) {
            *slot_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        }
    }

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    std::int64_t *slot_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_COMPILE_STATS_H
