#ifndef NDP_PARTITION_LOAD_BALANCER_H
#define NDP_PARTITION_LOAD_BALANCER_H

/**
 * @file
 * Load balancing across nodes (Section 4.5): the scheduler assigns a
 * subcomputation to a node only if doing so keeps that node within a
 * configurable factor (default 10%) of the most-loaded *other* node.
 * Costs are abstract operation units with division counted 10x.
 */

#include <cstdint>
#include <vector>

#include "noc/coord.h"

namespace ndp::partition {

class LoadBalancer
{
  public:
    /**
     * @param node_count mesh nodes
     * @param threshold allowed excess over the next-most-loaded node
     *        (0.10 reproduces the paper's 10% default)
     */
    explicit LoadBalancer(std::int32_t node_count,
                          double threshold = 0.10);

    /**
     * Remove @p node from the balancing pool (a dead tile under the
     * fault model): accepts() vetoes it unconditionally and it no
     * longer counts as a candidate ceiling for other nodes. Survives
     * reset(); marking is one-way for the balancer's lifetime.
     */
    void markUnavailable(noc::NodeId node);

    bool isAvailable(noc::NodeId node) const;

    /**
     * Would adding @p extra_cost to @p node keep the load balanced?
     * Always true while every other node is still idle and this one
     * holds no load yet; always false for unavailable (dead) nodes.
     */
    bool accepts(noc::NodeId node, std::int64_t extra_cost) const;

    /** Commit @p cost to @p node. */
    void add(noc::NodeId node, std::int64_t cost);

    std::int64_t load(noc::NodeId node) const;
    std::int64_t maxLoad() const;
    std::int64_t totalLoad() const;

    /** Max over min load ratio among nodes with any load (>= 1). */
    double imbalance() const;

    void reset();

  private:
    std::int64_t maxLoadExcluding(noc::NodeId node) const;

    std::vector<std::int64_t> load_;
    /** 1 = in the pool; 0 = marked unavailable (dead node). */
    std::vector<std::uint8_t> available_;
    double threshold_;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_LOAD_BALANCER_H
