#include "partition/codegen.h"

#include <map>
#include <sstream>

#include "support/error.h"

namespace ndp::partition {

std::string
generatePseudoCode(const sim::ExecutionPlan &plan,
                   const ir::LoopNest &nest,
                   const ir::ArrayTable &arrays,
                   std::int64_t first_iteration,
                   std::int64_t last_iteration)
{
    const std::vector<std::string> loop_names = nest.loopNames();

    // Group the covered tasks per node, preserving plan order.
    std::map<noc::NodeId, std::vector<const sim::Task *>> per_node;
    for (const sim::Task &task : plan.tasks) {
        if (task.iterationNumber < first_iteration ||
            task.iterationNumber > last_iteration)
            continue;
        per_node[task.node].push_back(&task);
    }

    auto temp_name = [](sim::TaskId id) {
        return "t" + std::to_string(id);
    };
    auto access_name = [&](const sim::MemAccess &access) {
        const ir::ArrayInfo &info = arrays.info(access.array);
        const std::int64_t elem =
            static_cast<std::int64_t>(access.addr - info.base) /
            info.elementSize;
        return info.name + "[" + std::to_string(elem) + "]";
    };

    std::ostringstream out;
    out << "// " << plan.name << ", window size " << plan.windowSize
        << ", iterations " << first_iteration << ".." << last_iteration
        << "\n";
    for (const auto &[node, tasks] : per_node) {
        out << "node " << node << ":\n";
        for (const sim::Task *task : tasks) {
            const ir::Statement &stmt =
                nest.body()[static_cast<std::size_t>(
                    task->statementIndex)];
            // sync() waits for cross-node producers.
            for (sim::TaskId dep : task->deps) {
                const sim::Task &producer =
                    plan.tasks[static_cast<std::size_t>(dep)];
                if (producer.node != task->node) {
                    out << "  sync(" << temp_name(dep) << ")  // from node "
                        << producer.node << "\n";
                }
            }
            out << "  ";
            if (task->write) {
                out << access_name(*task->write);
            } else {
                out << temp_name(task->id);
            }
            out << " = ";
            bool first = true;
            std::size_t op_at = 0;
            auto joiner = [&]() -> std::string {
                if (first) {
                    first = false;
                    return "";
                }
                const char *op =
                    op_at < task->ops.size()
                        ? ir::toString(task->ops[op_at])
                        : "+";
                ++op_at;
                return std::string(" ") + op + " ";
            };
            for (const sim::MemAccess &read : task->reads)
                out << joiner() << access_name(read);
            for (sim::TaskId dep : task->deps) {
                const sim::Task &producer =
                    plan.tasks[static_cast<std::size_t>(dep)];
                // Pure ordering deps carry no operand; only children
                // that produced partial results appear as temporaries.
                if (producer.statementIndex == task->statementIndex &&
                    producer.iterationNumber == task->iterationNumber) {
                    out << joiner() << temp_name(dep);
                }
            }
            if (first) {
                // Constant-only RHS.
                out << stmt.rhs().toString(arrays, loop_names);
            }
            out << ";";
            if (task->isSubcomputation)
                out << "  // offloaded";
            out << "\n";
        }
    }
    return out.str();
}

} // namespace ndp::partition
