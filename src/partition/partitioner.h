#ifndef NDP_PARTITION_PARTITIONER_H
#define NDP_PARTITION_PARTITIONER_H

/**
 * @file
 * The complete NDP-aware subcomputation scheduler (Algorithm 1 plus
 * Sections 4.3-4.5): windows of consecutive statement instances are
 * located, split along their MSTs, load-balanced, synchronised, and
 * emitted as an ExecutionPlan. Window sizes 1..8 are evaluated per loop
 * nest and the one with the least total data movement is kept
 * (Section 4.4), unless a fixed size is forced (Figure 20's sweeps).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/dependence.h"
#include "ir/statement.h"
#include "partition/compile_stats.h"
#include "partition/data_locator.h"
#include "partition/split_plan_cache.h"
#include "sim/engine.h"
#include "sim/manycore.h"
#include "support/stats.h"
#include "verify/diagnostic.h"
#include "verify/provenance.h"
#include "verify/verify_level.h"

namespace ndp::partition {

/** Tuning knobs for the partitioner. */
struct PartitionOptions
{
    /** Largest window the adaptive sweep considers (paper: 8). */
    std::int32_t maxWindowSize = 8;
    /** Force one window size for every nest; 0 = adaptive sweep. */
    std::int32_t fixedWindowSize = 0;
    /** Consult the variable2node map (reuse-aware vs reuse-agnostic). */
    bool exploitReuse = true;
    /** Apply the load-balancing veto of Section 4.5. */
    bool loadBalance = true;
    double loadBalanceThreshold = 0.10;
    /** Drop transitively-implied synchronisations. */
    bool minimizeSyncs = true;
    /**
     * Ideal data analysis (Section 6.4): perfect locations and perfect
     * disambiguation of indirect references.
     */
    bool oracle = false;
    /**
     * Lines one node's L1 is trusted to retain within a window (the
     * pollution model of Section 4.4); 0 derives it from the L1 size.
     */
    std::size_t reuseCapacityLines = 0;
    /**
     * Cost-model weight converting saved flit-hops into saved stall
     * cycles when deciding whether a split pays for its task-issue and
     * synchronisation overheads.
     */
    double latencyPerFlitHop = 1.0;
    /**
     * Safety multiplier on the estimated split overhead: > 1 makes the
     * planner more conservative, 0 disables the profitability guard
     * entirely (split whenever movement improves, as the paper's
     * Algorithm 1 does unconditionally).
     */
    double overheadSafetyFactor = 0.6;
    /**
     * Profiled node utilisation of the default execution
     * (busy / (makespan * nodes)). On a tightly packed machine sync
     * waits cannot hide in idle gaps, so split overhead counts in
     * full; on a stall-ridden one it largely overlaps. Supplied by the
     * driver from the profiling run.
     */
    double profileUtilization = 0.5;
    /**
     * Memoize split plans by (statement, operand-location signature,
     * store node): a hit replays the cached SplitResult instead of
     * re-running Kruskal, with byte-identical plans either way. Splits
     * under the load balancer always bypass the cache — the balancer
     * mutates trial state, so equal signatures no longer imply equal
     * results.
     */
    bool memoizeSplits = true;
    /**
     * Fill PartitionReport::compile's per-phase nanosecond timers. Off
     * by default: the timers read a clock per phase per instance, and
     * the counters alone are free.
     */
    bool collectCompileTimers = false;
    /**
     * Static plan verification (DESIGN.md §9). At Cheap or Full the
     * planner records per-instance provenance on its report and the
     * driver runs verify::PlanVerifier over every emitted plan,
     * failing fast on error-severity findings. Defaults to the
     * NDP_VERIFY environment knob so whole harnesses and campaigns
     * re-run under verification without per-call wiring.
     */
    verify::VerifyLevel verifyLevel = verify::verifyLevelFromEnv();
};

/** Aggregates the planner produces for the paper's figures. */
struct PartitionReport
{
    std::int32_t chosenWindowSize = 1;
    /** Per-instance % movement reduction vs default (Figure 13). */
    Accumulator movementReductionPct;
    /** Per-instance degree of parallelism (Figure 14). */
    Accumulator degreeOfParallelism;
    /** Per-instance syncs after minimisation (Figure 15). */
    Accumulator syncsPerStatement;
    /** Per-instance syncs before minimisation. */
    Accumulator rawSyncsPerStatement;
    std::int64_t plannedMovement = 0;
    std::int64_t defaultMovement = 0;
    /** Offloaded (re-mapped) operator counts by category (Table 3). */
    std::int64_t offloadedOps[3] = {0, 0, 0};
    std::int64_t offloadedSubcomputations = 0;
    std::int64_t statementsSplit = 0;
    std::int64_t statementsKeptDefault = 0;
    /** Total planned movement for every window size probed (Fig 20). */
    std::vector<std::int64_t> movementPerWindowSize;
    /**
     * Order-dependent digest of every window's variable2node insertion
     * history for the chosen plan. Window semantics depend on the
     * order statements stream through the planner, so equal digests
     * mean the reuse state evolved identically — the invariant the
     * nest-parallel equivalence tests pin.
     */
    std::uint64_t reuseMapHash = 0;
    /** Total variable2node entries recorded across all windows. */
    std::int64_t reuseCopiesPlanned = 0;
    /**
     * Compile-loop cost of producing this plan, summed over every
     * window-size candidate the adaptive sweep probed (the planner
     * paid for all of them, not just the winner).
     */
    CompileStats compile;
    /**
     * Per-instance planning provenance of the kept plan — the static
     * verifier's input. Only recorded when verifyLevel != Off; the
     * driver releases it once the plan has been verified.
     */
    std::shared_ptr<const verify::PlanProvenance> provenance;
    /** Diagnostic tallies the driver fills after verification. */
    verify::ReportCounts verifyCounts;
};

/** Produces the optimized ExecutionPlan for a loop nest. */
class Partitioner
{
  public:
    /**
     * @param system provides the mesh, address map, and miss predictor
     *        (which should have been trained by a profiling run)
     * @param arrays the program's array table (with any inspector-
     *        collected index data installed)
     */
    Partitioner(sim::ManycoreSystem &system, const ir::ArrayTable &arrays,
                PartitionOptions options = {});

    /**
     * Plan @p nest.
     * @param default_nodes baseline (iteration -> node) assignment, in
     *        lexicographic iteration order; used for the movement
     *        comparison and as the fallback placement for statements
     *        whose references cannot be analysed
     */
    sim::ExecutionPlan plan(const ir::LoopNest &nest,
                            const std::vector<noc::NodeId> &default_nodes);

    /** Report for the most recent plan() call. */
    const PartitionReport &report() const { return report_; }

  private:
    struct PlanBuild; // one window-size attempt (defined in .cc)

    sim::ExecutionPlan planWithWindow(
        const ir::LoopNest &nest,
        const std::vector<noc::NodeId> &default_nodes,
        std::int32_t window_size, PartitionReport &report) const;

    sim::ManycoreSystem *system_;
    const ir::ArrayTable *arrays_;
    PartitionOptions options_;
    PartitionReport report_;
    /**
     * Split-plan cache shared by every window-size candidate of one
     * plan() call (signatures are nest-relative, so plan() clears it).
     * Mutable: planning is logically const but memoization is not,
     * and a Partitioner is owned by a single thread.
     */
    mutable SplitPlanCache splitCache_;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_PARTITIONER_H
