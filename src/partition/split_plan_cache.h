#ifndef NDP_PARTITION_SPLIT_PLAN_CACHE_H
#define NDP_PARTITION_SPLIT_PLAN_CACHE_H

/**
 * @file
 * Split-plan memoization. A statement instance's SplitResult is a pure
 * function of (statement's nested sets, operand locations, store node)
 * when no load balancer is in play: the SNUCA bank mapping is a pure,
 * periodic function of the address, so across the iterations of an
 * affine nest the same (locations, store) tuple recurs constantly and
 * most Kruskal runs recompute an identical plan. The cache interns each
 * instance's operand-location tuple into a compact signature — node id
 * and location source per operand, FNV-1a hashed — and replays the
 * cached SplitResult on a hit.
 *
 * Correctness: the 64-bit hash only selects a bucket; every entry keeps
 * its full encoded key and lookups compare it word for word, so a hash
 * collision degrades to a miss (or a sibling entry), never to a wrong
 * plan. Plans produced with a cache are byte-identical to plans
 * produced without one — the invariant tests/split_cache_test pins.
 *
 * Load-balanced splits must bypass the cache entirely: the balancer
 * mutates trial state per call, so equal signatures no longer imply
 * equal results (see Partitioner).
 *
 * Not thread-safe; each Partitioner owns one and is itself used from a
 * single thread (nest-level parallelism gives every nest its own
 * Partitioner).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "partition/data_locator.h"
#include "partition/splitter.h"

namespace ndp::partition {

/** Memoizes SplitResults by (statement, operand locations, store). */
class SplitPlanCache
{
  public:
    /**
     * Find the plan cached for this key, building the signature from
     * @p locations (node + source per operand). On a miss the key is
     * retained internally and nullptr is returned; the caller computes
     * the plan and hands it to insert(), which files it under that
     * retained key. The returned pointer is valid until the next
     * insert() or clear() (an insert into the same hash bucket may
     * relocate siblings).
     */
    const SplitResult *lookup(std::int32_t stmt_idx,
                              noc::NodeId store_node,
                              const std::vector<Location> &locations);

    /**
     * Set the fault epoch (fault::FaultModel::signature(), 0 when
     * healthy) mixed into every signature. Changing the epoch clears
     * the cache: entries planned against one fault set must never
     * replay under another — a cached plan could otherwise schedule a
     * subcomputation on a node the new epoch declares dead. Belt and
     * braces on top of the per-plan clear(), which the epoch survives.
     */
    void setEpoch(std::uint64_t epoch);

    std::uint64_t epoch() const { return epoch_; }

    /**
     * File @p plan under the key of the immediately preceding missed
     * lookup() and return the cached copy. Calling insert() without a
     * preceding miss is a bug.
     */
    const SplitResult &insert(SplitResult plan);

    void clear();

    std::int64_t hits() const { return hits_; }
    std::int64_t misses() const { return misses_; }
    std::size_t size() const { return entries_; }

  private:
    struct Entry
    {
        std::vector<std::uint32_t> key;
        SplitResult plan;
    };

    /** Bucketed by signature hash; siblings disambiguate collisions. */
    std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
    /** Key of the last lookup, reused as scratch to avoid allocation. */
    std::vector<std::uint32_t> scratchKey_;
    std::uint64_t scratchHash_ = 0;
    bool missArmed_ = false;
    std::uint64_t epoch_ = 0;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::size_t entries_ = 0;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_SPLIT_PLAN_CACHE_H
