#ifndef NDP_PARTITION_INSPECTOR_H
#define NDP_PARTITION_INSPECTOR_H

/**
 * @file
 * The runtime inspector of the inspector/executor paradigm
 * (Section 4.5, after Das et al. [15]): for loop nests with indirect
 * subscripts inside an outer timing loop, the first trips run an
 * inspector that records the realised index values; the remaining
 * (executor) trips are then scheduled with exact dependence knowledge.
 *
 * In this model the "runtime" index values live in the ArrayTable; the
 * inspector walks the inspector-trip iterations, verifies that every
 * indirect subscript can be resolved, and summarises the indirection
 * structure (fan-in of popular targets, write conflicts) that the
 * executor-side scheduler relies on.
 */

#include <cstdint>
#include <vector>

#include "ir/statement.h"

namespace ndp::partition {

/** What one inspector run over a nest discovered. */
struct InspectionResult
{
    /** Every indirect subscript could be resolved from runtime data. */
    bool resolved = false;
    /** Indirect accesses observed across the inspected iterations. */
    std::int64_t indirectAccesses = 0;
    /** Distinct elements those accesses touched. */
    std::int64_t distinctTargets = 0;
    /**
     * Observed fan-in of the most popular target: how many accesses hit
     * the hottest element. High fan-in is exactly the reuse the
     * variable2node map converts into L1 hits.
     */
    std::int64_t maxTargetFanIn = 0;
    /**
     * True when some indirect access touches an element that the nest
     * also writes — the realised may-dependences the executor must
     * order (none of our kernels require ordering beyond what the
     * address-based tracker inserts, but the flag feeds diagnostics).
     */
    bool writeConflicts = false;

    /** Accesses per distinct target (>= 1); the reuse ratio. */
    double
    reuseFactor() const
    {
        return distinctTargets == 0
                   ? 0.0
                   : static_cast<double>(indirectAccesses) /
                         static_cast<double>(distinctTargets);
    }
};

/** Runs the inspector phase of a nest. */
class Inspector
{
  public:
    /**
     * Inspect @p nest against the runtime index data in @p arrays.
     *
     * Walks min(nest.inspectorTrips, 1) trips' worth of iterations
     * (the realised indices repeat across trips in this model, so one
     * walk suffices) and resolves every indirect subscript. Returns
     * resolved = false — without touching anything else — when the
     * nest declares no inspector trips or some index array has no
     * runtime data installed.
     */
    InspectionResult inspect(const ir::LoopNest &nest,
                             const ir::ArrayTable &arrays) const;

    /**
     * Cheap gate the scheduler uses: may the executor treat indirect
     * subscripts of @p nest as resolved?
     */
    static bool canResolve(const ir::LoopNest &nest,
                           const ir::ArrayTable &arrays);
};

} // namespace ndp::partition

#endif // NDP_PARTITION_INSPECTOR_H
