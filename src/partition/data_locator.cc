#include "partition/data_locator.h"

#include "support/error.h"

namespace ndp::partition {

const std::vector<noc::NodeId> VariableToNodeMap::kEmpty;

VariableToNodeMap::VariableToNodeMap(std::size_t per_node_capacity)
    : capacity_(per_node_capacity)
{
}

void
VariableToNodeMap::dropOldest(noc::NodeId node)
{
    auto fit = fifo_.find(node);
    if (fit == fifo_.end() || fit->second.size() == 0)
        return;
    LineFifo &queue = fit->second;
    const std::uint64_t line = queue.items[queue.head++];
    if (queue.head > queue.items.size() / 2 && queue.head >= 16) {
        queue.items.erase(queue.items.begin(),
                          queue.items.begin() +
                              static_cast<std::ptrdiff_t>(queue.head));
        queue.head = 0;
    }
    auto mit = map_.find(line);
    if (mit != map_.end()) {
        std::erase(mit->second, node);
        if (mit->second.empty())
            map_.erase(mit);
    }
}

void
VariableToNodeMap::mixHash(std::uint64_t value)
{
    // FNV-1a over the value's bytes.
    for (int b = 0; b < 8; ++b) {
        hash_ ^= (value >> (8 * b)) & 0xff;
        hash_ *= 0x100000001b3ull;
    }
}

void
VariableToNodeMap::add(mem::Addr addr, noc::NodeId node)
{
    const std::uint64_t line = mem::lineNumber(addr);
    auto &nodes = map_[line];
    for (noc::NodeId n : nodes) {
        if (n == node)
            return;
    }
    if (capacity_ > 0) {
        auto &queue = fifo_[node];
        while (queue.size() >= capacity_)
            dropOldest(node);
        queue.items.push_back(line);
    }
    nodes.push_back(node);
    mixHash(line);
    mixHash(static_cast<std::uint64_t>(node));
    ++inserts_;
}

void
VariableToNodeMap::clear()
{
    map_.clear();
    fifo_.clear();
    // The digest deliberately survives clear(): it fingerprints the
    // whole insertion history, not the live contents.
}

const std::vector<noc::NodeId> &
VariableToNodeMap::nodesFor(mem::Addr addr) const
{
    const auto it = map_.find(mem::lineNumber(addr));
    return it == map_.end() ? kEmpty : it->second;
}

DataLocator::DataLocator(sim::ManycoreSystem &system, bool oracle)
    : system_(&system), oracle_(oracle)
{
}

Location
DataLocator::locateHome(mem::Addr addr) const
{
    const mem::AddressMap &amap = system_->addressMap();
    Location loc;
    loc.node = amap.homeBankNode(addr);
    loc.source = LocationSource::L2Home;

    bool expect_l2_hit;
    if (oracle_) {
        // Ideal data analysis: probe the simulated bank directly.
        expect_l2_hit = true; // home bank will hold it after first touch
    } else {
        expect_l2_hit = system_->missPredictor().predictHit(addr);
    }
    if (!expect_l2_hit) {
        // Predicted L2 miss: the fill still flows through the home
        // bank under SNUCA (Figure 1 steps 2-4), so the home node is a
        // movement-minimal location for the consumer as well — and,
        // unlike the paper's literal "use the MC" rule, it does not
        // funnel subcomputations onto the four corner tiles (our mesh
        // has 4 corner MCs where KNL spreads 6 DDR + 8 MCDRAM
        // controllers around the die; see DESIGN.md deviations).
        loc.source = LocationSource::MemCtrl;
    }
    return loc;
}

Location
DataLocator::locate(mem::Addr addr, const VariableToNodeMap &map,
                    noc::NodeId prefer_near) const
{
    const std::vector<noc::NodeId> &copies = map.nodesFor(addr);
    if (!copies.empty()) {
        // Among the L1 copies pick the one nearest to the caller's
        // anchor node; ties break toward the lower node id so the
        // choice is deterministic.
        const noc::MeshTopology &mesh = system_->mesh();
        Location loc;
        loc.source = LocationSource::L1Copy;
        loc.node = copies.front();
        if (prefer_near != noc::kInvalidNode) {
            std::int32_t best = mesh.distance(loc.node, prefer_near);
            for (noc::NodeId n : copies) {
                const std::int32_t d = mesh.distance(n, prefer_near);
                if (d < best || (d == best && n < loc.node)) {
                    best = d;
                    loc.node = n;
                }
            }
        }
        return loc;
    }
    return locateHome(addr);
}

} // namespace ndp::partition
