#ifndef NDP_PARTITION_SPLITTER_H
#define NDP_PARTITION_SPLITTER_H

/**
 * @file
 * Single-statement splitting (Section 4.2, Algorithm 1): build a
 * complete graph over the distinct nodes holding a statement's
 * operands, run Kruskal's algorithm to obtain the MST that minimises
 * total data movement, and walk the tree from its leaves toward the
 * store node, placing one subcomputation at every merge point
 * (Section 4.3). Nested variable sets are processed innermost-first;
 * a processed set joins the next level as a single component rooted at
 * the node where its result materialised.
 *
 * Load balancing (Section 4.5): when the balancer vetoes a merge node,
 * the merge slides to the other endpoint of its MST edge at the cost
 * of one extra edge traversal — preserving correctness while trading a
 * little movement for balance, exactly the knob the paper describes.
 */

#include <cstdint>
#include <vector>

#include "ir/nested_sets.h"
#include "noc/mesh_topology.h"
#include "partition/data_locator.h"
#include "partition/load_balancer.h"

namespace ndp::partition {

/** One MST edge (introspection and the paper's worked examples). */
struct MstEdge
{
    noc::NodeId a = noc::kInvalidNode;
    noc::NodeId b = noc::kInvalidNode;
    std::int32_t weight = 0;
};

/** One subcomputation: a merge executed at one node. */
struct Subcomputation
{
    noc::NodeId node = noc::kInvalidNode;
    /** Leaf operand indices (into Statement::reads()) consumed here. */
    std::vector<int> leaves;
    /** Indices of child subcomputations whose results merge here. */
    std::vector<int> children;
    /** Operators executed here. */
    std::vector<ir::OpKind> ops;
    /** Load-balancing cost of those operators. */
    std::int64_t opCost = 0;
    /** Whether this subcomputation holds the final store. */
    bool isRoot = false;
};

/** Result of splitting one statement instance. */
struct SplitResult
{
    /** Subcomputations, children always preceding parents. */
    std::vector<Subcomputation> subs;
    /** Index of the root subcomputation (at the store node). */
    int root = -1;
    /** Planned Equation-1 data movement (link traversals). */
    std::int64_t plannedMovement = 0;
    /** Subcomputations with no children: they start in parallel. */
    std::int32_t degreeOfParallelism = 1;
    /** Cross-node parent-child edges = point-to-point syncs needed. */
    std::int32_t crossNodeEdges = 0;
    /** All MST edges chosen, every level combined. */
    std::vector<MstEdge> edges;
};

/** Splits statements along their nested-set MSTs. */
class StatementSplitter
{
  public:
    /**
     * @param fetch_weight flits moved per operand fetch crossing an
     *        MST edge (a full cache line)
     * @param result_weight flits per partial-result message (one
     *        element) — Equation 1 weights movement by data size
     */
    explicit StatementSplitter(const noc::MeshTopology &mesh,
                               std::int64_t fetch_weight = 8,
                               std::int64_t result_weight = 1);

    /**
     * Split one statement instance.
     * @param sets nested variable sets of the statement (leaf indices
     *        refer to positions in @p leaf_locations)
     * @param leaf_locations located node of every RHS leaf operand
     * @param store_node the home node of the statement's output, where
     *        the final result must be produced and stored
     * @param balancer optional load balancer consulted (and updated)
     *        for every merge; null disables the balancing veto. The
     *        caller may pass a trial copy and commit it only if the
     *        split is kept.
     */
    SplitResult split(const ir::VarSet &sets,
                      const std::vector<Location> &leaf_locations,
                      noc::NodeId store_node,
                      LoadBalancer *balancer = nullptr);

  private:
    struct Item
    {
        noc::NodeId node = noc::kInvalidNode;
        int leaf = -1; ///< leaf operand index, or
        int sub = -1;  ///< producing subcomputation index
        ir::OpKind op = ir::OpKind::Add;
    };

    /** Process one set level; returns the item representing its result. */
    Item splitSet(const ir::VarSet &set,
                  const std::vector<Location> &leaf_locations,
                  noc::NodeId store_node, bool outermost,
                  LoadBalancer *balancer, SplitResult &result);

    const noc::MeshTopology *mesh_;
    std::int64_t fetchWeight_;
    std::int64_t resultWeight_;
    /**
     * Reused node -> vertex-slot scratch arrays, one per active
     * recursion depth of splitSet (sized to the mesh's node count,
     * -1 = node not seen at this level). Leasing from the pool keeps
     * the per-call vertex grouping allocation-free after warm-up.
     */
    std::vector<std::vector<std::int32_t>> nodeSlotPool_;
    std::size_t nodeSlotDepth_ = 0;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_SPLITTER_H
