#ifndef NDP_PARTITION_CODEGEN_H
#define NDP_PARTITION_CODEGEN_H

/**
 * @file
 * High-level code generation (Section 4.5, Figure 8): renders the
 * per-node programs an ExecutionPlan implies as readable pseudo-code —
 * the subcomputations each node executes, the partial-result
 * temporaries, and the sync() waits guarding them. Used by the
 * examples and for debugging schedules; the simulator consumes the
 * Task form directly.
 */

#include <string>

#include "ir/statement.h"
#include "sim/plan.h"

namespace ndp::partition {

/**
 * Render the slice of @p plan covering iterations
 * [first_iteration, last_iteration] as Figure-8-style per-node code.
 */
std::string generatePseudoCode(const sim::ExecutionPlan &plan,
                               const ir::LoopNest &nest,
                               const ir::ArrayTable &arrays,
                               std::int64_t first_iteration = 0,
                               std::int64_t last_iteration = 0);

} // namespace ndp::partition

#endif // NDP_PARTITION_CODEGEN_H
