#include "partition/split_plan_cache.h"

#include "support/error.h"

namespace ndp::partition {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnvMix(std::uint64_t hash, std::uint32_t word)
{
    for (int b = 0; b < 4; ++b) {
        hash ^= (word >> (8 * b)) & 0xff;
        hash *= kFnvPrime;
    }
    return hash;
}

} // namespace

const SplitResult *
SplitPlanCache::lookup(std::int32_t stmt_idx, noc::NodeId store_node,
                       const std::vector<Location> &locations)
{
    scratchKey_.clear();
    // The fault epoch leads every key, so signatures from different
    // fault sets can never compare equal even across a missed clear().
    scratchKey_.push_back(static_cast<std::uint32_t>(epoch_));
    scratchKey_.push_back(static_cast<std::uint32_t>(epoch_ >> 32));
    scratchKey_.push_back(static_cast<std::uint32_t>(stmt_idx));
    scratchKey_.push_back(static_cast<std::uint32_t>(store_node));
    for (const Location &loc : locations) {
        // Node id and source packed into one word: the source does not
        // influence the split (only the node does), but keeping it in
        // the signature costs nothing and keys the cache exactly on
        // what the locator produced.
        scratchKey_.push_back(
            (static_cast<std::uint32_t>(loc.node) << 2) |
            static_cast<std::uint32_t>(loc.source));
    }
    std::uint64_t hash = kFnvOffset;
    for (std::uint32_t word : scratchKey_)
        hash = fnvMix(hash, word);
    scratchHash_ = hash;

    const auto it = buckets_.find(hash);
    if (it != buckets_.end()) {
        for (const Entry &entry : it->second) {
            if (entry.key == scratchKey_) {
                ++hits_;
                missArmed_ = false;
                return &entry.plan;
            }
        }
    }
    ++misses_;
    missArmed_ = true;
    return nullptr;
}

const SplitResult &
SplitPlanCache::insert(SplitResult plan)
{
    NDP_CHECK(missArmed_, "insert() without a preceding missed lookup");
    missArmed_ = false;
    std::vector<Entry> &bucket = buckets_[scratchHash_];
    bucket.push_back(Entry{scratchKey_, std::move(plan)});
    ++entries_;
    return bucket.back().plan;
}

void
SplitPlanCache::setEpoch(std::uint64_t epoch)
{
    if (epoch == epoch_)
        return;
    epoch_ = epoch;
    clear();
}

void
SplitPlanCache::clear()
{
    buckets_.clear();
    entries_ = 0;
    missArmed_ = false;
    // hits_/misses_ survive: they are cumulative planning statistics,
    // reported per plan() call by the Partitioner.
}

} // namespace ndp::partition
