#include "partition/sync_graph.h"

#include <algorithm>

#include "support/error.h"

namespace ndp::partition {

int
SyncGraph::addNode()
{
    adj_.emplace_back();
    return static_cast<int>(adj_.size()) - 1;
}

void
SyncGraph::addArc(int from, int to)
{
    NDP_CHECK(from >= 0 && static_cast<std::size_t>(from) < adj_.size(),
              "bad sync arc source " << from);
    NDP_CHECK(to >= 0 && static_cast<std::size_t>(to) < adj_.size(),
              "bad sync arc target " << to);
    NDP_CHECK(from != to, "self sync arc");
    auto &out = adj_[static_cast<std::size_t>(from)];
    if (std::find(out.begin(), out.end(), to) == out.end())
        out.push_back(to);
}

std::size_t
SyncGraph::arcCount() const
{
    std::size_t n = 0;
    for (const auto &out : adj_)
        n += out.size();
    return n;
}

const std::vector<int> &
SyncGraph::successors(int node) const
{
    NDP_CHECK(node >= 0 && static_cast<std::size_t>(node) < adj_.size(),
              "bad node " << node);
    return adj_[static_cast<std::size_t>(node)];
}

bool
SyncGraph::reachable(int from, int to) const
{
    return reachableAvoiding(from, to, -1, -1);
}

bool
SyncGraph::impliedByOthers(int from, int to) const
{
    return reachableAvoiding(from, to, from, to);
}

void
SyncGraph::removeArc(int from, int to)
{
    NDP_CHECK(from >= 0 && static_cast<std::size_t>(from) < adj_.size(),
              "bad arc source " << from);
    std::erase(adj_[static_cast<std::size_t>(from)], to);
}

bool
SyncGraph::reachableAvoiding(int from, int to, int skip_from,
                             int skip_to) const
{
    std::vector<bool> seen(adj_.size(), false);
    std::vector<int> stack{from};
    seen[static_cast<std::size_t>(from)] = true;
    while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        for (int next : adj_[static_cast<std::size_t>(v)]) {
            if (v == skip_from && next == skip_to)
                continue; // the arc whose redundancy is being tested
            if (next == to)
                return true;
            if (!seen[static_cast<std::size_t>(next)]) {
                seen[static_cast<std::size_t>(next)] = true;
                stack.push_back(next);
            }
        }
    }
    return false;
}

std::size_t
SyncGraph::transitiveReduce()
{
    std::size_t removed = 0;
    for (std::size_t v = 0; v < adj_.size(); ++v) {
        auto &out = adj_[v];
        for (std::size_t i = 0; i < out.size();) {
            const int target = out[i];
            // Redundant iff the target is still reachable without the
            // direct arc (a chain already enforces the ordering).
            if (reachableAvoiding(static_cast<int>(v), target,
                                  static_cast<int>(v), target)) {
                out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
                ++removed;
            } else {
                ++i;
            }
        }
    }
    return removed;
}

} // namespace ndp::partition
