#include "partition/load_balancer.h"

#include <algorithm>

#include "support/error.h"

namespace ndp::partition {

LoadBalancer::LoadBalancer(std::int32_t node_count, double threshold)
    : load_(static_cast<std::size_t>(node_count), 0),
      available_(static_cast<std::size_t>(node_count), 1),
      threshold_(threshold)
{
    NDP_REQUIRE(node_count > 0, "balancer needs nodes");
    NDP_REQUIRE(threshold >= 0.0, "negative balance threshold");
}

void
LoadBalancer::markUnavailable(noc::NodeId node)
{
    NDP_CHECK(node >= 0 &&
                  static_cast<std::size_t>(node) < load_.size(),
              "bad node " << node);
    NDP_CHECK(load_[static_cast<std::size_t>(node)] == 0,
              "node " << node << " already holds load");
    available_[static_cast<std::size_t>(node)] = 0;
}

bool
LoadBalancer::isAvailable(noc::NodeId node) const
{
    NDP_CHECK(node >= 0 &&
                  static_cast<std::size_t>(node) < load_.size(),
              "bad node " << node);
    return available_[static_cast<std::size_t>(node)] != 0;
}

std::int64_t
LoadBalancer::maxLoadExcluding(noc::NodeId node) const
{
    std::int64_t best = 0;
    for (std::size_t n = 0; n < load_.size(); ++n) {
        if (static_cast<noc::NodeId>(n) != node)
            best = std::max(best, load_[n]);
    }
    return best;
}

bool
LoadBalancer::accepts(noc::NodeId node, std::int64_t extra_cost) const
{
    NDP_CHECK(node >= 0 &&
                  static_cast<std::size_t>(node) < load_.size(),
              "bad node " << node);
    if (!available_[static_cast<std::size_t>(node)])
        return false;
    const std::int64_t mine =
        load_[static_cast<std::size_t>(node)] + extra_cost;
    const std::int64_t other_max = maxLoadExcluding(node);
    if (other_max == 0) {
        // Nothing has been scheduled elsewhere yet: accept a first
        // assignment, otherwise every node would veto every other.
        return load_[static_cast<std::size_t>(node)] == 0;
    }
    return static_cast<double>(mine) <=
           (1.0 + threshold_) * static_cast<double>(other_max);
}

void
LoadBalancer::add(noc::NodeId node, std::int64_t cost)
{
    NDP_CHECK(node >= 0 &&
                  static_cast<std::size_t>(node) < load_.size(),
              "bad node " << node);
    NDP_CHECK(available_[static_cast<std::size_t>(node)],
              "load committed to unavailable node " << node);
    load_[static_cast<std::size_t>(node)] += cost;
}

std::int64_t
LoadBalancer::load(noc::NodeId node) const
{
    NDP_CHECK(node >= 0 &&
                  static_cast<std::size_t>(node) < load_.size(),
              "bad node " << node);
    return load_[static_cast<std::size_t>(node)];
}

std::int64_t
LoadBalancer::maxLoad() const
{
    return *std::max_element(load_.begin(), load_.end());
}

std::int64_t
LoadBalancer::totalLoad() const
{
    std::int64_t total = 0;
    for (std::int64_t l : load_)
        total += l;
    return total;
}

double
LoadBalancer::imbalance() const
{
    std::int64_t max_load = 0;
    std::int64_t min_load = 0;
    bool first = true;
    for (std::int64_t l : load_) {
        if (l == 0)
            continue;
        max_load = std::max(max_load, l);
        min_load = first ? l : std::min(min_load, l);
        first = false;
    }
    if (first || min_load == 0)
        return 1.0;
    return static_cast<double>(max_load) / static_cast<double>(min_load);
}

void
LoadBalancer::reset()
{
    std::fill(load_.begin(), load_.end(), 0);
}

} // namespace ndp::partition
