#include "partition/partitioner.h"

#include <algorithm>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "ir/nested_sets.h"
#include "partition/inspector.h"
#include "partition/load_balancer.h"
#include "partition/splitter.h"
#include "partition/sync_graph.h"
#include "support/error.h"

namespace ndp::partition {

Partitioner::Partitioner(sim::ManycoreSystem &system,
                         const ir::ArrayTable &arrays,
                         PartitionOptions options)
    : system_(&system), arrays_(&arrays), options_(options)
{
    NDP_REQUIRE(options_.maxWindowSize >= 1, "window size must be >= 1");
}

sim::ExecutionPlan
Partitioner::plan(const ir::LoopNest &nest,
                  const std::vector<noc::NodeId> &default_nodes)
{
    NDP_REQUIRE(static_cast<std::int64_t>(default_nodes.size()) ==
                    nest.iterationCount(),
                "default assignment size mismatch for nest '"
                    << nest.name() << "'");

    std::vector<std::int32_t> candidates;
    if (options_.fixedWindowSize > 0) {
        candidates.push_back(options_.fixedWindowSize);
    } else {
        for (std::int32_t w = 1; w <= options_.maxWindowSize; ++w)
            candidates.push_back(w);
    }

    sim::ExecutionPlan best_plan;
    PartitionReport best_report;
    std::int64_t best_movement = 0;
    bool have_best = false;
    std::vector<std::int64_t> movement_per_w;

    // Split-plan signatures embed statement indices, which are only
    // meaningful within one nest — but they are stable across the
    // window-size candidates below, so the cache warms on w=1 and
    // every later candidate replays mostly memoized plans.
    splitCache_.clear();
    splitCache_.setEpoch(system_->mesh().faults().signature());

    CompileStats compile_total;
    for (std::int32_t w : candidates) {
        PartitionReport rep;
        sim::ExecutionPlan p = planWithWindow(nest, default_nodes, w, rep);
        movement_per_w.push_back(rep.plannedMovement);
        compile_total.merge(rep.compile);
        if (!have_best || rep.plannedMovement < best_movement) {
            have_best = true;
            best_movement = rep.plannedMovement;
            best_plan = std::move(p);
            best_report = rep;
        }
    }

    best_report.movementPerWindowSize = std::move(movement_per_w);
    // The compile cost covers the whole adaptive sweep: the planner
    // paid for every candidate, not just the winning window size.
    best_report.compile = compile_total;
    report_ = best_report;
    return best_plan;
}

namespace {

/** Per-address writer/reader bookkeeping for dependence arcs. */
struct DepTracker
{
    std::unordered_map<mem::Addr, sim::TaskId> lastWriter;
    std::unordered_map<mem::Addr, std::vector<sim::TaskId>> lastReaders;

    void
    noteRead(mem::Addr addr, sim::TaskId task)
    {
        auto &readers = lastReaders[addr];
        if (readers.size() < 8)
            readers.push_back(task);
        else
            readers.back() = task;
    }

    void
    noteWrite(mem::Addr addr, sim::TaskId task)
    {
        lastWriter[addr] = task;
        lastReaders[addr].clear();
    }
};

/** One candidate synchronisation arc. */
struct OrderArc
{
    sim::TaskId from;
    sim::TaskId to;
};

/**
 * Small FIFO model of each default node's L1: the compiler's estimate
 * of which lines the baseline placement would find locally. Used to
 * price the baseline cost of every statement (Figure 12 counts the
 * default's L1 hits exactly like this) and to decide whether splitting
 * a statement is profitable at all.
 */
class DefaultL1Model
{
  public:
    explicit DefaultL1Model(std::size_t capacity_lines)
        : capacity_(std::max<std::size_t>(1, capacity_lines))
    {}

    /** Would the default node's L1 hold @p line right now? */
    bool
    contains(noc::NodeId node, std::uint64_t line) const
    {
        const auto it = perNode_.find(node);
        return it != perNode_.end() &&
               it->second.entry.count(line) != 0;
    }

    /**
     * Record that @p line flowed through @p node's L1 (LRU: touching a
     * resident line refreshes it, so hot panel lines survive streams).
     * Only called for statements actually placed on their default
     * node: a split statement's operands land in the merge nodes' L1s
     * instead, so they must not be credited here. O(1): the compile
     * loop calls this iterations x statements x lines times, so a
     * recency scan here dominates whole-plan time.
     */
    void
    insert(noc::NodeId node, std::uint64_t line)
    {
        auto &l1 = perNode_[node];
        const auto it = l1.entry.find(line);
        if (it != l1.entry.end()) {
            // Refresh: move to the recent end, residency unchanged.
            l1.lru.splice(l1.lru.end(), l1.lru, it->second);
            return;
        }
        l1.lru.push_back(line);
        l1.entry.emplace(line, std::prev(l1.lru.end()));
        if (l1.lru.size() > capacity_) {
            l1.entry.erase(l1.lru.front());
            l1.lru.pop_front();
        }
    }

  private:
    struct NodeL1
    {
        /** Resident lines -> position in the recency list. */
        std::unordered_map<std::uint64_t,
                           std::list<std::uint64_t>::iterator>
            entry;
        std::list<std::uint64_t> lru; // oldest first
    };
    std::size_t capacity_;
    std::unordered_map<noc::NodeId, NodeL1> perNode_;
};

} // namespace

sim::ExecutionPlan
Partitioner::planWithWindow(const ir::LoopNest &nest,
                            const std::vector<noc::NodeId> &default_nodes,
                            std::int32_t window_size,
                            PartitionReport &report) const
{
    const noc::MeshTopology &mesh = system_->mesh();
    const mem::AddressMap &amap = system_->addressMap();
    const ir::ArrayTable &arrays = *arrays_;

    report.chosenWindowSize = window_size;

    // Planning provenance for the static verifier (DESIGN.md §9):
    // recorded per window-size candidate; plan() keeps the winner's
    // report, and with it the winner's provenance.
    std::shared_ptr<verify::PlanProvenance> prov;
    if (options_.verifyLevel != verify::VerifyLevel::Off) {
        prov = std::make_shared<verify::PlanProvenance>();
        prov->level = options_.verifyLevel;
        prov->windowSize = window_size;
        prov->faultEpoch = system_->mesh().faults().signature();
        prov->exploitReuse = options_.exploitReuse;
        prov->loadBalanced = options_.loadBalance;
        prov->loadBalanceThreshold = options_.loadBalanceThreshold;
        prov->oracle = options_.oracle;
    }

    // Compile-loop accounting. Timer slots are null unless requested,
    // and a null ScopedPhaseTimer never reads the clock.
    CompileStats &cstats = report.compile;
    const bool timed = options_.collectCompileTimers;
    std::int64_t *const t_resolve = timed ? &cstats.resolveNs : nullptr;
    std::int64_t *const t_locate = timed ? &cstats.locateNs : nullptr;
    std::int64_t *const t_split = timed ? &cstats.splitNs : nullptr;
    std::int64_t *const t_sync = timed ? &cstats.syncNs : nullptr;
    ScopedPhaseTimer total_timer(timed ? &cstats.totalNs : nullptr);

    const std::int64_t line_flits = system_->config().lineFlits();
    LoadBalancer balancer(mesh.nodeCount(),
                          options_.loadBalanceThreshold);
    // Dead tiles leave the balancing pool; every other planner input
    // is already live (default nodes come from the placement's live
    // pool, store/operand homes from the re-homed AddressMap), so this
    // closes the last path by which a split could land on a dead node.
    if (mesh.hasFaults()) {
        for (noc::NodeId dead : mesh.faults().deadNodes())
            balancer.markUnavailable(dead);
    }
    StatementSplitter splitter(mesh, line_flits, /*result_weight=*/1);
    DataLocator locator(*system_, options_.oracle);
    DefaultL1Model default_l1(
        static_cast<std::size_t>(system_->config().l1Bytes /
                                 mem::kLineSize));

    // Nested sets are per *static* statement; build them once.
    std::vector<ir::VarSet> static_sets;
    static_sets.reserve(nest.body().size());
    for (const ir::Statement &stmt : nest.body())
        static_sets.push_back(ir::buildVarSets(stmt));

    // The executor may treat indirect subscripts as resolved only
    // when the nest's inspector phase can actually run (Section 4.5)
    // — or under the ideal-data-analysis oracle.
    const bool inspector_resolved =
        Inspector::canResolve(nest, arrays) || options_.oracle;

    std::size_t reuse_capacity = options_.reuseCapacityLines;
    if (reuse_capacity == 0) {
        // Trust a quarter of the L1 to survive a window un-evicted.
        reuse_capacity = static_cast<std::size_t>(
            system_->config().l1Bytes / mem::kLineSize / 4);
    }
    if (prov)
        prov->reuseCapacityLines = reuse_capacity;

    sim::ExecutionPlan plan;
    plan.name = nest.name();
    plan.windowSize = window_size;

    DepTracker deps;

    const std::int64_t iterations = nest.iterationCount();
    const auto stmt_count =
        static_cast<std::int64_t>(nest.body().size());
    const std::int64_t total_instances = iterations * stmt_count;

    // The baseline is measured in steady state (the outer timing loop
    // warms the caches), and the profile run tells the compiler so:
    // pre-warm the default-L1 model with one full pass so baseline
    // costs are estimated against steady-state residency, not a cold
    // machine.
    if (iterations > 0) {
        // An iteration-invariant statement touches the same lines at
        // every iteration: resolve it once up front instead of
        // re-resolving per iteration just to recover line numbers.
        // Varying statements reuse one resolved-ref buffer.
        struct WarmStmt
        {
            const ir::Statement *stmt = nullptr;
            bool invariant = false;
            /** Read lines then the write line, resolved once. */
            std::vector<std::uint64_t> lines;
        };
        std::vector<WarmStmt> warm_stmts;
        warm_stmts.reserve(nest.body().size());
        std::vector<ir::ResolvedRef> warm_reads;
        {
            ir::StatementInstance probe;
            probe.iter = nest.iterationAt(0);
            probe.iterationNumber = 0;
            for (const ir::Statement &stmt : nest.body()) {
                WarmStmt ws;
                ws.stmt = &stmt;
                ws.invariant = ir::refsIterationInvariant(stmt);
                if (ws.invariant) {
                    probe.stmt = &stmt;
                    ir::resolveReadsInto(probe, arrays, warm_reads);
                    ws.lines.reserve(warm_reads.size() + 1);
                    for (const ir::ResolvedRef &r : warm_reads)
                        ws.lines.push_back(mem::lineNumber(r.addr));
                    ws.lines.push_back(mem::lineNumber(
                        resolveWrite(probe, arrays).addr));
                }
                warm_stmts.push_back(std::move(ws));
            }
        }
        ir::StatementInstance warm;
        for (std::int64_t k = 0; k < iterations; ++k) {
            const noc::NodeId node =
                default_nodes[static_cast<std::size_t>(k)];
            warm.iter = nest.iterationAt(k);
            warm.iterationNumber = k;
            for (const WarmStmt &ws : warm_stmts) {
                if (ws.invariant) {
                    for (std::uint64_t line : ws.lines)
                        default_l1.insert(node, line);
                    continue;
                }
                warm.stmt = ws.stmt;
                ir::resolveReadsInto(warm, arrays, warm_reads);
                for (const ir::ResolvedRef &r : warm_reads)
                    default_l1.insert(node, mem::lineNumber(r.addr));
                default_l1.insert(
                    node,
                    mem::lineNumber(resolveWrite(warm, arrays).addr));
            }
        }
    }


    // Buffers reused across every instance of the stream: resolution,
    // location, and emission run iterations x statements times, so
    // per-instance allocations are pure overhead.
    std::vector<ir::ResolvedRef> reads;
    std::vector<Location> locations;
    std::vector<std::uint64_t> fetched_lines;
    std::vector<sim::TaskId> task_of_sub;

    std::int64_t stream_pos = 0;
    while (stream_pos < total_instances) {
        const std::int64_t window_end = std::min(
            stream_pos + window_size, total_instances);

        VariableToNodeMap varmap(reuse_capacity);

        const std::size_t window_task_begin = plan.tasks.size();
        std::vector<OrderArc> order_arcs; // reducible (pure ordering)
        std::vector<OrderArc> data_arcs;  // value-carrying (fixed)

        for (std::int64_t pos = stream_pos; pos < window_end; ++pos) {
            const std::int64_t iter_num = pos / stmt_count;
            const auto stmt_idx =
                static_cast<std::int32_t>(pos % stmt_count);
            const ir::Statement &stmt =
                nest.body()[static_cast<std::size_t>(stmt_idx)];

            ir::StatementInstance inst;
            inst.stmt = &stmt;
            inst.iter = nest.iterationAt(iter_num);
            inst.iterationNumber = iter_num;

            const noc::NodeId default_node =
                default_nodes[static_cast<std::size_t>(iter_num)];
            cstats.instancesPlanned += 1;
            ir::ResolvedRef write;
            {
                ScopedPhaseTimer t(t_resolve);
                write = resolveWrite(inst, arrays);
                ir::resolveReadsInto(inst, arrays, reads);
            }

            bool analyzable = write.analyzable;
            for (const ir::ResolvedRef &r : reads)
                analyzable = analyzable && r.analyzable;
            const bool can_split = analyzable || inspector_resolved;

            sim::InstanceStats istats;
            istats.statementIndex = stmt_idx;
            istats.iterationNumber = iter_num;

            // Baseline data movement for this instance: a line costs
            // its home distance only when the default node's L1 would
            // not already hold it (Figure 12 prices the default's
            // spatial/temporal L1 hits exactly this way); the result
            // travels to its store (home) node.
            const noc::NodeId store_node = amap.homeBankNode(write.addr);
            std::int64_t default_movement = 0;
            fetched_lines.clear();
            for (const ir::ResolvedRef &r : reads) {
                const std::uint64_t line = mem::lineNumber(r.addr);
                const bool seen =
                    default_l1.contains(default_node, line) ||
                    std::find(fetched_lines.begin(), fetched_lines.end(),
                              line) != fetched_lines.end();
                if (!seen) {
                    fetched_lines.push_back(line);
                    default_movement +=
                        line_flits *
                        mesh.distance(default_node,
                                      locator.locateHome(r.addr).node);
                }
            }
            // Equation 1 weights movement by data size: a fetched line
            // is lineFlits wide; the posted default write moves one
            // element to its home (the root subcomputation writes
            // locally, so the split side charges nothing here).
            const std::int64_t write_flits = std::max<std::int64_t>(
                1, write.size / system_->config().flitBytes);
            default_movement +=
                write_flits * mesh.distance(default_node, store_node);
            istats.defaultDataMovement = default_movement;

            // Emit the statement whole on its default node: used when
            // the compiler cannot analyse it, and when splitting would
            // not reduce data movement (the profitability guard).
            auto emit_unsplit = [&]() {
                sim::Task task;
                task.id = static_cast<sim::TaskId>(plan.tasks.size());
                task.node = default_node;
                for (const ir::ResolvedRef &r : reads)
                    task.reads.push_back({r.addr, r.size, r.array});
                task.write =
                    sim::MemAccess{write.addr, write.size, write.array};
                task.computeCost = stmt.totalOpCost();
                task.statementIndex = stmt_idx;
                task.iterationNumber = iter_num;
                // Like the baseline, the unsplit statement relies on
                // the program's own ordering: only real (resolved)
                // address conflicts serialise it.
                auto add_dep = [&task](sim::TaskId from) {
                    if (from != task.id &&
                        std::find(task.deps.begin(), task.deps.end(),
                                  from) == task.deps.end())
                        task.deps.push_back(from);
                };
                for (const ir::ResolvedRef &r : reads) {
                    const auto writer = deps.lastWriter.find(r.addr);
                    if (writer != deps.lastWriter.end())
                        add_dep(writer->second);
                }
                {
                    const auto writer = deps.lastWriter.find(write.addr);
                    if (writer != deps.lastWriter.end())
                        add_dep(writer->second);
                    const auto readers =
                        deps.lastReaders.find(write.addr);
                    if (readers != deps.lastReaders.end()) {
                        for (sim::TaskId r : readers->second)
                            add_dep(r);
                    }
                }
                for (const ir::ResolvedRef &r : reads)
                    deps.noteRead(r.addr, task.id);
                deps.noteWrite(write.addr, task.id);
                balancer.add(default_node, task.computeCost);
                if (options_.exploitReuse) {
                    for (const ir::ResolvedRef &r : reads)
                        varmap.add(r.addr, default_node);
                    varmap.add(write.addr, default_node);
                }
                plan.tasks.push_back(std::move(task));

                // These lines really do pass through the default
                // node's L1 now.
                for (const ir::ResolvedRef &r : reads)
                    default_l1.insert(default_node,
                                      mem::lineNumber(r.addr));
                default_l1.insert(default_node,
                                  mem::lineNumber(write.addr));

                istats.dataMovement = default_movement;
                istats.degreeOfParallelism = 1;
                plan.instances.push_back(istats);
                report.statementsKeptDefault += 1;
                report.plannedMovement += istats.dataMovement;
                report.defaultMovement += default_movement;

                if (prov) {
                    verify::SplitRecord r;
                    r.statementIndex = stmt_idx;
                    r.iterationNumber = iter_num;
                    r.wasSplit = false;
                    r.defaultNode = default_node;
                    r.storeNode = store_node;
                    r.claimedMovement = default_movement;
                    r.defaultMovement = default_movement;
                    r.firstTask = static_cast<sim::TaskId>(
                                      plan.tasks.size()) -
                                  1;
                    r.taskCount = 1;
                    r.rootTask = r.firstTask;
                    prov->instances.push_back(std::move(r));
                }
            };

            if (!can_split) {
                emit_unsplit();
                continue;
            }

            // ---- Locate operands (GetNode) and split along the MST.
            locations.clear();
            static const VariableToNodeMap kNoReuse;
            const VariableToNodeMap &lookup =
                options_.exploitReuse ? varmap : kNoReuse;
            {
                ScopedPhaseTimer t(t_locate);
                for (const ir::ResolvedRef &r : reads)
                    locations.push_back(
                        locator.locate(r.addr, lookup, store_node));
            }
            // Guard reads (duplicated conditionals, Section 4.5) locate
            // like RHS reads; buildVarSets covers RHS leaves only, so
            // guard operands are fetched by the root subcomputation.
            const ir::VarSet &sets =
                static_sets[static_cast<std::size_t>(stmt_idx)];

            // Without a balancer the split is a pure function of
            // (sets, locations, store_node): memoize it by signature.
            // The balancer mutates per-call trial state, so
            // load-balanced splits always recompute (and skip the
            // O(nodes) trial copy entirely when balancing is off).
            cstats.splitsRequested += 1;
            std::optional<LoadBalancer> trial;
            SplitResult computed;
            const SplitResult *split = nullptr;
            bool from_cache = false;
            {
                ScopedPhaseTimer t(t_split);
                if (options_.loadBalance) {
                    cstats.cacheBypassed += 1;
                    trial = balancer;
                    computed = splitter.split(sets, locations,
                                              store_node, &*trial);
                    split = &computed;
                } else if (options_.memoizeSplits) {
                    split = splitCache_.lookup(stmt_idx, store_node,
                                               locations);
                    if (split != nullptr) {
                        cstats.plansMemoized += 1;
                        from_cache = true;
                    } else {
                        cstats.plansComputed += 1;
                        split = &splitCache_.insert(splitter.split(
                            sets, locations, store_node, nullptr));
                    }
                } else {
                    cstats.plansComputed += 1;
                    computed = splitter.split(sets, locations,
                                              store_node, nullptr);
                    split = &computed;
                }
            }

            // Profitability guard (compiler cost model): the stall
            // cycles the movement saving buys must outweigh the
            // task-issue and synchronisation overhead the split adds.
            const double benefit =
                options_.latencyPerFlitHop *
                static_cast<double>(default_movement -
                                    split->plannedMovement);
            const double overhead =
                options_.overheadSafetyFactor *
                options_.profileUtilization *
                (static_cast<double>(split->subs.size()) *
                     static_cast<double>(
                         system_->config().perTaskOverheadCycles) +
                 static_cast<double>(split->crossNodeEdges) *
                     static_cast<double>(
                         system_->config().syncOverheadCycles));
            if (split->plannedMovement >= default_movement ||
                (options_.overheadSafetyFactor > 0.0 &&
                 benefit <= overhead)) {
                emit_unsplit();
                continue;
            }
            if (trial)
                balancer = std::move(*trial); // commit the trial loads

            // ---- Emit the subcomputation tasks (children first).
            task_of_sub.assign(split->subs.size(), sim::kInvalidTask);
            for (std::size_t s = 0; s < split->subs.size(); ++s) {
                const Subcomputation &sub = split->subs[s];
                sim::Task task;
                task.id = static_cast<sim::TaskId>(plan.tasks.size());
                task.node = sub.node;
                task.computeCost = sub.opCost;
                task.ops = sub.ops;
                task.statementIndex = stmt_idx;
                task.iterationNumber = iter_num;
                task.isSubcomputation = sub.node != default_node;
                for (int leaf : sub.leaves) {
                    const ir::ResolvedRef &r =
                        reads[static_cast<std::size_t>(leaf)];
                    task.reads.push_back({r.addr, r.size, r.array});
                }
                for (int child : sub.children) {
                    const sim::TaskId child_task =
                        task_of_sub[static_cast<std::size_t>(child)];
                    NDP_CHECK(child_task != sim::kInvalidTask,
                              "child emitted after parent");
                    task.deps.push_back(child_task);
                    data_arcs.push_back({child_task, task.id});
                }
                if (sub.isRoot) {
                    task.write = sim::MemAccess{write.addr, write.size,
                                                write.array};
                    // Guard operands evaluate with the root merge.
                    for (std::size_t g = stmt.rhsReadCount();
                         g < reads.size(); ++g) {
                        const ir::ResolvedRef &r = reads[g];
                        task.reads.push_back({r.addr, r.size, r.array});
                    }
                }
                if (task.isSubcomputation) {
                    for (ir::OpKind op : sub.ops) {
                        report.offloadedOps[static_cast<int>(
                            ir::opCategory(op))] += 1;
                    }
                    ++report.offloadedSubcomputations;
                }
                task_of_sub[s] = task.id;
                plan.tasks.push_back(std::move(task));
            }
            const sim::TaskId root_task =
                task_of_sub[static_cast<std::size_t>(split->root)];

            // ---- Inter-statement dependences -> ordering arcs.
            for (std::size_t s = 0; s < split->subs.size(); ++s) {
                const Subcomputation &sub = split->subs[s];
                const sim::TaskId tid = task_of_sub[s];
                for (int leaf : sub.leaves) {
                    const mem::Addr addr =
                        reads[static_cast<std::size_t>(leaf)].addr;
                    const auto writer = deps.lastWriter.find(addr);
                    if (writer != deps.lastWriter.end())
                        order_arcs.push_back({writer->second, tid});
                    deps.noteRead(addr, tid);
                }
            }
            {
                const auto writer = deps.lastWriter.find(write.addr);
                if (writer != deps.lastWriter.end())
                    order_arcs.push_back({writer->second, root_task});
                const auto readers = deps.lastReaders.find(write.addr);
                if (readers != deps.lastReaders.end()) {
                    for (sim::TaskId r : readers->second) {
                        if (r != root_task)
                            order_arcs.push_back({r, root_task});
                    }
                }
                deps.noteWrite(write.addr, root_task);
            }

            // ---- Record planned L1 copies for later statements.
            if (options_.exploitReuse) {
                for (std::size_t s = 0; s < split->subs.size(); ++s) {
                    const Subcomputation &sub = split->subs[s];
                    for (int leaf : sub.leaves) {
                        varmap.add(
                            reads[static_cast<std::size_t>(leaf)].addr,
                            sub.node);
                    }
                }
                varmap.add(write.addr, store_node);
            }

            istats.dataMovement = split->plannedMovement;
            istats.degreeOfParallelism = split->degreeOfParallelism;
            istats.rawSynchronizations = split->crossNodeEdges;
            plan.instances.push_back(istats);
            report.statementsSplit += 1;
            report.plannedMovement += split->plannedMovement;
            report.defaultMovement += default_movement;

            if (prov) {
                verify::SplitRecord r;
                r.statementIndex = stmt_idx;
                r.iterationNumber = iter_num;
                r.wasSplit = true;
                r.fromCache = from_cache;
                r.defaultNode = default_node;
                r.storeNode = store_node;
                r.claimedMovement = split->plannedMovement;
                r.defaultMovement = default_movement;
                r.firstTask = task_of_sub.front();
                r.taskCount =
                    static_cast<std::int32_t>(split->subs.size());
                r.rootTask = root_task;
                r.locations = locations;
                r.split = *split;
                prov->instances.push_back(std::move(r));
            }
        }

        // ---- Synchronisation minimisation over this window. ----
        // Value-carrying (tree) arcs always survive; an ordering arc
        // that a chain of other arcs already implies is dropped
        // (transitive-closure minimisation, Section 4.5).
        {
            ScopedPhaseTimer t(t_sync);
            SyncGraph graph;
            const std::size_t n_tasks =
                plan.tasks.size() - window_task_begin;
            for (std::size_t i = 0; i < n_tasks; ++i)
                graph.addNode();
            auto local = [&](sim::TaskId t) {
                return static_cast<int>(
                    static_cast<std::size_t>(t) - window_task_begin);
            };
            auto in_window = [&](sim::TaskId t) {
                return static_cast<std::size_t>(t) >= window_task_begin;
            };
            auto apply_dep = [&](sim::TaskId from, sim::TaskId to) {
                auto &t = plan.tasks[static_cast<std::size_t>(to)];
                if (std::find(t.deps.begin(), t.deps.end(), from) ==
                    t.deps.end())
                    t.deps.push_back(from);
            };

            for (const OrderArc &arc : data_arcs) {
                if (in_window(arc.from))
                    graph.addArc(local(arc.from), local(arc.to));
            }
            std::vector<OrderArc> in_window_order;
            for (const OrderArc &arc : order_arcs) {
                if (arc.from == arc.to)
                    continue;
                if (!in_window(arc.from)) {
                    apply_dep(arc.from, arc.to); // window-crossing
                    continue;
                }
                graph.addArc(local(arc.from), local(arc.to));
                in_window_order.push_back(arc);
            }

            // Per-instance counts of ordering arcs pruned (raw - final).
            std::unordered_map<std::int64_t, std::int32_t> pruned;
            for (const OrderArc &arc : in_window_order) {
                const sim::Task &from_task =
                    plan.tasks[static_cast<std::size_t>(arc.from)];
                const sim::Task &to_task =
                    plan.tasks[static_cast<std::size_t>(arc.to)];
                bool keep = true;
                if (options_.minimizeSyncs &&
                    graph.impliedByOthers(local(arc.from),
                                          local(arc.to))) {
                    keep = false;
                    graph.removeArc(local(arc.from), local(arc.to));
                }
                if (keep) {
                    apply_dep(arc.from, arc.to);
                } else if (from_task.node != to_task.node) {
                    const std::int64_t key =
                        to_task.iterationNumber * stmt_count +
                        to_task.statementIndex;
                    pruned[key] += 1;
                }
            }

            // Final synchronisations = cross-node dependences of every
            // task, attributed to the consuming instance (Figure 15);
            // raw adds back what the reduction pruned.
            std::unordered_map<std::int64_t, std::int32_t> final_syncs;
            for (std::size_t t = window_task_begin;
                 t < plan.tasks.size(); ++t) {
                const sim::Task &task = plan.tasks[t];
                std::int32_t cross = 0;
                for (sim::TaskId d : task.deps) {
                    if (plan.tasks[static_cast<std::size_t>(d)].node !=
                        task.node)
                        ++cross;
                }
                final_syncs[task.iterationNumber * stmt_count +
                            task.statementIndex] += cross;
            }
            const std::size_t inst_begin =
                plan.instances.size() -
                static_cast<std::size_t>(window_end - stream_pos);
            for (std::size_t i = inst_begin; i < plan.instances.size();
                 ++i) {
                sim::InstanceStats &istats = plan.instances[i];
                const std::int64_t key =
                    istats.iterationNumber * stmt_count +
                    istats.statementIndex;
                const auto fit = final_syncs.find(key);
                istats.synchronizations =
                    fit == final_syncs.end() ? 0 : fit->second;
                const auto pit = pruned.find(key);
                istats.rawSynchronizations =
                    istats.synchronizations +
                    (pit == pruned.end() ? 0 : pit->second);
            }
        }

        // Fold this window's reuse-map history into the nest digest
        // (boost-style combine: window order matters, by design).
        report.reuseMapHash ^= varmap.insertionHash() +
                               0x9e3779b97f4a7c15ull +
                               (report.reuseMapHash << 6) +
                               (report.reuseMapHash >> 2);
        // insertionCount() is cumulative over the whole plan, so the
        // latest window's value is the running total.
        report.reuseCopiesPlanned = varmap.insertionCount();

        stream_pos = window_end;
    }

    report.provenance = prov;

    // ---- Fill the report's per-instance accumulators. ----
    for (const sim::InstanceStats &istats : plan.instances) {
        report.movementReductionPct.add(percentReduction(
            static_cast<double>(istats.defaultDataMovement),
            static_cast<double>(istats.dataMovement)));
        report.degreeOfParallelism.add(
            static_cast<double>(istats.degreeOfParallelism));
        report.syncsPerStatement.add(
            static_cast<double>(istats.synchronizations));
        report.rawSyncsPerStatement.add(
            static_cast<double>(istats.rawSynchronizations));
    }
    return plan;
}

} // namespace ndp::partition
