#ifndef NDP_PARTITION_SYNC_GRAPH_H
#define NDP_PARTITION_SYNC_GRAPH_H

/**
 * @file
 * Synchronisation graph and transitive-closure-based minimisation
 * (Section 4.5, after Midkiff & Padua [51]): nodes are subcomputation
 * instances; an arc means "the target must wait for the source". An
 * arc a->b is redundant when some other path already forces the order;
 * the reduction drops exactly those arcs.
 */

#include <cstdint>
#include <vector>

namespace ndp::partition {

class SyncGraph
{
  public:
    /** Add a node; returns its id (dense, starting at 0). */
    int addNode();

    /** Add the synchronisation arc @p from -> @p to (deduplicated). */
    void addArc(int from, int to);

    std::size_t nodeCount() const { return adj_.size(); }
    std::size_t arcCount() const;

    /** Is there a directed path from @p from to @p to? */
    bool reachable(int from, int to) const;

    /**
     * Is @p from -> @p to implied by the rest of the graph, i.e.
     * reachable without using the direct arc itself?
     */
    bool impliedByOthers(int from, int to) const;

    /** Remove the arc @p from -> @p to if present. */
    void removeArc(int from, int to);

    /**
     * Drop every arc implied by a longer path.
     * @return the number of arcs removed.
     */
    std::size_t transitiveReduce();

    /** Outgoing arcs of @p node. */
    const std::vector<int> &successors(int node) const;

  private:
    bool reachableAvoiding(int from, int to, int skip_from,
                           int skip_to) const;

    std::vector<std::vector<int>> adj_;
};

} // namespace ndp::partition

#endif // NDP_PARTITION_SYNC_GRAPH_H
