#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.h"

namespace ndp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    NDP_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    NDP_REQUIRE(!rows_.empty(), "cell() before row()");
    NDP_REQUIRE(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(const char *text)
{
    return cell(std::string(text));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c];
            if (c + 1 < cells.size())
                oss << "  ";
        }
        oss << '\n';
    };

    emit_row(headers_);
    std::vector<std::string> rule;
    rule.reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule.push_back(std::string(widths[c], '-'));
    emit_row(rule);
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    os << toString();
}

} // namespace ndp
