#ifndef NDP_SUPPORT_TABLE_H
#define NDP_SUPPORT_TABLE_H

/**
 * @file
 * Fixed-width ASCII table printer used by every benchmark harness so the
 * reproduced tables/figures print in a uniform, diff-friendly format.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace ndp {

/**
 * A simple column-aligned table. Cells are strings; numeric helpers
 * format with a fixed precision. Rendered with a header rule, e.g.:
 *
 *   app        avg%    max%
 *   ---------  ------  ------
 *   barnes     52.10   78.00
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    Table &cell(const std::string &text);
    Table &cell(const char *text);
    Table &cell(double value, int precision = 2);
    Table &cell(long long value);
    Table &cell(long value) { return cell(static_cast<long long>(value)); }
    Table &cell(int value) { return cell(static_cast<long long>(value)); }
    Table &cell(unsigned long value)
    {
        return cell(static_cast<long long>(value));
    }

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render to a string (trailing newline included). */
    std::string toString() const;

    /** Render to a stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ndp

#endif // NDP_SUPPORT_TABLE_H
