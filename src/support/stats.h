#ifndef NDP_SUPPORT_STATS_H
#define NDP_SUPPORT_STATS_H

/**
 * @file
 * Small statistics helpers shared by the simulator counters and by the
 * benchmark harnesses (geometric means over applications, per-statement
 * averages/maxima, percentage reductions).
 */

#include <cstddef>
#include <span>
#include <vector>

namespace ndp {

/**
 * Streaming accumulator for count / sum / min / max / mean.
 * Values are doubles; integral counters can feed it directly.
 */
class Accumulator
{
  public:
    void add(double v);
    void merge(const Accumulator &other);
    void reset();

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Geometric mean of a set of strictly positive values. Values <= 0 are
 * clamped to @p floor (the paper reports geomeans over percentage
 * improvements, which can legitimately be tiny but never negative once
 * expressed as ratios).
 */
double geometricMean(std::span<const double> values, double floor = 1e-9);

/** Arithmetic mean; returns 0 for an empty span. */
double arithmeticMean(std::span<const double> values);

/**
 * Percentage reduction of @p optimized relative to @p baseline:
 * 100 * (baseline - optimized) / baseline. Returns 0 when baseline == 0.
 */
double percentReduction(double baseline, double optimized);

/** Ratio optimized/baseline guarded against division by zero. */
double safeRatio(double numerator, double denominator);

} // namespace ndp

#endif // NDP_SUPPORT_STATS_H
