#ifndef NDP_SUPPORT_DISJOINT_SET_H
#define NDP_SUPPORT_DISJOINT_SET_H

/**
 * @file
 * Union-find (disjoint-set forest) with path compression and union by
 * rank. Used by Kruskal's algorithm in the MST builder (Algorithm 1,
 * lines 22-29 of the paper) and by the dependence-component analysis.
 */

#include <cstddef>
#include <numeric>
#include <vector>

#include "support/error.h"

namespace ndp {

/**
 * Disjoint-set forest over the integers [0, size).
 *
 * Amortised near-O(1) find/unite. The structure can be grown with
 * addElement(); elements are never removed.
 */
class DisjointSet
{
  public:
    DisjointSet() = default;

    /** Create @p size singleton sets, labelled 0 .. size-1. */
    explicit DisjointSet(std::size_t size)
        : parent_(size), rank_(size, 0)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    /** Number of elements (not sets). */
    std::size_t size() const { return parent_.size(); }

    /** Number of disjoint sets currently alive. */
    std::size_t
    setCount() const
    {
        std::size_t count = 0;
        for (std::size_t i = 0; i < parent_.size(); ++i) {
            if (parent_[i] == i)
                ++count;
        }
        return count;
    }

    /** Append one new singleton set; returns its label. */
    std::size_t
    addElement()
    {
        parent_.push_back(parent_.size());
        rank_.push_back(0);
        return parent_.size() - 1;
    }

    /** Representative of the set containing @p x (with path compression). */
    std::size_t
    find(std::size_t x)
    {
        NDP_CHECK(x < parent_.size(), "find() out of range: " << x);
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]]; // halve the path
            x = parent_[x];
        }
        return x;
    }

    /**
     * Merge the sets containing @p a and @p b.
     * @return true if a merge happened, false if already in the same set.
     */
    bool
    unite(std::size_t a, std::size_t b)
    {
        std::size_t ra = find(a);
        std::size_t rb = find(b);
        if (ra == rb)
            return false;
        if (rank_[ra] < rank_[rb])
            std::swap(ra, rb);
        parent_[rb] = ra;
        if (rank_[ra] == rank_[rb])
            ++rank_[ra];
        return true;
    }

    /** Whether @p a and @p b are currently in the same set. */
    bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  private:
    std::vector<std::size_t> parent_;
    std::vector<unsigned> rank_;
};

} // namespace ndp

#endif // NDP_SUPPORT_DISJOINT_SET_H
