#ifndef NDP_SUPPORT_ERROR_H
#define NDP_SUPPORT_ERROR_H

/**
 * @file
 * Error-reporting helpers, modelled after gem5's panic()/fatal() split:
 * NDP_CHECK / ndp::panic flag internal invariant violations (library bugs),
 * ndp::fatal flags misuse by the caller (bad configuration, bad input).
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ndp {

/** Thrown on user-level errors (bad configuration, malformed input). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown on internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Report an unrecoverable user error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Report an internal bug. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace ndp

/** Internal invariant check; always enabled (cheap conditions only). */
#define NDP_CHECK(cond, msg)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream ndp_check_oss_;                             \
            ndp_check_oss_ << "NDP_CHECK failed at " << __FILE__ << ":"    \
                           << __LINE__ << ": " #cond " — " << msg;         \
            ::ndp::panic(ndp_check_oss_.str());                            \
        }                                                                  \
    } while (0)

/**
 * Debug-only invariant check for hot paths: compiles to nothing when
 * NDEBUG is defined (Release/RelWithDebInfo), so a bounds check on a
 * per-access function costs zero in optimized builds while the Debug
 * and sanitizer CI jobs still exercise it. Keep NDP_CHECK everywhere
 * off the hot path.
 */
#ifdef NDEBUG
#define NDP_DCHECK(cond, msg)                                              \
    do {                                                                   \
    } while (0)
#else
#define NDP_DCHECK(cond, msg) NDP_CHECK(cond, msg)
#endif

/** User-input validation check. */
#define NDP_REQUIRE(cond, msg)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream ndp_req_oss_;                               \
            ndp_req_oss_ << msg;                                           \
            ::ndp::fatal(ndp_req_oss_.str());                              \
        }                                                                  \
    } while (0)

#endif // NDP_SUPPORT_ERROR_H
