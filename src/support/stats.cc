#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace ndp {

void
Accumulator::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Accumulator::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
geometricMean(std::span<const double> values, double floor)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(std::max(v, floor));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
percentReduction(double baseline, double optimized)
{
    if (baseline == 0.0)
        return 0.0;
    return 100.0 * (baseline - optimized) / baseline;
}

double
safeRatio(double numerator, double denominator)
{
    return denominator == 0.0 ? 0.0 : numerator / denominator;
}

} // namespace ndp
