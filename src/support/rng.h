#ifndef NDP_SUPPORT_RNG_H
#define NDP_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic choices
 * in the library (tie-breaking among equal-weight MST edges, workload
 * synthesis, predictor training traces) flow through Rng so a fixed seed
 * reproduces every experiment bit-for-bit.
 */

#include <cstdint>

#include "support/error.h"

namespace ndp {

/**
 * SplitMix64-seeded xorshift128+ generator.
 *
 * Chosen over std::mt19937 because its state is tiny, its output is
 * identical across standard library implementations, and experiments must
 * be reproducible across toolchains.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        s0_ = splitMix(seed);
        s1_ = splitMix(seed);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        NDP_CHECK(bound > 0, "nextBelow(0)");
        // Debiased via rejection on the top of the range.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        NDP_CHECK(lo <= hi, "nextInRange: lo > hi");
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(nextBelow(span));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    static std::uint64_t
    splitMix(std::uint64_t &state)
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace ndp

#endif // NDP_SUPPORT_RNG_H
