#include "support/thread_pool.h"

#include <algorithm>

namespace ndp::support {

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t n = std::max<std::size_t>(1, threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this]() { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                // stop_ set and queue drained: exit. (stop_ with a
                // non-empty queue keeps draining so every submitted
                // future is eventually satisfied.)
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace ndp::support
