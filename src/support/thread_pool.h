#ifndef NDP_SUPPORT_THREAD_POOL_H
#define NDP_SUPPORT_THREAD_POOL_H

/**
 * @file
 * Fixed-size, futures-based worker pool for embarrassingly-parallel
 * experiment sweeps. Deliberately minimal: one FIFO queue, no work
 * stealing, no priorities. Determinism is the caller's contract — a
 * submitted task must not touch shared mutable state — and the pool's
 * contribution is that submit() returns a std::future, so callers
 * collect results in *submission* order no matter which worker ran
 * which task or in what order tasks finished.
 *
 * Nested submission is supported through helping: a task that submits
 * sub-tasks to its own pool must not block in future::get() (with a
 * FIFO pool and no work stealing every worker could end up waiting on
 * work that no thread is left to run). waitHelping() instead drains
 * queued tasks on the waiting thread until the future is ready, which
 * makes one pool safe to share between the sweep level (one task per
 * (app, config) cell) and the nest level inside each cell.
 */

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ndp::support {

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 and 1 both run a single worker
     *        (tasks still execute off the submitting thread, so the
     *        1-thread pool exercises the same code path the N-thread
     *        pool does — important for the determinism tests).
     */
    explicit ThreadPool(std::size_t threads);

    /** Joins all workers; queued tasks run to completion first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Enqueue @p fn and return a future for its result. Exceptions
     * thrown by the task surface from future::get() on the collector
     * thread.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * Run one queued task on the calling thread, if any is pending.
     * @return true when a task was executed.
     */
    bool tryRunOne();

    /**
     * Block until @p future is ready, executing queued pool tasks on
     * this thread while waiting. Required (instead of future::get())
     * whenever the waiter itself runs on a pool worker — see the file
     * comment on nested submission.
     */
    template <typename T>
    void
    waitHelping(const std::future<T> &future)
    {
        using namespace std::chrono_literals;
        while (future.wait_for(0s) != std::future_status::ready) {
            if (!tryRunOne()) {
                // Nothing queued: the task is in flight on another
                // worker; a bounded wait avoids spinning while staying
                // responsive to new nested submissions.
                future.wait_for(100us);
            }
        }
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace ndp::support

#endif // NDP_SUPPORT_THREAD_POOL_H
