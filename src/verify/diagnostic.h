#ifndef NDP_VERIFY_DIAGNOSTIC_H
#define NDP_VERIFY_DIAGNOSTIC_H

/**
 * @file
 * Structured diagnostics of the static plan verifier. Every finding
 * carries a stable rule id ("R1.edge-weight", "R5.task-on-dead", ...),
 * a severity, and the (statement, iteration, task, node) location it
 * anchors to, so mutation tests can assert the exact rule that fired
 * and CI can machine-read the JSON rendering.
 *
 * Rule families (see DESIGN.md §9 for the paper anchors):
 *   R1  MST well-formedness        (Section 3 / Algorithm 1)
 *   R2  Equation-1 cost consistency
 *   R3  schedule legality          (Section 4.3/4.5)
 *   R4  window/reuse coherence     (variable2node, Section 4.4)
 *   R5  fault legality             (PR 4's degraded machines)
 *   R6  split-plan cache replay identity
 */

#include <cstdint>
#include <string>
#include <vector>

#include "noc/coord.h"
#include "sim/plan.h"
#include "verify/verify_level.h"

namespace ndp::verify {

enum class Severity
{
    Note,
    Warning,
    Error,
};

const char *toString(Severity severity);

/** One finding of the verifier. */
struct Diagnostic
{
    /** Stable rule id, e.g. "R1.edge-weight". */
    std::string rule;
    Severity severity = Severity::Error;
    /** Static statement the finding anchors to (-1 = plan-wide). */
    std::int32_t statementIndex = -1;
    /** Iteration of that statement (-1 = plan-wide). */
    std::int64_t iterationNumber = -1;
    /** Offending task (kInvalidTask when not task-specific). */
    sim::TaskId task = sim::kInvalidTask;
    /** Offending mesh node (kInvalidNode when not node-specific). */
    noc::NodeId node = noc::kInvalidNode;
    /** One-line human explanation. */
    std::string message;
};

/**
 * Severity tallies of one or many verification reports. Carried up the
 * stack (PartitionReport -> AppResult -> SweepStats) so every summary
 * can say how many plans were proven clean.
 */
struct ReportCounts
{
    /** Statement instances whose records were checked. */
    std::int64_t plansVerified = 0;
    std::int64_t notes = 0;
    std::int64_t warnings = 0;
    std::int64_t errors = 0;

    bool
    clean() const
    {
        return notes == 0 && warnings == 0 && errors == 0;
    }

    std::int64_t
    total() const
    {
        return notes + warnings + errors;
    }

    void
    merge(const ReportCounts &other)
    {
        plansVerified += other.plansVerified;
        notes += other.notes;
        warnings += other.warnings;
        errors += other.errors;
    }
};

/** All diagnostics of one verified plan. */
class Report
{
  public:
    /** Stored diagnostics are capped; counts() stays exact. */
    static constexpr std::size_t kMaxStored = 200;

    std::string plan;
    VerifyLevel level = VerifyLevel::Off;

    void add(Diagnostic diag);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    const ReportCounts &counts() const { return counts_; }
    ReportCounts &counts() { return counts_; }

    bool clean() const { return counts_.clean(); }

    /** Fixed-width diagnostic table (empty string when clean). */
    std::string renderTable() const;

    /** Machine-readable JSON object (always non-empty). */
    std::string renderJson() const;

  private:
    std::vector<Diagnostic> diags_;
    ReportCounts counts_;
};

} // namespace ndp::verify

#endif // NDP_VERIFY_DIAGNOSTIC_H
