#include "verify/plan_verifier.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/instance.h"
#include "ir/nested_sets.h"
#include "mem/address.h"
#include "noc/mesh_topology.h"
#include "partition/data_locator.h"
#include "partition/load_balancer.h"
#include "partition/splitter.h"
#include "support/error.h"

namespace ndp::verify {

namespace {

using partition::Location;
using partition::LocationSource;
using partition::SplitResult;
using partition::Subcomputation;

/** Union-find over mesh node ids (R1 spanning/cycle checks). */
class NodeDsu
{
  public:
    explicit NodeDsu(std::int32_t nodes)
        : parent_(static_cast<std::size_t>(nodes))
    {
        for (std::size_t i = 0; i < parent_.size(); ++i)
            parent_[i] = static_cast<std::int32_t>(i);
    }

    std::int32_t
    find(std::int32_t x)
    {
        while (parent_[static_cast<std::size_t>(x)] != x) {
            parent_[static_cast<std::size_t>(x)] =
                parent_[static_cast<std::size_t>(
                    parent_[static_cast<std::size_t>(x)])];
            x = parent_[static_cast<std::size_t>(x)];
        }
        return x;
    }

    /** False when @p a and @p b were already connected (a cycle). */
    bool
    unite(std::int32_t a, std::int32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent_[static_cast<std::size_t>(a)] = b;
        return true;
    }

  private:
    std::vector<std::int32_t> parent_;
};

/**
 * Is task @p from an ancestor of @p to in the dependence DAG? Backward
 * BFS over deps, pruning ids below @p from (ids are topologically
 * ordered: every dep precedes its consumer).
 */
bool
orderedBefore(const sim::ExecutionPlan &plan, sim::TaskId from,
              sim::TaskId to)
{
    if (from == to)
        return true;
    if (from > to)
        return false;
    std::vector<sim::TaskId> frontier = {to};
    std::unordered_set<sim::TaskId> visited = {to};
    while (!frontier.empty()) {
        const sim::TaskId at = frontier.back();
        frontier.pop_back();
        for (sim::TaskId dep :
             plan.tasks[static_cast<std::size_t>(at)].deps) {
            if (dep == from)
                return true;
            if (dep < from || !visited.insert(dep).second)
                continue;
            frontier.push_back(dep);
        }
    }
    return false;
}

/** Shared per-verification state threaded through the rule checks. */
struct VerifyState
{
    Report report;
    /** Per-address last storing task (RAW/WAW replay, Full only). */
    std::unordered_map<mem::Addr, sim::TaskId> lastWriter;
    /** Instance index of the last write per address (staleness). */
    std::unordered_map<mem::Addr, std::int64_t> writeSeq;
    /** Instance index each (line, node) L1 copy was recorded at. */
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<noc::NodeId, std::int64_t>>>
        copySeq;
    /** Replayed variable2node map of the current window. */
    partition::VariableToNodeMap vmap;

    explicit VerifyState(std::size_t reuse_capacity)
        : vmap(reuse_capacity)
    {
    }

    void
    recordCopy(mem::Addr addr, noc::NodeId node, std::int64_t seq)
    {
        const std::uint64_t line = mem::lineNumber(addr);
        const bool fresh = [&] {
            for (noc::NodeId n : vmap.nodesFor(addr)) {
                if (n == node)
                    return false;
            }
            return true;
        }();
        vmap.add(addr, node);
        if (!fresh)
            return;
        auto &copies = copySeq[line];
        for (auto &entry : copies) {
            if (entry.first == node) {
                entry.second = seq;
                return;
            }
        }
        copies.emplace_back(node, seq);
    }

    std::int64_t
    copyRecordedAt(mem::Addr addr, noc::NodeId node) const
    {
        const auto it = copySeq.find(mem::lineNumber(addr));
        if (it == copySeq.end())
            return -1;
        for (const auto &entry : it->second) {
            if (entry.first == node)
                return entry.second;
        }
        return -1;
    }

    void
    newWindow(std::size_t reuse_capacity)
    {
        vmap = partition::VariableToNodeMap(reuse_capacity);
        copySeq.clear();
        writeSeq.clear();
    }
};

/** True when the recorded split matches the reference in structure
 *  (everything a balancer slide cannot change). */
bool
sameStructure(const SplitResult &got, const SplitResult &ref)
{
    if (got.subs.size() != ref.subs.size() || got.root != ref.root ||
        got.degreeOfParallelism != ref.degreeOfParallelism ||
        got.edges.size() != ref.edges.size())
        return false;
    for (std::size_t s = 0; s < got.subs.size(); ++s) {
        const Subcomputation &a = got.subs[s];
        const Subcomputation &b = ref.subs[s];
        if (a.leaves != b.leaves || a.children != b.children ||
            a.ops != b.ops || a.opCost != b.opCost ||
            a.isRoot != b.isRoot)
            return false;
    }
    for (std::size_t e = 0; e < got.edges.size(); ++e) {
        if (got.edges[e].a != ref.edges[e].a ||
            got.edges[e].b != ref.edges[e].b ||
            got.edges[e].weight != ref.edges[e].weight)
            return false;
    }
    return true;
}

/** Exact equality, nodes and cost included (cache replay identity). */
bool
sameExact(const SplitResult &got, const SplitResult &ref)
{
    if (!sameStructure(got, ref) ||
        got.plannedMovement != ref.plannedMovement ||
        got.crossNodeEdges != ref.crossNodeEdges)
        return false;
    for (std::size_t s = 0; s < got.subs.size(); ++s) {
        if (got.subs[s].node != ref.subs[s].node)
            return false;
    }
    return true;
}

std::string
describeInt(const char *what, std::int64_t got, std::int64_t want)
{
    std::ostringstream os;
    os << what << " is " << got << ", expected " << want;
    return os.str();
}

} // namespace

PlanVerifier::PlanVerifier(const sim::ManycoreSystem &system,
                           const ir::ArrayTable &arrays)
    : system_(&system), arrays_(&arrays)
{
}

Report
PlanVerifier::verify(const ir::LoopNest &nest,
                     const sim::ExecutionPlan &plan,
                     const PlanProvenance &prov) const
{
    const noc::MeshTopology &mesh = system_->mesh();
    const mem::AddressMap &amap = system_->addressMap();
    const std::int64_t line_flits = system_->config().lineFlits();
    const bool full = prov.level == VerifyLevel::Full;
    const bool faulted = mesh.hasFaults();

    VerifyState st(prov.reuseCapacityLines);
    Report &rep = st.report;
    rep.plan = plan.name;
    rep.level = prov.level;
    if (prov.level == VerifyLevel::Off)
        return rep;

    auto diag = [&](const char *rule, Severity sev,
                    const SplitRecord *rec, sim::TaskId task,
                    noc::NodeId node, std::string message) {
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        if (rec != nullptr) {
            d.statementIndex = rec->statementIndex;
            d.iterationNumber = rec->iterationNumber;
        }
        d.task = task;
        d.node = node;
        d.message = std::move(message);
        rep.add(std::move(d));
    };
    auto error = [&](const char *rule, const SplitRecord *rec,
                     sim::TaskId task, noc::NodeId node,
                     std::string message) {
        diag(rule, Severity::Error, rec, task, node,
             std::move(message));
    };

    // ---- Epoch gate (R5): distances, liveness, and re-homing below
    // are all functions of the machine's fault signature; a mismatch
    // means the plan was built for a different chip.
    if (prov.faultEpoch != mesh.faults().signature()) {
        std::ostringstream os;
        os << "plan built under fault epoch " << prov.faultEpoch
           << " but the machine's is " << mesh.faults().signature()
           << " (" << mesh.faults().describe() << ")";
        error("R5.epoch-mismatch", nullptr, sim::kInvalidTask,
              noc::kInvalidNode, os.str());
        return rep;
    }

    if (prov.instances.size() != plan.instances.size()) {
        error("R3.coverage", nullptr, sim::kInvalidTask,
              noc::kInvalidNode,
              describeInt(
                  "provenance instance count",
                  static_cast<std::int64_t>(prov.instances.size()),
                  static_cast<std::int64_t>(plan.instances.size())));
        return rep;
    }

    // Nested variable sets are per static statement; the reference
    // splitter re-splits from the same (sets, locations, store) inputs
    // the planner used.
    std::vector<ir::VarSet> static_sets;
    static_sets.reserve(nest.body().size());
    for (const ir::Statement &stmt : nest.body())
        static_sets.push_back(ir::buildVarSets(stmt));
    partition::StatementSplitter ref_splitter(mesh, line_flits,
                                              /*result_weight=*/1);

    // Under load balancing the split is a function of the balancer's
    // evolving load vector too, so the reference recomputation replays
    // that state stream: unsplit instances commit their default-node
    // load, accepted splits run against (and commit) a trial copy —
    // exactly the planner's sequence. This makes the reference split
    // bit-comparable even for slid placements.
    std::optional<partition::LoadBalancer> replay_balancer;
    if (full && prov.loadBalanced) {
        replay_balancer.emplace(mesh.nodeCount(),
                                prov.loadBalanceThreshold);
        if (mesh.hasFaults()) {
            for (noc::NodeId dead : mesh.faults().deadNodes())
                replay_balancer->markUnavailable(dead);
        }
    }

    auto live = [&](noc::NodeId n) {
        return n >= 0 && n < mesh.nodeCount() && mesh.isLive(n);
    };

    // Checks deps of one task: backward, duplicate-free, live
    // producers (the sync-point endpoints of Section 4.5).
    auto check_deps = [&](const SplitRecord &rec,
                          const sim::Task &task) {
        for (std::size_t i = 0; i < task.deps.size(); ++i) {
            const sim::TaskId dep = task.deps[i];
            if (dep < 0 || dep >= task.id) {
                std::ostringstream os;
                os << "dep " << dep << " does not precede task "
                   << task.id;
                error("R3.dep-order", &rec, task.id, task.node,
                      os.str());
                continue;
            }
            if (std::find(task.deps.begin(),
                          task.deps.begin() +
                              static_cast<std::ptrdiff_t>(i),
                          dep) !=
                task.deps.begin() + static_cast<std::ptrdiff_t>(i)) {
                std::ostringstream os;
                os << "dep " << dep << " listed twice on task "
                   << task.id;
                error("R3.dep-order", &rec, task.id, task.node,
                      os.str());
            }
            const sim::Task &producer =
                plan.tasks[static_cast<std::size_t>(dep)];
            if (dep < task.id && !live(producer.node)) {
                std::ostringstream os;
                os << "sync from task " << dep << " on dead node "
                   << producer.node << " (fault epoch "
                   << mesh.faults().signature() << ")";
                error("R5.sync-on-dead", &rec, task.id, producer.node,
                      os.str());
            }
        }
    };

    // RAW/WAW legality of one access against the replayed writer map
    // (Full). WAR is exempt: the planner bounds reader tracking, so
    // anti-dependences are ordered by value arcs only.
    auto check_raw = [&](const SplitRecord &rec, sim::TaskId reader,
                         mem::Addr addr, bool stale_reuse) {
        const auto it = st.lastWriter.find(addr);
        if (it == st.lastWriter.end() || it->second == reader)
            return;
        if (!orderedBefore(plan, it->second, reader)) {
            std::ostringstream os;
            os << (stale_reuse ? "reuse of" : "read of") << " addr "
               << addr << " by task " << reader
               << " is unordered against writer task " << it->second;
            error(stale_reuse ? "R4.stale-reuse"
                              : "R3.conflict-unordered",
                  &rec, reader,
                  plan.tasks[static_cast<std::size_t>(reader)].node,
                  os.str());
        }
    };
    auto check_waw = [&](const SplitRecord &rec, sim::TaskId writer,
                         mem::Addr addr) {
        const auto it = st.lastWriter.find(addr);
        if (it == st.lastWriter.end() || it->second == writer)
            return;
        if (!orderedBefore(plan, it->second, writer)) {
            std::ostringstream os;
            os << "write of addr " << addr << " by task " << writer
               << " is unordered against writer task " << it->second;
            error("R3.conflict-unordered", &rec, writer,
                  plan.tasks[static_cast<std::size_t>(writer)].node,
                  os.str());
        }
    };

    std::vector<ir::ResolvedRef> reads;
    sim::TaskId expect_next = 0;
    bool tiling_broken = false;

    for (std::size_t i = 0; i < prov.instances.size(); ++i) {
        const SplitRecord &rec = prov.instances[i];
        if (full && prov.windowSize > 0 &&
            static_cast<std::int64_t>(i) %
                    static_cast<std::int64_t>(prov.windowSize) ==
                0)
            st.newWindow(prov.reuseCapacityLines);
        rep.counts().plansVerified += 1;

        // ---- Task-range tiling: records must cover the plan's tasks
        // contiguously and in stream order.
        if (rec.firstTask != expect_next || rec.taskCount <= 0 ||
            static_cast<std::size_t>(rec.firstTask) +
                    static_cast<std::size_t>(rec.taskCount) >
                plan.tasks.size()) {
            std::ostringstream os;
            os << "instance task range [" << rec.firstTask << ", +"
               << rec.taskCount << ") does not tile the plan at task "
               << expect_next;
            error("R3.coverage", &rec, rec.firstTask,
                  noc::kInvalidNode, os.str());
            tiling_broken = true;
            break;
        }
        expect_next += rec.taskCount;

        // ---- Independently re-resolve the instance's operands.
        const auto stmt_idx = static_cast<std::size_t>(
            rec.statementIndex);
        if (rec.statementIndex < 0 || stmt_idx >= nest.body().size() ||
            rec.iterationNumber < 0 ||
            rec.iterationNumber >= nest.iterationCount()) {
            error("R3.coverage", &rec, rec.firstTask,
                  noc::kInvalidNode,
                  "record references a statement/iteration outside "
                  "the nest");
            tiling_broken = true;
            break;
        }
        const ir::Statement &stmt = nest.body()[stmt_idx];
        ir::StatementInstance inst;
        inst.stmt = &stmt;
        inst.iter = nest.iterationAt(rec.iterationNumber);
        inst.iterationNumber = rec.iterationNumber;
        const ir::ResolvedRef write = ir::resolveWrite(inst, *arrays_);
        ir::resolveReadsInto(inst, *arrays_, reads);

        const sim::InstanceStats &istats = plan.instances[i];
        if (istats.statementIndex != rec.statementIndex ||
            istats.iterationNumber != rec.iterationNumber) {
            error("R3.coverage", &rec, rec.firstTask, noc::kInvalidNode,
                  "plan instance stats and provenance disagree about "
                  "the originating statement instance");
        }
        if (istats.dataMovement != rec.claimedMovement) {
            error("R2.instance-mismatch", &rec, rec.firstTask,
                  noc::kInvalidNode,
                  describeInt("instance dataMovement",
                              istats.dataMovement,
                              rec.claimedMovement));
        }
        if (istats.defaultDataMovement != rec.defaultMovement) {
            error("R2.instance-mismatch", &rec, rec.firstTask,
                  noc::kInvalidNode,
                  describeInt("instance defaultDataMovement",
                              istats.defaultDataMovement,
                              rec.defaultMovement));
        }

        // The split root stores at the write's home; re-homing under
        // faults guarantees the home is live.
        const noc::NodeId home = amap.homeBankNode(write.addr);
        if (rec.storeNode != home) {
            std::ostringstream os;
            os << "store node " << rec.storeNode
               << " is not the write's home bank node " << home;
            error("R3.root-write", &rec, rec.rootTask, rec.storeNode,
                  os.str());
        }
        if (!live(rec.storeNode)) {
            std::ostringstream os;
            os << "store node " << rec.storeNode << " is dead (epoch "
               << mesh.faults().signature() << ")";
            error("R5.store-on-dead", &rec, rec.rootTask,
                  rec.storeNode, os.str());
        }

        const std::int64_t seq = static_cast<std::int64_t>(i);

        if (!rec.wasSplit) {
            // ================= Unsplit instance =================
            if (rec.taskCount != 1) {
                error("R3.coverage", &rec, rec.firstTask,
                      noc::kInvalidNode,
                      describeInt("unsplit instance task count",
                                  rec.taskCount, 1));
                continue;
            }
            const sim::Task &task =
                plan.tasks[static_cast<std::size_t>(rec.firstTask)];
            if (task.node != rec.defaultNode) {
                std::ostringstream os;
                os << "unsplit task sits on node " << task.node
                   << ", not its default node " << rec.defaultNode;
                error("R3.bad-node", &rec, task.id, task.node,
                      os.str());
            }
            if (!live(task.node)) {
                std::ostringstream os;
                os << "task on dead node " << task.node << " (epoch "
                   << mesh.faults().signature() << ": "
                   << mesh.faults().describe() << ")";
                error("R5.task-on-dead", &rec, task.id, task.node,
                      os.str());
            }
            if (!task.write || task.write->addr != write.addr) {
                error("R3.root-write", &rec, task.id, task.node,
                      "unsplit task does not store the statement's "
                      "resolved write address");
            }
            if (rec.claimedMovement != rec.defaultMovement) {
                error("R2.cost-mismatch", &rec, task.id, task.node,
                      describeInt(
                          "unsplit instance claimed movement",
                          rec.claimedMovement, rec.defaultMovement));
            }
            if (istats.degreeOfParallelism != 1) {
                error("R2.instance-mismatch", &rec, task.id, task.node,
                      describeInt("unsplit degree of parallelism",
                                  istats.degreeOfParallelism, 1));
            }
            check_deps(rec, task);
            // Skip dead nodes: the planner never committed load there,
            // and R5.task-on-dead already flagged the record.
            if (replay_balancer && live(rec.defaultNode))
                replay_balancer->add(rec.defaultNode, task.computeCost);
            if (full) {
                for (const ir::ResolvedRef &r : reads)
                    check_raw(rec, task.id, r.addr, false);
                check_waw(rec, task.id, write.addr);
                st.lastWriter[write.addr] = task.id;
                st.writeSeq[write.addr] = seq;
                if (prov.exploitReuse) {
                    for (const ir::ResolvedRef &r : reads)
                        st.recordCopy(r.addr, rec.defaultNode, seq);
                    st.recordCopy(write.addr, rec.defaultNode, seq);
                }
            }
            continue;
        }

        // ================== Split instance ==================
        const SplitResult &split = rec.split;
        if (rec.locations.size() != reads.size() ||
            static_cast<std::size_t>(rec.taskCount) !=
                split.subs.size() ||
            split.root < 0 ||
            static_cast<std::size_t>(split.root) >= split.subs.size() ||
            rec.rootTask != rec.firstTask + split.root) {
            error("R3.coverage", &rec, rec.firstTask, noc::kInvalidNode,
                  "split record shape (locations/subs/root) does not "
                  "match the resolved statement");
            continue;
        }

        // ---- R4/R5: operand locations.
        for (std::size_t j = 0; j < rec.locations.size(); ++j) {
            const Location &loc = rec.locations[j];
            const ir::ResolvedRef &r = reads[j];
            if (loc.node < 0 || loc.node >= mesh.nodeCount()) {
                std::ostringstream os;
                os << "operand " << j << " located at invalid node "
                   << loc.node;
                error("R4.home-mismatch", &rec, rec.firstTask,
                      loc.node, os.str());
                continue;
            }
            if (!live(loc.node)) {
                std::ostringstream os;
                os << "operand " << j << " located on dead node "
                   << loc.node << " (epoch "
                   << mesh.faults().signature() << ")";
                error("R5.reuse-on-dead", &rec, rec.firstTask,
                      loc.node, os.str());
            }
            if (loc.source != LocationSource::L1Copy) {
                const noc::NodeId opd_home = amap.homeBankNode(r.addr);
                if (loc.node != opd_home) {
                    std::ostringstream os;
                    os << "operand " << j << " located at node "
                       << loc.node << " but its re-homed bank is node "
                       << opd_home;
                    error("R4.home-mismatch", &rec, rec.firstTask,
                          loc.node, os.str());
                }
            } else if (full && prov.exploitReuse && !prov.oracle) {
                const std::vector<noc::NodeId> &copies =
                    st.vmap.nodesFor(r.addr);
                if (std::find(copies.begin(), copies.end(),
                              loc.node) == copies.end()) {
                    std::ostringstream os;
                    os << "operand " << j << " claims an L1 copy at "
                          "node "
                       << loc.node
                       << " that no earlier fetch in the window "
                          "produced";
                    error("R4.reuse-unfetched", &rec, rec.firstTask,
                          loc.node, os.str());
                } else {
                    // The deterministic GetNode pick: nearest copy to
                    // the store, lowest node id on ties.
                    noc::NodeId pick = copies.front();
                    std::int32_t best =
                        mesh.distance(pick, rec.storeNode);
                    for (noc::NodeId n : copies) {
                        const std::int32_t d =
                            mesh.distance(n, rec.storeNode);
                        if (d < best || (d == best && n < pick)) {
                            best = d;
                            pick = n;
                        }
                    }
                    if (pick != loc.node) {
                        std::ostringstream os;
                        os << "operand " << j << " reuses node "
                           << loc.node
                           << " but the deterministic nearest copy is "
                              "node "
                           << pick;
                        error("R4.reuse-pick", &rec, rec.firstTask,
                              loc.node, os.str());
                    }
                }
            }
        }

        // ---- R1: MST edges price real distances and span the
        // operands; flat statements check the exact tree shape.
        NodeDsu dsu(mesh.nodeCount());
        bool cycle = false;
        for (const partition::MstEdge &edge : split.edges) {
            if (edge.a < 0 || edge.a >= mesh.nodeCount() ||
                edge.b < 0 || edge.b >= mesh.nodeCount()) {
                std::ostringstream os;
                os << "MST edge (" << edge.a << ", " << edge.b
                   << ") leaves the mesh";
                error("R1.edge-weight", &rec, rec.firstTask,
                      noc::kInvalidNode, os.str());
                continue;
            }
            const std::int32_t want = mesh.distance(edge.a, edge.b);
            if (edge.weight != want) {
                std::ostringstream os;
                if (faulted &&
                    edge.weight ==
                        mesh.distanceUncached(edge.a, edge.b) &&
                    edge.weight < want) {
                    os << "MST edge (" << edge.a << ", " << edge.b
                       << ") priced at the healthy distance "
                       << edge.weight << "; the detour costs " << want;
                    error("R5.detour-unpriced", &rec, rec.firstTask,
                          edge.a, os.str());
                } else {
                    os << "MST edge (" << edge.a << ", " << edge.b
                       << ") has weight " << edge.weight
                       << ", distance is " << want;
                    error("R1.edge-weight", &rec, rec.firstTask,
                          edge.a, os.str());
                }
            }
            if (!dsu.unite(edge.a, edge.b))
                cycle = true;
        }
        std::vector<noc::NodeId> vertices = {rec.storeNode};
        const std::size_t rhs_reads =
            std::min(stmt.rhsReadCount(), rec.locations.size());
        for (std::size_t j = 0; j < rhs_reads; ++j) {
            const noc::NodeId n = rec.locations[j].node;
            if (n >= 0 && n < mesh.nodeCount() &&
                std::find(vertices.begin(), vertices.end(), n) ==
                    vertices.end())
                vertices.push_back(n);
        }
        for (noc::NodeId v : vertices) {
            if (dsu.find(v) != dsu.find(rec.storeNode)) {
                std::ostringstream os;
                os << "operand node " << v
                   << " is not connected to store node "
                   << rec.storeNode << " by the MST edges";
                error("R1.not-spanning", &rec, rec.firstTask, v,
                      os.str());
            }
        }
        if (static_sets[stmt_idx].depth() == 1) {
            // One Kruskal level: the edge list is one exact spanning
            // tree over the distinct operand nodes plus the store.
            if (split.edges.size() != vertices.size() - 1) {
                error("R1.edge-count", &rec, rec.firstTask,
                      noc::kInvalidNode,
                      describeInt(
                          "MST edge count",
                          static_cast<std::int64_t>(
                              split.edges.size()),
                          static_cast<std::int64_t>(vertices.size()) -
                              1));
            }
            if (cycle) {
                error("R1.cycle", &rec, rec.firstTask,
                      noc::kInvalidNode,
                      "MST edge list contains a cycle");
            }
        }

        // ---- R2/R6: independent reference recomputation.
        const ir::VarSet &sets = static_sets[stmt_idx];
        if (full) {
            SplitResult ref;
            if (replay_balancer) {
                // The planner split against a trial copy and committed
                // it iff the split was kept; split records only exist
                // for kept splits, so replay commits unconditionally.
                partition::LoadBalancer trial = *replay_balancer;
                ref = ref_splitter.split(sets, rec.locations,
                                         rec.storeNode, &trial);
                *replay_balancer = std::move(trial);
            } else {
                ref = ref_splitter.split(sets, rec.locations,
                                         rec.storeNode, nullptr);
            }
            if (rec.fromCache) {
                if (!sameExact(split, ref)) {
                    error("R6.replay-divergence", &rec, rec.firstTask,
                          noc::kInvalidNode,
                          "cached split is not bit-identical to the "
                          "fresh reference split");
                }
            } else if (!sameStructure(split, ref)) {
                error("R2.split-mismatch", &rec, rec.firstTask,
                      noc::kInvalidNode,
                      "split structure diverges from the reference "
                      "recomputation on the recorded inputs");
            } else if (!sameExact(split, ref)) {
                error("R2.split-mismatch", &rec, rec.firstTask,
                      noc::kInvalidNode,
                      describeInt("split placement/movement diverges "
                                  "from the reference recomputation: "
                                  "movement",
                                  split.plannedMovement,
                                  ref.plannedMovement));
            }
            if (!prov.loadBalanced) {
                // Equation 1 upper bound: an MST split never moves
                // more data than fetching every operand line straight
                // to the store node (slides may exceed it, so gate on
                // balancer-free plans).
                std::int64_t naive = 0;
                for (std::size_t j = 0; j < rhs_reads; ++j)
                    naive += line_flits *
                             mesh.distance(rec.locations[j].node,
                                           rec.storeNode);
                if (split.plannedMovement > naive) {
                    diag("R2.naive-bound", Severity::Warning, &rec,
                         rec.firstTask, noc::kInvalidNode,
                         describeInt("split movement exceeds the "
                                     "naive all-to-store cost:",
                                     split.plannedMovement, naive));
                }
            }
        }
        if (rec.claimedMovement != split.plannedMovement) {
            error("R2.cost-mismatch", &rec, rec.firstTask,
                  noc::kInvalidNode,
                  describeInt("claimed movement", rec.claimedMovement,
                              split.plannedMovement));
        }
        if (rec.claimedMovement >= rec.defaultMovement) {
            error("R2.not-profitable", &rec, rec.firstTask,
                  noc::kInvalidNode,
                  describeInt("kept split's movement must beat the "
                              "default placement's",
                              rec.claimedMovement,
                              rec.defaultMovement - 1));
        }
        if (istats.degreeOfParallelism != split.degreeOfParallelism) {
            error("R2.instance-mismatch", &rec, rec.firstTask,
                  noc::kInvalidNode,
                  describeInt("instance degree of parallelism",
                              istats.degreeOfParallelism,
                              split.degreeOfParallelism));
        }

        // ---- R3: the emitted tasks mirror the subcomputations.
        std::vector<std::int32_t> child_refs(split.subs.size(), 0);
        bool one_root = false;
        for (std::size_t s = 0; s < split.subs.size(); ++s) {
            const Subcomputation &sub = split.subs[s];
            const sim::TaskId tid =
                rec.firstTask + static_cast<sim::TaskId>(s);
            const sim::Task &task =
                plan.tasks[static_cast<std::size_t>(tid)];
            if (task.node != sub.node) {
                std::ostringstream os;
                os << "task sits on node " << task.node
                   << ", subcomputation was placed on node "
                   << sub.node;
                error("R3.bad-node", &rec, tid, task.node, os.str());
            }
            if (!live(task.node)) {
                std::ostringstream os;
                os << "task on dead node " << task.node << " (epoch "
                   << mesh.faults().signature() << ": "
                   << mesh.faults().describe() << ")";
                error("R5.task-on-dead", &rec, tid, task.node,
                      os.str());
            }
            if (task.statementIndex != rec.statementIndex ||
                task.iterationNumber != rec.iterationNumber) {
                error("R3.coverage", &rec, tid, task.node,
                      "task is attributed to a different statement "
                      "instance than its provenance record");
            }
            // Leaves-to-store: every child's result must arrive (the
            // merge is a sync point for each of its >= 1 children).
            for (int child : sub.children) {
                if (child < 0 || static_cast<std::size_t>(child) >= s) {
                    error("R3.coverage", &rec, tid, task.node,
                          "subcomputation child does not precede its "
                          "parent");
                    continue;
                }
                child_refs[static_cast<std::size_t>(child)] += 1;
                const sim::TaskId child_tid =
                    rec.firstTask + static_cast<sim::TaskId>(child);
                if (std::find(task.deps.begin(), task.deps.end(),
                              child_tid) == task.deps.end()) {
                    std::ostringstream os;
                    os << "merge task does not wait on child task "
                       << child_tid;
                    error("R3.sync-missing", &rec, tid, task.node,
                          os.str());
                }
            }
            if (sub.isRoot) {
                if (one_root) {
                    error("R3.root-write", &rec, tid, task.node,
                          "more than one root subcomputation");
                }
                one_root = true;
                if (static_cast<int>(s) != split.root) {
                    error("R3.root-write", &rec, tid, task.node,
                          "root index does not name the root "
                          "subcomputation");
                }
                if (!task.write || task.write->addr != write.addr) {
                    error("R3.root-write", &rec, tid, task.node,
                          "root task does not store the statement's "
                          "resolved write address");
                }
            } else if (task.write) {
                error("R3.root-write", &rec, tid, task.node,
                      "non-root subcomputation stores");
            }
            check_deps(rec, task);
        }
        if (!one_root) {
            error("R3.root-write", &rec, rec.rootTask, rec.storeNode,
                  "no subcomputation holds the final store");
        }
        for (std::size_t s = 0; s < split.subs.size(); ++s) {
            const bool is_root = static_cast<int>(s) == split.root;
            if (!is_root && child_refs[s] == 0) {
                error("R3.unreachable-root", &rec,
                      rec.firstTask + static_cast<sim::TaskId>(s),
                      split.subs[s].node,
                      "subcomputation's result never reaches the "
                      "store");
            }
            if (child_refs[s] > (is_root ? 0 : 1)) {
                error("R3.edge-reuse", &rec,
                      rec.firstTask + static_cast<sim::TaskId>(s),
                      split.subs[s].node,
                      is_root
                          ? "the root is consumed as a child"
                          : "subcomputation consumed by more than one "
                            "merge (an edge traversed twice)");
            }
        }

        // ---- Full: conflict replay + window-state replay.
        if (full) {
            for (std::size_t s = 0; s < split.subs.size(); ++s) {
                const Subcomputation &sub = split.subs[s];
                const sim::TaskId tid =
                    rec.firstTask + static_cast<sim::TaskId>(s);
                for (int leaf : sub.leaves) {
                    if (leaf < 0 || static_cast<std::size_t>(leaf) >=
                                        reads.size())
                        continue;
                    const auto lidx = static_cast<std::size_t>(leaf);
                    const mem::Addr addr = reads[lidx].addr;
                    const bool via_stale_copy =
                        rec.locations[lidx].source ==
                            LocationSource::L1Copy &&
                        [&] {
                            const auto wit = st.writeSeq.find(addr);
                            if (wit == st.writeSeq.end())
                                return false;
                            const std::int64_t copied =
                                st.copyRecordedAt(
                                    addr, rec.locations[lidx].node);
                            return copied >= 0 &&
                                   copied < wit->second;
                        }();
                    check_raw(rec, tid, addr, via_stale_copy);
                }
            }
            const sim::TaskId root_tid = rec.rootTask;
            for (std::size_t g = stmt.rhsReadCount();
                 g < reads.size(); ++g)
                check_raw(rec, root_tid, reads[g].addr, false);
            check_waw(rec, root_tid, write.addr);
            st.lastWriter[write.addr] = root_tid;
            st.writeSeq[write.addr] = seq;
            if (prov.exploitReuse) {
                for (std::size_t s = 0; s < split.subs.size(); ++s) {
                    for (int leaf : split.subs[s].leaves) {
                        if (leaf >= 0 &&
                            static_cast<std::size_t>(leaf) <
                                reads.size())
                            st.recordCopy(
                                reads[static_cast<std::size_t>(leaf)]
                                    .addr,
                                split.subs[s].node, seq);
                    }
                }
                st.recordCopy(write.addr, rec.storeNode, seq);
            }
        }
    }

    if (!tiling_broken &&
        static_cast<std::size_t>(expect_next) != plan.tasks.size()) {
        Diagnostic d;
        d.rule = "R3.coverage";
        d.severity = Severity::Error;
        d.message = describeInt(
            "provenance covers tasks", expect_next,
            static_cast<std::int64_t>(plan.tasks.size()));
        rep.add(std::move(d));
    }
    return rep;
}

} // namespace ndp::verify
