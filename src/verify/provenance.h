#ifndef NDP_VERIFY_PROVENANCE_H
#define NDP_VERIFY_PROVENANCE_H

/**
 * @file
 * Planning provenance: everything the partitioner decided per
 * statement instance, recorded in stream order so the verifier can
 * independently recompute each claim. Recording is gated on
 * PartitionOptions::verifyLevel != Off — at Off the planner stays
 * byte-for-byte on its fast path.
 *
 * The provenance deliberately stores the planner's *inputs* (operand
 * locations, store node) next to its *outputs* (the SplitResult and
 * the emitted task range): the verifier re-runs the reference splitter
 * on the recorded inputs and diffs the recorded output against it, the
 * same shape as translation validation.
 */

#include <cstdint>
#include <vector>

#include "noc/coord.h"
#include "partition/data_locator.h"
#include "partition/splitter.h"
#include "sim/plan.h"
#include "verify/verify_level.h"

namespace ndp::verify {

/** One statement instance's planning decision. */
struct SplitRecord
{
    std::int32_t statementIndex = -1;
    std::int64_t iterationNumber = -1;
    /** False = emitted whole on the default node (unsplit). */
    bool wasSplit = false;
    /** Split replayed from the SplitPlanCache (R6's subject). */
    bool fromCache = false;
    /** Baseline node of this iteration. */
    noc::NodeId defaultNode = noc::kInvalidNode;
    /** Home node of the statement's write (split root's node). */
    noc::NodeId storeNode = noc::kInvalidNode;
    /** Movement the planner claims for the emitted schedule. */
    std::int64_t claimedMovement = 0;
    /** Priced default-placement movement of this instance. */
    std::int64_t defaultMovement = 0;
    /** First task the instance emitted into the plan. */
    sim::TaskId firstTask = sim::kInvalidTask;
    std::int32_t taskCount = 0;
    /** Task holding the final store (== firstTask when unsplit). */
    sim::TaskId rootTask = sim::kInvalidTask;
    /** Located node per resolved read, RHS leaves then guards
     *  (split instances only). */
    std::vector<partition::Location> locations;
    /** The split the planner emitted (split instances only). */
    partition::SplitResult split;
};

/** Provenance of one whole ExecutionPlan (= one window-size candidate
 *  of one nest; Partitioner::plan keeps the winner's). */
struct PlanProvenance
{
    VerifyLevel level = VerifyLevel::Off;
    std::int32_t windowSize = 1;
    /** fault::FaultModel::signature() the plan was built against. */
    std::uint64_t faultEpoch = 0;
    /** variable2node per-node line budget actually used. */
    std::size_t reuseCapacityLines = 0;
    bool exploitReuse = true;
    /** Load balancer active: sub placement may slide off the MST. */
    bool loadBalanced = false;
    /** LoadBalancer threshold the planner ran with (loadBalanced
     *  only); the verifier replays the balancer state stream with it. */
    double loadBalanceThreshold = 0.10;
    /** Oracle locations probe real cache state, not the window map. */
    bool oracle = false;
    /** One record per statement instance, in stream order. */
    std::vector<SplitRecord> instances;
};

} // namespace ndp::verify

#endif // NDP_VERIFY_PROVENANCE_H
