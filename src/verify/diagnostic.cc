#include "verify/diagnostic.h"

#include <sstream>

#include "support/table.h"

namespace ndp::verify {

const char *
toString(Severity severity)
{
    switch (severity) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    return "error";
}

void
Report::add(Diagnostic diag)
{
    switch (diag.severity) {
    case Severity::Note:
        ++counts_.notes;
        break;
    case Severity::Warning:
        ++counts_.warnings;
        break;
    case Severity::Error:
        ++counts_.errors;
        break;
    }
    if (diags_.size() < kMaxStored)
        diags_.push_back(std::move(diag));
}

std::string
Report::renderTable() const
{
    if (diags_.empty())
        return std::string();
    Table table({"rule", "sev", "stmt", "iter", "task", "node",
                 "message"});
    for (const Diagnostic &d : diags_) {
        table.row()
            .cell(d.rule)
            .cell(toString(d.severity))
            .cell(static_cast<long long>(d.statementIndex))
            .cell(static_cast<long long>(d.iterationNumber))
            .cell(static_cast<long long>(d.task))
            .cell(static_cast<long long>(d.node))
            .cell(d.message);
    }
    std::ostringstream os;
    os << "plan '" << plan << "' (" << toString(level) << " verify): "
       << counts_.errors << " error(s), " << counts_.warnings
       << " warning(s), " << counts_.notes << " note(s)\n"
       << table.toString();
    if (diags_.size() < static_cast<std::size_t>(counts_.total()))
        os << "... " << (counts_.total() -
                         static_cast<std::int64_t>(diags_.size()))
           << " further diagnostic(s) not stored\n";
    return os.str();
}

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
void
appendEscaped(std::ostringstream &os, const std::string &text)
{
    for (char c : text) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
}

} // namespace

std::string
Report::renderJson() const
{
    std::ostringstream os;
    os << "{\"plan\": \"";
    appendEscaped(os, plan);
    os << "\", \"level\": \"" << toString(level) << "\""
       << ", \"plans_verified\": " << counts_.plansVerified
       << ", \"errors\": " << counts_.errors
       << ", \"warnings\": " << counts_.warnings
       << ", \"notes\": " << counts_.notes << ", \"diagnostics\": [";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        if (i > 0)
            os << ", ";
        os << "{\"rule\": \"";
        appendEscaped(os, d.rule);
        os << "\", \"severity\": \"" << toString(d.severity) << "\""
           << ", \"statement\": " << d.statementIndex
           << ", \"iteration\": " << d.iterationNumber
           << ", \"task\": " << d.task << ", \"node\": " << d.node
           << ", \"message\": \"";
        appendEscaped(os, d.message);
        os << "\"}";
    }
    os << "]}";
    return os.str();
}

} // namespace ndp::verify
