#ifndef NDP_VERIFY_PLAN_VERIFIER_H
#define NDP_VERIFY_PLAN_VERIFIER_H

/**
 * @file
 * Static plan verification (translation validation for partition
 * plans): every ExecutionPlan the partitioner emits is checked against
 * an independent recomputation of the paper's invariants, using only
 * the recorded PlanProvenance, the machine description, and the IR —
 * never the planner's own intermediate state.
 *
 * Rule families (ids are "<family>.<check>", see DESIGN.md §9):
 *   R1 MST well-formedness: every recorded MST edge prices the real
 *      MeshTopology distance under the active fault epoch; the edge
 *      union spans the operand nodes and the store; flat statements
 *      additionally check the exact |V|-1 edge count and acyclicity.
 *   R2 Equation-1 consistency: the claimed movement equals the
 *      reference splitter's recomputation (plus priced load-balancer
 *      slides), kept splits beat the default placement, slide-free
 *      splits respect the naive all-to-store bound, and the plan's
 *      InstanceStats agree with the provenance.
 *   R3 schedule legality: tasks tile the plan contiguously, children
 *      precede parents and every merge waits on all of its children
 *      (sync points), exactly one task stores, every subcomputation
 *      reaches the root, deps are backward and duplicate-free, and —
 *      at Full — conflicting accesses (RAW/WAW) are ordered by the
 *      dependence graph (the static race check; WAR is intentionally
 *      exempt, mirroring the planner's bounded reader tracking).
 *   R4 window coherence: non-L1 locations sit at the datum's re-homed
 *      bank; at Full, every variable2node reuse edge points at a node
 *      the window replay proves fetched that line earlier, the pick is
 *      the deterministic nearest-to-store copy, and a reuse edge that
 *      crosses an overwrite of the datum is ordered after it.
 *   R5 fault legality: no task, sync endpoint, or reuse source on a
 *      dead node; edges priced at the healthy Manhattan distance under
 *      faults are flagged as unpriced detours; the provenance epoch
 *      must match the machine's fault signature.
 *   R6 cache replay identity: a SplitPlanCache hit must be
 *      bit-identical to the fresh reference split.
 */

#include "ir/statement.h"
#include "sim/manycore.h"
#include "sim/plan.h"
#include "verify/diagnostic.h"
#include "verify/provenance.h"

namespace ndp::verify {

/** Stateless checker; one instance can verify many plans. */
class PlanVerifier
{
  public:
    /**
     * @param system the machine the plan targets (mesh distances,
     *        fault set, address map); read-only
     * @param arrays the program's array table, used to independently
     *        re-resolve every instance's operand addresses
     */
    PlanVerifier(const sim::ManycoreSystem &system,
                 const ir::ArrayTable &arrays);

    /**
     * Check @p plan (produced for @p nest) against @p prov. The
     * returned report's level echoes prov.level; at Off the report is
     * trivially clean.
     */
    Report verify(const ir::LoopNest &nest,
                  const sim::ExecutionPlan &plan,
                  const PlanProvenance &prov) const;

  private:
    const sim::ManycoreSystem *system_;
    const ir::ArrayTable *arrays_;
};

} // namespace ndp::verify

#endif // NDP_VERIFY_PLAN_VERIFIER_H
