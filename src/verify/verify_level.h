#ifndef NDP_VERIFY_VERIFY_LEVEL_H
#define NDP_VERIFY_VERIFY_LEVEL_H

/**
 * @file
 * The static plan-verification effort knob. `Off` records nothing and
 * costs nothing; `Cheap` runs the structural rule subset (edge
 * weights, spanning, schedule shape, liveness) straight off the
 * recorded provenance; `Full` additionally replays the reference
 * splitter, the variable2node window state, and the cross-instance
 * conflict analysis — an independent recomputation of everything the
 * planner claimed (translation validation for partition plans).
 *
 * Surfaced process-wide as the NDP_VERIFY environment variable
 * ("off" | "cheap" | "full", default off) so every harness, test, and
 * campaign can be re-run under verification without per-call wiring,
 * and per-run as bench_common's --verify flag.
 */

#include <cstdlib>
#include <cstring>

namespace ndp::verify {

enum class VerifyLevel
{
    Off,
    Cheap,
    Full,
};

inline const char *
toString(VerifyLevel level)
{
    switch (level) {
    case VerifyLevel::Off:
        return "off";
    case VerifyLevel::Cheap:
        return "cheap";
    case VerifyLevel::Full:
        return "full";
    }
    return "off";
}

/** Parse "off" / "cheap" / "full" into @p out; false on anything else. */
inline bool
parseVerifyLevel(const char *text, VerifyLevel &out)
{
    if (text == nullptr)
        return false;
    if (std::strcmp(text, "off") == 0) {
        out = VerifyLevel::Off;
        return true;
    }
    if (std::strcmp(text, "cheap") == 0) {
        out = VerifyLevel::Cheap;
        return true;
    }
    if (std::strcmp(text, "full") == 0) {
        out = VerifyLevel::Full;
        return true;
    }
    return false;
}

/** The NDP_VERIFY environment knob; unset or unparsable means Off. */
inline VerifyLevel
verifyLevelFromEnv()
{
    VerifyLevel level = VerifyLevel::Off;
    parseVerifyLevel(std::getenv("NDP_VERIFY"), level);
    return level;
}

} // namespace ndp::verify

#endif // NDP_VERIFY_VERIFY_LEVEL_H
