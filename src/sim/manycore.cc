#include "sim/manycore.h"

#include <algorithm>

#include "support/error.h"

namespace ndp::sim {

ManycoreSystem::ManycoreSystem(const ManycoreConfig &config)
    : config_(config),
      mesh_(config.meshCols, config.meshRows, config.torus,
            config.faults),
      addrMap_(mesh_, config.clusterMode),
      traffic_(mesh_),
      noc_(mesh_, config.noc)
{
    l1s_.reserve(static_cast<std::size_t>(mesh_.nodeCount()));
    l2Banks_.reserve(static_cast<std::size_t>(mesh_.nodeCount()));
    for (noc::NodeId n = 0; n < mesh_.nodeCount(); ++n) {
        l1s_.emplace_back(config.l1Bytes, config.l1Ways);
        l2Banks_.emplace_back(config.l2BankBytes, config.l2Ways);
    }
    for (noc::NodeId mc_node : mesh_.memoryControllerNodes()) {
        mcs_.push_back(std::make_unique<mem::MemoryController>(
            mc_node, config.memoryMode, config.mc));
    }
}

void
ManycoreSystem::setMcdramArrays(std::unordered_set<ir::ArrayId> arrays)
{
    mcdramArrays_ = std::move(arrays);
}

mem::MemoryKind
ManycoreSystem::memoryKindOf(ir::ArrayId array) const
{
    switch (config_.memoryMode) {
      case mem::MemoryMode::Cache:
        // Everything is DDR-backed behind the MCDRAM-side cache.
        return mem::MemoryKind::Ddr;
      case mem::MemoryMode::Flat:
      case mem::MemoryMode::Hybrid:
        return mcdramArrays_.count(array) != 0 ? mem::MemoryKind::Mcdram
                                               : mem::MemoryKind::Ddr;
    }
    return mem::MemoryKind::Ddr;
}

mem::MemoryController &
ManycoreSystem::mcAt(noc::NodeId node)
{
    for (auto &mc : mcs_) {
        if (mc->node() == node)
            return *mc;
    }
    ndp::panic("no memory controller at node " + std::to_string(node));
}

AccessRecord
ManycoreSystem::walkRead(noc::NodeId node, const MemAccess &access)
{
    AccessRecord rec;
    rec.addr = access.addr;
    rec.requester = node;
    rec.isWrite = false;

    auto &l1 = l1s_[static_cast<std::size_t>(node)];
    if (l1.access(access.addr)) {
        rec.level = AccessLevel::L1;
        return rec;
    }

    // L1 miss: request to the home bank (1), data back (5) — Figure 1.
    rec.home = addrMap_.homeBankNode(access.addr);
    traffic_.addMessage(node, rec.home, 1); // request flit
    auto &bank = l2Banks_[static_cast<std::size_t>(rec.home)];
    const bool l2_hit = bank.access(access.addr);
    predictor_.update(access.addr, l2_hit);
    if (l2_hit) {
        rec.level = AccessLevel::L2;
        traffic_.addMessage(rec.home, node, config_.lineFlits());
        return rec;
    }

    // L2 miss: home bank forwards to the MC (2,3); data returns to the
    // home bank (4) and then the requester's L1.
    rec.level = AccessLevel::Memory;
    rec.mc = addrMap_.memoryControllerNode(access.addr);
    rec.memKind = memoryKindOf(access.array);
    rec.dram = addrMap_.dramCoord(access.addr);
    traffic_.addMessage(rec.home, rec.mc, 1);
    mcAt(rec.mc).recordAccess();
    // Critical-word-first: the MC sends the data directly to the
    // requester; the home-bank fill travels as a separate copy off the
    // critical path. This is what makes the MC a meaningful *location*
    // for predicted-miss data (Section 4.1): a consumer placed near
    // the MC shortens the response leg.
    traffic_.addMessage(rec.mc, node, config_.lineFlits());
    traffic_.addMessage(rec.mc, rec.home, config_.lineFlits());
    return rec;
}

AccessRecord
ManycoreSystem::walkWrite(noc::NodeId node, const MemAccess &access)
{
    AccessRecord rec;
    rec.addr = access.addr;
    rec.requester = node;
    rec.isWrite = true;
    rec.home = addrMap_.homeBankNode(access.addr);

    // Allocate locally, then write the result through to its home bank
    // (the store node of Section 4.3 keeps the output at its home).
    auto &l1 = l1s_[static_cast<std::size_t>(node)];
    l1.access(access.addr);
    const std::int64_t flits =
        std::max<std::int64_t>(1, access.size / config_.flitBytes);
    if (node != rec.home)
        traffic_.addMessage(node, rec.home, flits);
    l2Banks_[static_cast<std::size_t>(rec.home)].access(access.addr);
    rec.level = AccessLevel::L2;
    return rec;
}

void
ManycoreSystem::recordResultMessage(noc::NodeId from, noc::NodeId to,
                                    std::int64_t bytes)
{
    if (from == to)
        return;
    const std::int64_t flits =
        std::max<std::int64_t>(1, bytes / config_.flitBytes);
    traffic_.addMessage(from, to, flits);
}

ManycoreSystem::LatencyParts
ManycoreSystem::accessLatency(const AccessRecord &rec)
{
    LatencyParts parts;
    if (rec.isWrite) {
        // Posted write: the core only pays the L1 fill; the line
        // travels to its home bank off the critical path (its traffic
        // still contributes to congestion).
        parts.core = config_.l1HitCycles;
        return parts;
    }
    switch (rec.level) {
      case AccessLevel::L1:
        parts.core = config_.l1HitCycles;
        return parts;
      case AccessLevel::L2:
        parts.core = config_.l1HitCycles + config_.l2BankCycles;
        parts.network =
            noc_.messageLatency(rec.requester, rec.home, 1, traffic_) +
            noc_.messageLatency(rec.home, rec.requester,
                                config_.lineFlits(), traffic_);
        return parts;
      case AccessLevel::Memory:
        parts.core = config_.l1HitCycles + config_.l2BankCycles;
        parts.network =
            noc_.messageLatency(rec.requester, rec.home, 1, traffic_) +
            noc_.messageLatency(rec.home, rec.mc, 1, traffic_) +
            noc_.messageLatency(rec.mc, rec.requester,
                                config_.lineFlits(), traffic_);
        parts.memory = mcAt(rec.mc).serviceLatency(rec.addr, rec.memKind,
                                                   rec.dram);
        return parts;
    }
    ndp::panic("unreachable access level");
}

std::int64_t
ManycoreSystem::resultMessageLatency(noc::NodeId from, noc::NodeId to,
                                     std::int64_t bytes)
{
    if (from == to)
        return 0;
    const std::int64_t flits =
        std::max<std::int64_t>(1, bytes / config_.flitBytes);
    return noc_.messageLatency(from, to, flits, traffic_);
}

mem::CacheStats
ManycoreSystem::l1Stats() const
{
    mem::CacheStats total;
    for (const auto &l1 : l1s_) {
        total.hits += l1.stats().hits;
        total.misses += l1.stats().misses;
    }
    return total;
}

mem::CacheStats
ManycoreSystem::l2Stats() const
{
    mem::CacheStats total;
    for (const auto &bank : l2Banks_) {
        total.hits += bank.stats().hits;
        total.misses += bank.stats().misses;
    }
    return total;
}

bool
ManycoreSystem::l1Contains(noc::NodeId n, mem::Addr addr) const
{
    return l1s_[static_cast<std::size_t>(n)].contains(addr);
}

void
ManycoreSystem::reset()
{
    for (auto &l1 : l1s_) {
        l1.flush();
        l1.resetStats();
    }
    for (auto &bank : l2Banks_) {
        bank.flush();
        bank.resetStats();
    }
    for (auto &mc : mcs_)
        mc->reset();
    traffic_.reset();
    noc_.resetStats();
    // Note: the miss predictor is deliberately NOT reset here — it is
    // the compiler's profile-trained state and must survive across the
    // baseline/optimized simulation runs. Use resetPredictor().
}

void
ManycoreSystem::resetMeasurement()
{
    for (auto &l1 : l1s_)
        l1.resetStats();
    for (auto &bank : l2Banks_)
        bank.resetStats();
    for (auto &mc : mcs_)
        mc->reset();
    traffic_.reset();
    noc_.resetStats();
}

void
ManycoreSystem::resetPredictor()
{
    predictor_.reset();
}

} // namespace ndp::sim
