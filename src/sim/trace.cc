#include "sim/trace.h"

#include <algorithm>
#include <ostream>

#include "support/error.h"

namespace ndp::sim {

std::vector<std::int64_t>
ExecutionTrace::nodeBusy(std::int32_t node_count) const
{
    std::vector<std::int64_t> busy(
        static_cast<std::size_t>(node_count), 0);
    for (const TraceEvent &e : events_) {
        NDP_CHECK(e.node >= 0 && e.node < node_count,
                  "trace event on unknown node " << e.node);
        busy[static_cast<std::size_t>(e.node)] += e.finish - e.start;
    }
    return busy;
}

std::vector<std::int64_t>
ExecutionTrace::nodeWaited(std::int32_t node_count) const
{
    std::vector<std::int64_t> waited(
        static_cast<std::size_t>(node_count), 0);
    for (const TraceEvent &e : events_)
        waited[static_cast<std::size_t>(e.node)] += e.waited;
    return waited;
}

std::int64_t
ExecutionTrace::makespan() const
{
    std::int64_t last = 0;
    for (const TraceEvent &e : events_)
        last = std::max(last, e.finish);
    return last;
}

std::vector<double>
ExecutionTrace::nodeUtilization(std::int32_t node_count) const
{
    const std::int64_t span = makespan();
    std::vector<double> util(static_cast<std::size_t>(node_count), 0.0);
    if (span == 0)
        return util;
    const std::vector<std::int64_t> busy = nodeBusy(node_count);
    for (std::size_t n = 0; n < util.size(); ++n)
        util[n] = static_cast<double>(busy[n]) /
                  static_cast<double>(span);
    return util;
}

double
ExecutionTrace::imbalance(std::int32_t node_count) const
{
    const std::vector<std::int64_t> busy = nodeBusy(node_count);
    std::int64_t max_busy = 0;
    std::int64_t total = 0;
    std::int32_t active = 0;
    for (std::int64_t b : busy) {
        if (b > 0) {
            max_busy = std::max(max_busy, b);
            total += b;
            ++active;
        }
    }
    if (active == 0 || total == 0)
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(active);
    return static_cast<double>(max_busy) / mean;
}

void
ExecutionTrace::writeCsv(std::ostream &os) const
{
    os << "task,node,start,finish,waited,offloaded\n";
    for (const TraceEvent &e : events_) {
        os << e.task << ',' << e.node << ',' << e.start << ','
           << e.finish << ',' << e.waited << ','
           << (e.offloaded ? 1 : 0) << '\n';
    }
}

} // namespace ndp::sim
