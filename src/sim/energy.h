#ifndef NDP_SIM_ENERGY_H
#define NDP_SIM_ENERGY_H

/**
 * @file
 * Event-based energy model standing in for the paper's CACTI/McPAT
 * numbers (Section 6.6, Figure 24). Per-event energies are in
 * picojoules; the absolute values are representative constants for a
 * 14nm manycore, but only *relative* energy between schemes matters for
 * the reproduced figure.
 */

#include <cstdint>

namespace ndp::sim {

/** Per-event energy constants (picojoules). */
struct EnergyParams
{
    double aluPerOpUnit = 2.0;      ///< per abstract op-cost unit
    double l1Access = 1.2;
    double l2Access = 6.0;
    double linkPerFlitHop = 0.9;    ///< per flit per link traversed
    double mcdramAccess = 40.0;
    double ddrAccess = 85.0;
    double syncOperation = 5.0;
    double staticPerNodeCycle = 0.05; ///< leakage per node per cycle
};

/** Component totals (picojoules). */
struct EnergyBreakdown
{
    double compute = 0.0;
    double l1 = 0.0;
    double l2 = 0.0;
    double network = 0.0;
    double memory = 0.0;
    double sync = 0.0;
    double staticLeakage = 0.0;

    double
    total() const
    {
        return compute + l1 + l2 + network + memory + sync +
               staticLeakage;
    }
};

/** Raw event counts the engine feeds to the model. */
struct EnergyEvents
{
    std::int64_t opUnits = 0;
    std::int64_t l1Accesses = 0;
    std::int64_t l2Accesses = 0;
    std::int64_t flitHops = 0;
    std::int64_t mcdramAccesses = 0;
    std::int64_t ddrAccesses = 0;
    std::int64_t syncs = 0;
    std::int64_t nodeCount = 0;
    std::int64_t makespanCycles = 0;
};

/** Apply @p params to @p events. */
EnergyBreakdown computeEnergy(const EnergyEvents &events,
                              const EnergyParams &params);

} // namespace ndp::sim

#endif // NDP_SIM_ENERGY_H
