#ifndef NDP_SIM_TRACE_H
#define NDP_SIM_TRACE_H

/**
 * @file
 * Execution tracing and per-node utilisation analysis. When attached
 * to the engine, a trace records every task's (node, start, finish)
 * interval; post-processing turns that into the per-node occupancy
 * timeline behind the load-balance discussions of Section 4.5, and a
 * CSV export feeds external plotting.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "noc/coord.h"
#include "sim/plan.h"

namespace ndp::sim {

/** One scheduled task interval. */
struct TraceEvent
{
    TaskId task = kInvalidTask;
    noc::NodeId node = noc::kInvalidNode;
    std::int64_t start = 0;
    std::int64_t finish = 0;
    std::int64_t waited = 0; ///< idle cycles the node spent before it
    bool offloaded = false;
};

/** Recorded schedule of one engine run. */
class ExecutionTrace
{
  public:
    void
    record(TaskId task, noc::NodeId node, std::int64_t start,
           std::int64_t finish, std::int64_t waited, bool offloaded)
    {
        events_.push_back({task, node, start, finish, waited,
                           offloaded});
    }

    void clear() { events_.clear(); }
    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }

    /** Busy cycles per node (index = NodeId). */
    std::vector<std::int64_t> nodeBusy(std::int32_t node_count) const;

    /** Idle-waiting cycles per node. */
    std::vector<std::int64_t> nodeWaited(std::int32_t node_count) const;

    /**
     * Utilisation (busy / makespan) per node; 0 for idle nodes. The
     * max/mean ratio of this vector is the load-imbalance figure the
     * balancer is meant to bound.
     */
    std::vector<double> nodeUtilization(std::int32_t node_count) const;

    /** Max-over-mean utilisation across nodes with any work (>= 1). */
    double imbalance(std::int32_t node_count) const;

    /** Latest finish time across all events. */
    std::int64_t makespan() const;

    /**
     * Write one row per event as CSV:
     * task,node,start,finish,waited,offloaded
     */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<TraceEvent> events_;
};

} // namespace ndp::sim

#endif // NDP_SIM_TRACE_H
