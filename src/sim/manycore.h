#ifndef NDP_SIM_MANYCORE_H
#define NDP_SIM_MANYCORE_H

/**
 * @file
 * The modelled manycore: an M x N mesh of tiles, each with a core, a
 * private L1, and one bank of the shared SNUCA L2 (Figure 1); corner
 * memory controllers; and the KNL-style cluster/memory modes. The
 * system walks individual memory accesses through the hierarchy
 * (pass 1), producing AccessRecords that pass 2 converts to cycles.
 */

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "mem/address_mapping.h"
#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "mem/miss_predictor.h"
#include "noc/mesh_topology.h"
#include "noc/noc_model.h"
#include "noc/traffic_matrix.h"
#include "sim/plan.h"

namespace ndp::sim {

/** Full configuration of the modelled machine. */
struct ManycoreConfig
{
    std::int32_t meshCols = 6; ///< KNL: 36 tiles in a 6x6 arrangement
    std::int32_t meshRows = 6;
    /** Wrap-around links (torus) instead of a plain mesh. */
    bool torus = false;
    mem::ClusterMode clusterMode = mem::ClusterMode::Quadrant;
    mem::MemoryMode memoryMode = mem::MemoryMode::Flat;

    // Cache capacities are scaled down with the synthetic datasets so
    // steady-state L2 miss rates land in the paper's 16-37% band; the
    // KNL values (32KB L1, 1MB L2 bank) apply at proportionally larger
    // problem scales.
    std::uint64_t l1Bytes = 4 * 1024;
    std::uint32_t l1Ways = 4;
    std::uint64_t l2BankBytes = 32 * 1024;
    std::uint32_t l2Ways = 8;

    std::int64_t l1HitCycles = 2;
    std::int64_t l2BankCycles = 20;
    std::int64_t computeCyclesPerOpUnit = 9;
    /**
     * Fixed per-task issue cost (loop control, address generation,
     * spawn bookkeeping). Charged to every task, so plans with more
     * subcomputation tasks pay proportionally more — the distribution
     * overhead of the approach.
     */
    std::int64_t perTaskOverheadCycles = 18;
    /** Fixed handshake cost per cross-node synchronisation wait. */
    std::int64_t syncOverheadCycles = 30;
    /** Core cycles to emit one cross-node result message. */
    std::int64_t sendCycles = 8;
    /** Core cycles to receive/integrate one cross-node result. */
    std::int64_t recvCycles = 14;
    /** Flit payload in bytes (64B line = 8 flits). */
    std::int64_t flitBytes = 8;

    noc::NocParams noc;
    mem::MemoryControllerParams mc;

    /**
     * Fault set of the modelled chip: dead/degraded nodes and failed
     * links. The default (empty) model is the healthy machine and
     * changes nothing. A non-empty model makes the mesh route around
     * failures, re-homes dead L2 banks, and slows degraded cores by
     * faults.degradeFactor(); construction is fatal if the surviving
     * mesh is disconnected or a corner MC node is dead.
     */
    fault::FaultModel faults;

    std::int64_t
    lineFlits() const
    {
        return static_cast<std::int64_t>(mem::kLineSize) / flitBytes;
    }
};

/** Where an access was satisfied. */
enum class AccessLevel : std::uint8_t
{
    L1,
    L2,
    Memory,
};

/**
 * Outcome of one walked access; everything pass 2 needs to price it
 * without re-running the caches.
 */
struct AccessRecord
{
    AccessLevel level = AccessLevel::L1;
    mem::Addr addr = 0;
    noc::NodeId requester = noc::kInvalidNode;
    noc::NodeId home = noc::kInvalidNode; ///< home L2 bank node
    noc::NodeId mc = noc::kInvalidNode;   ///< servicing MC (Memory only)
    mem::MemoryKind memKind = mem::MemoryKind::Ddr;
    mem::DramCoord dram;
    bool isWrite = false;
};

/**
 * The machine model. Owns every cache/controller and the traffic
 * matrix; exposes the pass-1 access walk and the pass-2 latency
 * calculation.
 */
class ManycoreSystem
{
  public:
    explicit ManycoreSystem(const ManycoreConfig &config);

    const ManycoreConfig &config() const { return config_; }
    const noc::MeshTopology &mesh() const { return mesh_; }
    const mem::AddressMap &addressMap() const { return addrMap_; }
    mem::AddressMap &addressMap() { return addrMap_; }
    noc::TrafficMatrix &traffic() { return traffic_; }
    const noc::TrafficMatrix &traffic() const { return traffic_; }
    noc::NocModel &nocModel() { return noc_; }
    mem::MissPredictor &missPredictor() { return predictor_; }

    /** Arrays placed into MCDRAM in flat/hybrid memory mode. */
    void setMcdramArrays(std::unordered_set<ir::ArrayId> arrays);

    /** Backing memory of @p array under the current memory mode. */
    mem::MemoryKind memoryKindOf(ir::ArrayId array) const;

    /**
     * Pass 1: walk a read from @p node through L1 -> home L2 -> MC,
     * updating caches, the traffic matrix, MC queue load, and the L2
     * miss predictor. Returns the record pass 2 will price.
     */
    AccessRecord walkRead(noc::NodeId node, const MemAccess &access);

    /**
     * Pass 1: walk a (write-through) store: allocate in the local L1,
     * send the line to its home bank, allocate there.
     */
    AccessRecord walkWrite(noc::NodeId node, const MemAccess &access);

    /** Pass 1: account a task-result message from @p from to @p to. */
    void recordResultMessage(noc::NodeId from, noc::NodeId to,
                             std::int64_t bytes);

    /**
     * Latency decomposition of one access, so the engine can scale or
     * zero the network component (ideal-network mode, Figure 18's S2).
     */
    struct LatencyParts
    {
        std::int64_t core = 0;    ///< L1 / L2 bank / pipeline cycles
        std::int64_t network = 0; ///< on-chip network cycles
        std::int64_t memory = 0;  ///< MC queue + DRAM cycles

        std::int64_t total() const { return core + network + memory; }
    };

    /**
     * Pass 2: cycles the requesting core stalls for @p record,
     * including congestion from the pass-1 traffic.
     */
    LatencyParts accessLatency(const AccessRecord &record);

    /** Pass 2: network latency of a result message (0 when local). */
    std::int64_t resultMessageLatency(noc::NodeId from, noc::NodeId to,
                                      std::int64_t bytes);

    /** Aggregated L1 statistics over all nodes. */
    mem::CacheStats l1Stats() const;
    /** Aggregated L2 statistics over all banks. */
    mem::CacheStats l2Stats() const;

    /** Non-allocating probe: is @p addr in node @p n's L1 right now? */
    bool l1Contains(noc::NodeId n, mem::Addr addr) const;

    /** Clear caches/traffic/stats for a fresh run (keeps predictor). */
    void reset();

    /**
     * Clear statistics, traffic, and queue pressure but KEEP cache
     * contents (and the predictor): used after warm-up passes so
     * measurement covers one steady-state trip.
     */
    void resetMeasurement();

    /** Clear the (profile-trained) L2 miss predictor as well. */
    void resetPredictor();

  private:
    mem::MemoryController &mcAt(noc::NodeId node);

    ManycoreConfig config_;
    noc::MeshTopology mesh_;
    mem::AddressMap addrMap_;
    noc::TrafficMatrix traffic_;
    noc::NocModel noc_;
    mem::MissPredictor predictor_;
    std::vector<mem::SetAssocCache> l1s_;
    std::vector<mem::SetAssocCache> l2Banks_;
    std::vector<std::unique_ptr<mem::MemoryController>> mcs_; // 4 corners
    std::unordered_set<ir::ArrayId> mcdramArrays_;
};

} // namespace ndp::sim

#endif // NDP_SIM_MANYCORE_H
