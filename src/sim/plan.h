#ifndef NDP_SIM_PLAN_H
#define NDP_SIM_PLAN_H

/**
 * @file
 * The execution-plan interface between the compiler side (partitioner /
 * baseline placement) and the simulator. A plan is a DAG of Tasks; each
 * task runs on one mesh node, performs memory reads, a computation, and
 * optionally a store, and may depend on other tasks whose results are
 * sent to it over the network (the paper's point-to-point
 * synchronisations, Section 4.5).
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/array.h"
#include "ir/ops.h"
#include "noc/coord.h"

namespace ndp::sim {

/** One memory access performed by a task. */
struct MemAccess
{
    mem::Addr addr = 0;
    std::uint32_t size = 8;
    ir::ArrayId array = ir::kInvalidArray;
};

using TaskId = std::int32_t;
inline constexpr TaskId kInvalidTask = -1;

/**
 * One unit of scheduled work. In the default plan a task is a whole
 * statement instance; in the optimized plan it is a subcomputation.
 */
struct Task
{
    TaskId id = kInvalidTask;
    noc::NodeId node = noc::kInvalidNode;

    /** Operands fetched by this task from this node. */
    std::vector<MemAccess> reads;
    /** Final store (only the task holding the statement's result). */
    std::optional<MemAccess> write;

    /** Abstract op cost (division = 10 units, Section 4.5). */
    std::int64_t computeCost = 0;
    /** Operator kinds executed here (Table 3 accounting). */
    std::vector<ir::OpKind> ops;

    /**
     * Producer tasks whose partial results must arrive before this task
     * runs. Each cross-node edge is one point-to-point synchronisation.
     */
    std::vector<TaskId> deps;
    /** Bytes of the partial result this task forwards to its consumer. */
    std::int64_t resultBytes = 8;

    /** Originating static statement (index into the nest body). */
    std::int32_t statementIndex = -1;
    /** Lexicographic iteration number of the originating instance. */
    std::int64_t iterationNumber = -1;
    /** True for offloaded subcomputations (re-mapped work, Table 3). */
    bool isSubcomputation = false;
};

/** Per-statement-instance planning statistics (Figures 13-15). */
struct InstanceStats
{
    std::int32_t statementIndex = -1;
    std::int64_t iterationNumber = -1;
    /** Equation-1 data movement (link traversals) planned. */
    std::int64_t dataMovement = 0;
    /** Data movement the default placement would have incurred. */
    std::int64_t defaultDataMovement = 0;
    /** Subcomputations of this instance that can run in parallel. */
    std::int32_t degreeOfParallelism = 1;
    /** Point-to-point synchronisations after minimisation. */
    std::int32_t synchronizations = 0;
    /** Synchronisations before transitive reduction (for reporting). */
    std::int32_t rawSynchronizations = 0;
};

/** A complete schedule for one loop nest. */
struct ExecutionPlan
{
    std::string name;
    /**
     * Tasks in issue order: producers precede consumers, and tasks on
     * the same node appear in their program order.
     */
    std::vector<Task> tasks;
    std::vector<InstanceStats> instances;

    /** Window size the planner settled on (optimized plans only). */
    std::int32_t windowSize = 1;

    std::int64_t
    totalPlannedMovement() const
    {
        std::int64_t total = 0;
        for (const InstanceStats &s : instances)
            total += s.dataMovement;
        return total;
    }

    std::int64_t
    totalDefaultMovement() const
    {
        std::int64_t total = 0;
        for (const InstanceStats &s : instances)
            total += s.defaultDataMovement;
        return total;
    }
};

} // namespace ndp::sim

#endif // NDP_SIM_PLAN_H
