#ifndef NDP_SIM_ENGINE_H
#define NDP_SIM_ENGINE_H

/**
 * @file
 * Deterministic two-pass execution engine.
 *
 * Pass 1 walks every task's memory accesses through the cache hierarchy
 * (warming caches and recording per-link traffic). Pass 2 replays the
 * plan against per-node clocks: a task starts when its node is free and
 * all producer results have arrived (each cross-node arrival is one
 * point-to-point synchronisation); it then stalls for its access
 * latencies and computes. The makespan is the latest finish time.
 *
 * EngineOptions exposes the isolation knobs of Figure 18 (S1..S4) and
 * the ideal-network mode of Section 6.4.
 */

#include <cstdint>
#include <vector>

#include "mem/cache.h"
#include "sim/energy.h"
#include "sim/manycore.h"
#include "sim/plan.h"
#include "sim/trace.h"

namespace ndp::sim {

/** Behaviour switches for one engine run. */
struct EngineOptions
{
    /** All network messages take 0 cycles (Section 6.4 ideal network). */
    bool idealNetwork = false;
    /**
     * Force this L1 hit rate by probabilistically converting hits to
     * misses or vice versa (Figure 18, S1). Negative = disabled.
     */
    double l1HitRateOverride = -1.0;
    /** Scale factor on every network latency (Figure 18, S2). */
    double networkScale = 1.0;
    /** Divide compute time by this factor (Figure 18, S3). */
    double parallelismSpeedup = 1.0;
    /** Inject this many extra synchronisations (Figure 18, S4). */
    std::int64_t extraSyncs = 0;
    /** Seed for the S1 conversion draws. */
    std::uint64_t seed = 0x5eed;
    /**
     * Optional execution trace: when set, every executed task's
     * (node, start, finish, wait) interval is recorded for
     * utilisation analysis / CSV export. Cleared at run start.
     */
    ExecutionTrace *trace = nullptr;
    /**
     * Silent passes over the plan's accesses before measurement,
     * modelling the earlier trips of the application's outer timing
     * loop: caches reach steady state, then statistics are measured
     * over one trip. 0 measures a cold machine.
     */
    std::int32_t warmupPasses = 1;
};

/** Everything a run produces. */
struct SimResult
{
    std::int64_t makespanCycles = 0;
    /** Sum of per-task busy cycles (work, not wall-clock). */
    std::int64_t totalBusyCycles = 0;
    std::int64_t taskCount = 0;

    /** Equation-1 data movement actually incurred (flit-hops). */
    std::int64_t dataMovementFlitHops = 0;
    std::int64_t networkMessages = 0;
    double avgNetworkLatency = 0.0;
    double maxNetworkLatency = 0.0;

    mem::CacheStats l1;
    mem::CacheStats l2;

    std::int64_t syncCount = 0;
    std::int64_t syncWaitCycles = 0;

    std::int64_t computeCycles = 0;
    std::int64_t networkStallCycles = 0;
    std::int64_t memoryStallCycles = 0;

    EnergyBreakdown energy;

    double l1HitRate() const { return l1.hitRate(); }
};

/** Runs ExecutionPlans on a ManycoreSystem. */
class ExecutionEngine
{
  public:
    explicit ExecutionEngine(ManycoreSystem &system,
                             EnergyParams energy_params = {});

    /**
     * Simulate @p plan from a cold machine. The system is reset first;
     * the result captures every paper metric for this run.
     */
    SimResult run(const ExecutionPlan &plan,
                  const EngineOptions &options = {});

  private:
    ManycoreSystem *system_;
    EnergyParams energyParams_;
};

} // namespace ndp::sim

#endif // NDP_SIM_ENGINE_H
