#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/error.h"
#include "support/rng.h"

namespace ndp::sim {

ExecutionEngine::ExecutionEngine(ManycoreSystem &system,
                                 EnergyParams energy_params)
    : system_(&system), energyParams_(energy_params)
{
}

SimResult
ExecutionEngine::run(const ExecutionPlan &plan, const EngineOptions &opts)
{
    ManycoreSystem &sys = *system_;
    const ManycoreConfig &cfg = sys.config();
    sys.reset();

    // ---- Warm-up: earlier trips of the outer timing loop. Cache and
    // predictor state persists; statistics and traffic are discarded.
    for (std::int32_t w = 0; w < opts.warmupPasses; ++w) {
        for (const Task &task : plan.tasks) {
            for (const MemAccess &read : task.reads)
                sys.walkRead(task.node, read);
            if (task.write)
                sys.walkWrite(task.node, *task.write);
        }
    }
    if (opts.warmupPasses > 0)
        sys.resetMeasurement();

    // ---- Pass 1: warm caches, record traffic and queue pressure. ----
    std::vector<std::vector<AccessRecord>> records(plan.tasks.size());
    std::int64_t mcdram_accesses = 0;
    std::int64_t ddr_accesses = 0;
    for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
        const Task &task = plan.tasks[t];
        NDP_CHECK(task.node >= 0 && task.node < sys.mesh().nodeCount(),
                  "task " << task.id << " scheduled on bad node");
        NDP_CHECK(sys.mesh().isLive(task.node),
                  "task " << task.id << " scheduled on dead node "
                          << task.node << " (fault epoch "
                          << sys.mesh().faults().signature() << ": "
                          << sys.mesh().faults().describe()
                          << "); run with NDP_VERIFY=cheap to catch "
                             "this at plan time (rule R5)");
        auto &recs = records[t];
        recs.reserve(task.reads.size() + 1);
        for (const MemAccess &read : task.reads) {
            AccessRecord rec = sys.walkRead(task.node, read);
            if (rec.level == AccessLevel::Memory) {
                if (rec.memKind == mem::MemoryKind::Mcdram)
                    ++mcdram_accesses;
                else
                    ++ddr_accesses;
            }
            recs.push_back(rec);
        }
        if (task.write)
            recs.push_back(sys.walkWrite(task.node, *task.write));
        for (TaskId dep : task.deps) {
            NDP_CHECK(dep >= 0 && static_cast<std::size_t>(dep) < t + 1,
                      "dep " << dep << " does not precede task "
                             << task.id);
            const Task &producer = plan.tasks[static_cast<std::size_t>(dep)];
            sys.recordResultMessage(producer.node, task.node,
                                    producer.resultBytes);
        }
    }

    const mem::CacheStats l1_after_pass1 = sys.l1Stats();
    const double natural_hit_rate = l1_after_pass1.hitRate();

    // ---- Pass 2: price the plan with ready-list scheduling. ----
    // Each node runs one task at a time; among the tasks whose
    // producers have finished, the earliest-startable runs first. This
    // lets independent subcomputations from other statements fill a
    // node's wait gaps — the subcomputation-level parallelism the
    // paper exploits (Section 4.5).
    SimResult result;
    result.taskCount = static_cast<std::int64_t>(plan.tasks.size());

    if (opts.trace)
        opts.trace->clear();
    Rng rng(opts.seed);
    std::vector<std::int64_t> node_clock(
        static_cast<std::size_t>(sys.mesh().nodeCount()), 0);
    std::vector<std::int64_t> finish(plan.tasks.size(), 0);
    std::vector<std::int64_t> ready(plan.tasks.size(), 0);
    std::vector<std::int32_t> pending(plan.tasks.size(), 0);
    std::vector<std::vector<TaskId>> consumers(plan.tasks.size());

    const double net_scale = opts.idealNetwork ? 0.0 : opts.networkScale;

    for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
        const Task &task = plan.tasks[t];
        pending[t] = static_cast<std::int32_t>(task.deps.size());
        for (TaskId dep : task.deps) {
            consumers[static_cast<std::size_t>(dep)].push_back(
                static_cast<TaskId>(t));
        }
    }

    // Min-heap of (estimated start, task); lazily re-pushed when the
    // estimate was stale.
    using HeapEntry = std::pair<std::int64_t, TaskId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap;
    for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
        if (pending[t] == 0)
            heap.push({0, static_cast<TaskId>(t)});
    }

    // Price one task's memory stalls and compute.
    auto busy_cycles = [&](std::size_t t) -> std::int64_t {
        const Task &task = plan.tasks[t];
        const double natural_hit_rate_local = natural_hit_rate;
        std::int64_t stall_core = 0;
        std::int64_t stall_net = 0;
        std::int64_t stall_mem = 0;
        for (const AccessRecord &rec_in : records[t]) {
            AccessRecord rec = rec_in;
            // S1: enforce a donor L1 hit/miss profile by converting
            // outcomes until the target rate is met in expectation.
            if (opts.l1HitRateOverride >= 0.0 && !rec.isWrite) {
                const double target = opts.l1HitRateOverride;
                if (target > natural_hit_rate_local &&
                    rec.level != AccessLevel::L1) {
                    const double p =
                        (target - natural_hit_rate_local) /
                        std::max(1e-9, 1.0 - natural_hit_rate_local);
                    if (rng.nextBool(p))
                        rec.level = AccessLevel::L1;
                } else if (target < natural_hit_rate_local &&
                           rec.level == AccessLevel::L1) {
                    const double p =
                        (natural_hit_rate_local - target) /
                        std::max(1e-9, natural_hit_rate_local);
                    if (rng.nextBool(p)) {
                        rec.level = AccessLevel::L2;
                        rec.home =
                            sys.addressMap().homeBankNode(rec.addr);
                    }
                }
            }
            const ManycoreSystem::LatencyParts parts =
                sys.accessLatency(rec);
            stall_core += parts.core;
            stall_net += static_cast<std::int64_t>(std::llround(
                static_cast<double>(parts.network) * net_scale));
            stall_mem += parts.memory;
        }

        std::int64_t compute =
            task.computeCost * cfg.computeCyclesPerOpUnit;
        // A degraded (binned / DVFS-capped) tile computes slower by
        // the model's factor; its caches and links run at full speed.
        if (sys.mesh().hasFaults() &&
            sys.mesh().faults().isDegraded(task.node)) {
            compute = static_cast<std::int64_t>(
                std::llround(static_cast<double>(compute) *
                             sys.mesh().faults().degradeFactor()));
        }
        if (opts.parallelismSpeedup > 1.0) {
            compute = static_cast<std::int64_t>(
                std::llround(static_cast<double>(compute) /
                             opts.parallelismSpeedup));
        }
        // Message-handling work: receiving each cross-node partial
        // result and sending one to each cross-node consumer costs
        // core cycles, so communication is never free even when its
        // network latency hides.
        std::int64_t messaging = 0;
        for (TaskId dep : task.deps) {
            if (plan.tasks[static_cast<std::size_t>(dep)].node !=
                task.node)
                messaging += cfg.recvCycles;
        }
        for (TaskId c : consumers[t]) {
            if (plan.tasks[static_cast<std::size_t>(c)].node !=
                task.node)
                messaging += cfg.sendCycles;
        }
        result.computeCycles += compute;
        result.networkStallCycles += stall_net;
        result.memoryStallCycles += stall_mem;
        return cfg.perTaskOverheadCycles + stall_core + stall_net +
               stall_mem + compute + messaging;
    };

    std::size_t executed = 0;
    while (!heap.empty()) {
        const auto [est, tid] = heap.top();
        heap.pop();
        const auto t = static_cast<std::size_t>(tid);
        const Task &task = plan.tasks[t];
        const auto node = static_cast<std::size_t>(task.node);
        const std::int64_t start =
            std::max(node_clock[node], ready[t]);
        if (start > est) {
            heap.push({start, tid}); // stale estimate; retry later
            continue;
        }
        if (ready[t] > node_clock[node])
            result.syncWaitCycles += ready[t] - node_clock[node];

        const std::int64_t busy = busy_cycles(t);
        finish[t] = start + busy;
        const std::int64_t waited =
            std::max<std::int64_t>(0, ready[t] - node_clock[node]);
        node_clock[node] = finish[t];
        result.totalBusyCycles += busy;
        ++executed;
        if (opts.trace) {
            opts.trace->record(tid, task.node, start, finish[t],
                               waited, task.isSubcomputation);
        }

        for (TaskId c : consumers[t]) {
            const auto ci = static_cast<std::size_t>(c);
            const Task &consumer = plan.tasks[ci];
            std::int64_t arrival = finish[t];
            if (task.node != consumer.node) {
                const std::int64_t net = sys.resultMessageLatency(
                    task.node, consumer.node, task.resultBytes);
                arrival += static_cast<std::int64_t>(std::llround(
                    static_cast<double>(net) * net_scale));
                arrival += cfg.syncOverheadCycles;
                ++result.syncCount;
            }
            ready[ci] = std::max(ready[ci], arrival);
            if (--pending[ci] == 0) {
                heap.push({std::max(ready[ci],
                                    node_clock[static_cast<std::size_t>(
                                        consumer.node)]),
                           c});
            }
        }
    }
    NDP_CHECK(executed == plan.tasks.size(),
              "dependence cycle: executed " << executed << " of "
                                            << plan.tasks.size());

    for (std::int64_t clock : node_clock)
        result.makespanCycles = std::max(result.makespanCycles, clock);

    // S4: injected synchronisations serialise on the busiest node.
    if (opts.extraSyncs > 0) {
        result.syncCount += opts.extraSyncs;
        const std::int64_t penalty =
            opts.extraSyncs * cfg.syncOverheadCycles /
            std::max<std::int64_t>(1, sys.mesh().nodeCount());
        result.makespanCycles += penalty;
        result.syncWaitCycles += penalty;
    }

    // ---- Metrics. ----
    result.dataMovementFlitHops = sys.traffic().totalFlitHops();
    result.networkMessages = sys.traffic().messageCount();
    result.avgNetworkLatency = sys.nocModel().latencyStats().mean();
    result.maxNetworkLatency = sys.nocModel().latencyStats().max();
    result.l1 = sys.l1Stats();
    result.l2 = sys.l2Stats();

    EnergyEvents events;
    for (const Task &task : plan.tasks)
        events.opUnits += task.computeCost;
    events.l1Accesses = result.l1.accesses();
    events.l2Accesses = result.l2.accesses();
    events.flitHops = result.dataMovementFlitHops;
    events.mcdramAccesses = mcdram_accesses;
    events.ddrAccesses = ddr_accesses;
    events.syncs = result.syncCount;
    events.nodeCount = sys.mesh().nodeCount();
    events.makespanCycles = result.makespanCycles;
    result.energy = computeEnergy(events, energyParams_);

    return result;
}

} // namespace ndp::sim
