#include "sim/energy.h"

namespace ndp::sim {

EnergyBreakdown
computeEnergy(const EnergyEvents &events, const EnergyParams &params)
{
    EnergyBreakdown out;
    out.compute =
        params.aluPerOpUnit * static_cast<double>(events.opUnits);
    out.l1 = params.l1Access * static_cast<double>(events.l1Accesses);
    out.l2 = params.l2Access * static_cast<double>(events.l2Accesses);
    out.network =
        params.linkPerFlitHop * static_cast<double>(events.flitHops);
    out.memory =
        params.mcdramAccess * static_cast<double>(events.mcdramAccesses) +
        params.ddrAccess * static_cast<double>(events.ddrAccesses);
    out.sync = params.syncOperation * static_cast<double>(events.syncs);
    out.staticLeakage = params.staticPerNodeCycle *
                        static_cast<double>(events.nodeCount) *
                        static_cast<double>(events.makespanCycles);
    return out;
}

} // namespace ndp::sim
