#ifndef NDP_NDP_H
#define NDP_NDP_H

/**
 * @file
 * Umbrella header for the NDP computation-partitioning library — a
 * reproduction of Tang et al., "Data Movement Aware Computation
 * Partitioning" (MICRO-50, 2017).
 *
 * Layer map (each usable independently):
 *
 *   ndp::noc        — 2D-mesh topology, XY routing, traffic/latency
 *   ndp::mem        — SNUCA address mapping, caches, MCs, predictor
 *   ndp::ir         — loop-nest IR, kernel parser, dependence analysis
 *   ndp::sim        — the modelled manycore + two-pass engine
 *   ndp::partition  — THE PAPER'S CONTRIBUTION: MST-based statement
 *                     splitting and window-based subcomputation
 *                     scheduling (Algorithm 1)
 *   ndp::baseline   — the profile-guided default placement and the
 *                     data-to-MC page mapping it is compared against
 *   ndp::workloads  — the 12 synthetic Splash-2/Mantevo stand-ins
 *   ndp::driver     — experiment orchestration for the paper's
 *                     tables and figures
 *
 * Quick start: see examples/quickstart.cpp.
 */

#include "baseline/data_to_mc.h"
#include "baseline/default_placement.h"
#include "driver/experiment.h"
#include "ir/dependence.h"
#include "ir/instance.h"
#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "mem/address_mapping.h"
#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "mem/miss_predictor.h"
#include "noc/mesh_topology.h"
#include "noc/noc_model.h"
#include "noc/traffic_matrix.h"
#include "partition/codegen.h"
#include "partition/data_locator.h"
#include "partition/inspector.h"
#include "partition/load_balancer.h"
#include "partition/partitioner.h"
#include "partition/splitter.h"
#include "partition/sync_graph.h"
#include "sim/energy.h"
#include "sim/engine.h"
#include "sim/manycore.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/workload.h"

#endif // NDP_NDP_H
