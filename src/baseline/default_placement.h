#ifndef NDP_BASELINE_DEFAULT_PLACEMENT_H
#define NDP_BASELINE_DEFAULT_PLACEMENT_H

/**
 * @file
 * The paper's *default* computation placement (Section 6.1): iteration
 * space is divided into chunks and each chunk is assigned — using
 * profile data — to the core that is most beneficial from an LLC/MC
 * locality viewpoint. It is explicitly a *strong*, locality-optimized
 * baseline (the paper measured it ahead of [49] and [17]); iterations
 * are never broken into subcomputations.
 */

#include <cstdint>
#include <vector>

#include "ir/statement.h"
#include "sim/manycore.h"
#include "sim/plan.h"

namespace ndp::baseline {

struct DefaultPlacementOptions
{
    /**
     * Iterations per chunk; 0 = auto (iteration count / node count,
     * at least 1).
     */
    std::int64_t chunkIterations = 0;
    /**
     * Iterations sampled per chunk when profiling its locality cost
     * (the paper's profile pass need not touch every iteration).
     */
    std::int64_t profileSamplesPerChunk = 8;
};

/** Profile-guided iteration-granularity placement. */
class DefaultPlacement
{
  public:
    DefaultPlacement(sim::ManycoreSystem &system,
                     const ir::ArrayTable &arrays,
                     DefaultPlacementOptions options = {});

    /**
     * Assign every iteration (lexicographic order) to a node: chunks
     * go to their locality-cheapest node under an equal-chunks-per-node
     * capacity constraint, which is what keeps this baseline both
     * locality-optimized and load-balanced.
     */
    std::vector<noc::NodeId> assignIterations(const ir::LoopNest &nest);

    /**
     * Lower the assignment to an ExecutionPlan: one task per statement
     * instance on its iteration's node, with cross-node flow
     * dependences preserved.
     */
    sim::ExecutionPlan buildPlan(const ir::LoopNest &nest,
                                 const std::vector<noc::NodeId> &nodes);

  private:
    sim::ManycoreSystem *system_;
    const ir::ArrayTable *arrays_;
    DefaultPlacementOptions options_;
};

} // namespace ndp::baseline

#endif // NDP_BASELINE_DEFAULT_PLACEMENT_H
