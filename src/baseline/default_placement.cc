#include "baseline/default_placement.h"

#include <algorithm>
#include <unordered_map>

#include "ir/instance.h"
#include "support/error.h"

namespace ndp::baseline {

DefaultPlacement::DefaultPlacement(sim::ManycoreSystem &system,
                                   const ir::ArrayTable &arrays,
                                   DefaultPlacementOptions options)
    : system_(&system), arrays_(&arrays), options_(options)
{
}

std::vector<noc::NodeId>
DefaultPlacement::assignIterations(const ir::LoopNest &nest)
{
    const noc::MeshTopology &mesh = system_->mesh();
    const mem::AddressMap &amap = system_->addressMap();
    const std::int64_t iterations = nest.iterationCount();
    const std::int64_t nodes = mesh.nodeCount();
    // The OS scheduler of a degraded chip never dispatches work to
    // disabled tiles: the baseline, too, profiles and assigns over the
    // live pool only. Identical to the full pool on a healthy mesh.
    const std::vector<noc::NodeId> &pool = mesh.liveNodes();
    const auto pool_size = static_cast<std::int64_t>(pool.size());

    std::int64_t chunk = options_.chunkIterations;
    if (chunk <= 0)
        chunk = std::max<std::int64_t>(1, iterations / pool_size);
    const std::int64_t chunk_count = (iterations + chunk - 1) / chunk;

    // ---- Profile: locality cost of each chunk on each node. ----
    // Cost(node) = sum over sampled accesses of the Manhattan distance
    // from the node to the access's home bank (the LLC/MC viewpoint of
    // Section 6.1's profile data).
    std::vector<std::vector<std::int64_t>> cost(
        static_cast<std::size_t>(chunk_count),
        std::vector<std::int64_t>(static_cast<std::size_t>(nodes), 0));

    for (std::int64_t c = 0; c < chunk_count; ++c) {
        const std::int64_t begin = c * chunk;
        const std::int64_t end = std::min(begin + chunk, iterations);
        const std::int64_t span = end - begin;
        const std::int64_t samples =
            std::min(options_.profileSamplesPerChunk, span);
        for (std::int64_t s = 0; s < samples; ++s) {
            const std::int64_t k = begin + s * span / samples;
            ir::StatementInstance inst;
            inst.iter = nest.iterationAt(k);
            inst.iterationNumber = k;
            for (const ir::Statement &stmt : nest.body()) {
                inst.stmt = &stmt;
                for (const ir::ResolvedRef &r :
                     resolveReads(inst, *arrays_)) {
                    const noc::NodeId home = amap.homeBankNode(r.addr);
                    for (noc::NodeId n : pool) {
                        cost[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(n)] +=
                            mesh.distance(n, home);
                    }
                }
                const ir::ResolvedRef w = resolveWrite(inst, *arrays_);
                const noc::NodeId home = amap.homeBankNode(w.addr);
                for (noc::NodeId n : pool) {
                    cost[static_cast<std::size_t>(c)]
                        [static_cast<std::size_t>(n)] +=
                        mesh.distance(n, home);
                }
            }
        }
    }

    // ---- Greedy capacity-constrained assignment. ----
    const std::int64_t capacity = std::max<std::int64_t>(
        1, (chunk_count + pool_size - 1) / pool_size);
    std::vector<std::int64_t> assigned(static_cast<std::size_t>(nodes),
                                       0);
    std::vector<noc::NodeId> chunk_node(
        static_cast<std::size_t>(chunk_count), 0);
    for (std::int64_t c = 0; c < chunk_count; ++c) {
        noc::NodeId best = noc::kInvalidNode;
        std::int64_t best_cost = 0;
        for (noc::NodeId n : pool) {
            if (assigned[static_cast<std::size_t>(n)] >= capacity)
                continue;
            const std::int64_t cn =
                cost[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(n)];
            if (best == noc::kInvalidNode || cn < best_cost) {
                best = n;
                best_cost = cn;
            }
        }
        NDP_CHECK(best != noc::kInvalidNode, "capacity exhausted");
        chunk_node[static_cast<std::size_t>(c)] = best;
        ++assigned[static_cast<std::size_t>(best)];
    }

    std::vector<noc::NodeId> result(
        static_cast<std::size_t>(iterations));
    for (std::int64_t k = 0; k < iterations; ++k)
        result[static_cast<std::size_t>(k)] =
            chunk_node[static_cast<std::size_t>(k / chunk)];
    return result;
}

sim::ExecutionPlan
DefaultPlacement::buildPlan(const ir::LoopNest &nest,
                            const std::vector<noc::NodeId> &nodes)
{
    NDP_REQUIRE(static_cast<std::int64_t>(nodes.size()) ==
                    nest.iterationCount(),
                "assignment size mismatch");
    const noc::MeshTopology &mesh = system_->mesh();
    const mem::AddressMap &amap = system_->addressMap();

    sim::ExecutionPlan plan;
    plan.name = nest.name() + "/default";
    plan.windowSize = 1;

    std::unordered_map<mem::Addr, sim::TaskId> last_writer;
    const auto stmt_count =
        static_cast<std::int64_t>(nest.body().size());

    for (std::int64_t k = 0; k < nest.iterationCount(); ++k) {
        const noc::NodeId node = nodes[static_cast<std::size_t>(k)];
        ir::StatementInstance inst;
        inst.iter = nest.iterationAt(k);
        inst.iterationNumber = k;
        for (std::int64_t s = 0; s < stmt_count; ++s) {
            const ir::Statement &stmt =
                nest.body()[static_cast<std::size_t>(s)];
            inst.stmt = &stmt;
            const ir::ResolvedRef write = resolveWrite(inst, *arrays_);
            const std::vector<ir::ResolvedRef> reads =
                resolveReads(inst, *arrays_);

            sim::Task task;
            task.id = static_cast<sim::TaskId>(plan.tasks.size());
            task.node = node;
            task.computeCost = stmt.totalOpCost();
            task.statementIndex = static_cast<std::int32_t>(s);
            task.iterationNumber = k;

            sim::InstanceStats istats;
            istats.statementIndex = task.statementIndex;
            istats.iterationNumber = k;
            for (const ir::ResolvedRef &r : reads) {
                task.reads.push_back({r.addr, r.size, r.array});
                istats.defaultDataMovement +=
                    mesh.distance(node, amap.homeBankNode(r.addr));
                const auto writer = last_writer.find(r.addr);
                if (writer != last_writer.end() &&
                    plan.tasks[static_cast<std::size_t>(writer->second)]
                            .node != node) {
                    task.deps.push_back(writer->second);
                }
            }
            task.write =
                sim::MemAccess{write.addr, write.size, write.array};
            istats.defaultDataMovement +=
                mesh.distance(node, amap.homeBankNode(write.addr));
            istats.dataMovement = istats.defaultDataMovement;
            last_writer[write.addr] = task.id;

            plan.tasks.push_back(std::move(task));
            plan.instances.push_back(istats);
        }
    }
    return plan;
}

} // namespace ndp::baseline
