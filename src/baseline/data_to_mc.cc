#include "baseline/data_to_mc.h"

#include <array>

#include "ir/instance.h"
#include "support/error.h"

namespace ndp::baseline {

std::unordered_map<std::uint64_t, std::uint32_t>
profilePageToMc(sim::ManycoreSystem &system, const ir::ArrayTable &arrays,
                const ir::LoopNest &nest,
                const std::vector<noc::NodeId> &nodes)
{
    NDP_REQUIRE(static_cast<std::int64_t>(nodes.size()) ==
                    nest.iterationCount(),
                "assignment size mismatch");
    const noc::MeshTopology &mesh = system.mesh();
    const auto &mc_nodes = mesh.memoryControllerNodes();

    // Nearest-MC preference of every core, precomputed.
    std::vector<std::uint32_t> preferred(
        static_cast<std::size_t>(mesh.nodeCount()), 0);
    for (noc::NodeId n = 0; n < mesh.nodeCount(); ++n) {
        std::uint32_t best = 0;
        for (std::uint32_t m = 1; m < mc_nodes.size(); ++m) {
            if (mesh.distance(n, mc_nodes[m]) <
                mesh.distance(n, mc_nodes[best]))
                best = m;
        }
        preferred[static_cast<std::size_t>(n)] = best;
    }

    // Votes: page -> per-MC access counts.
    std::unordered_map<std::uint64_t, std::array<std::int64_t, 4>> votes;
    ir::StatementInstance inst;
    for (std::int64_t k = 0; k < nest.iterationCount(); ++k) {
        const noc::NodeId node = nodes[static_cast<std::size_t>(k)];
        inst.iter = nest.iterationAt(k);
        inst.iterationNumber = k;
        for (const ir::Statement &stmt : nest.body()) {
            inst.stmt = &stmt;
            for (const ir::ResolvedRef &r : resolveReads(inst, arrays)) {
                votes[mem::pageNumber(r.addr)]
                     [preferred[static_cast<std::size_t>(node)]] += 1;
            }
            const ir::ResolvedRef w = resolveWrite(inst, arrays);
            votes[mem::pageNumber(w.addr)]
                 [preferred[static_cast<std::size_t>(node)]] += 1;
        }
    }

    std::unordered_map<std::uint64_t, std::uint32_t> mapping;
    mapping.reserve(votes.size());
    for (const auto &[page, counts] : votes) {
        std::uint32_t best = 0;
        for (std::uint32_t m = 1; m < counts.size(); ++m) {
            if (counts[m] > counts[best])
                best = m;
        }
        mapping.emplace(page, best);
    }
    return mapping;
}

} // namespace ndp::baseline
