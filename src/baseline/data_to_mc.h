#ifndef NDP_BASELINE_DATA_TO_MC_H
#define NDP_BASELINE_DATA_TO_MC_H

/**
 * @file
 * Profile-based data-to-MC mapping (Section 6.5, Figure 23): for every
 * memory page, record how often each core (under a given iteration
 * assignment) touches it, and re-home the page to the memory
 * controller preferred by most of those cores — each core's preference
 * being its nearest corner MC. The paper notes this is a profile-time
 * scheme, not implementable in a pure compiler, and that it helps
 * mid-mesh pages little; both behaviours emerge from this model.
 */

#include <cstdint>
#include <unordered_map>

#include "ir/statement.h"
#include "sim/manycore.h"

namespace ndp::baseline {

/**
 * Build the page -> MC-index override for @p nest under the iteration
 * assignment @p nodes.
 */
std::unordered_map<std::uint64_t, std::uint32_t>
profilePageToMc(sim::ManycoreSystem &system, const ir::ArrayTable &arrays,
                const ir::LoopNest &nest,
                const std::vector<noc::NodeId> &nodes);

} // namespace ndp::baseline

#endif // NDP_BASELINE_DATA_TO_MC_H
