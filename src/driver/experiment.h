#ifndef NDP_DRIVER_EXPERIMENT_H
#define NDP_DRIVER_EXPERIMENT_H

/**
 * @file
 * Experiment orchestration: builds the machine, runs the profile-
 * guided default placement and the NDP-optimized plan for every nest
 * of a workload, and aggregates all the metrics the paper's evaluation
 * reports (Sections 6.2-6.7). One ExperimentConfig describes one bar
 * of one figure; the benches compose them.
 *
 * Loop nests are independent experiments: each one owns a fresh
 * machine (caches, traffic, and the profile-trained miss predictor are
 * per-nest state), mirroring the paper's §3 observation that sibling
 * subtrees execute in parallel. An ExperimentRunner given a
 * support::ThreadPool therefore fans the nests of one app out across
 * the pool; NestResults are merged in nest order, so the AppResult is
 * byte-identical to the serial (no-pool) path.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/default_placement.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "verify/diagnostic.h"
#include "workloads/workload.h"

namespace ndp::support {
class ThreadPool;
}

namespace ndp::driver {

/** Full description of one experimental configuration. */
struct ExperimentConfig
{
    sim::ManycoreConfig machine;
    partition::PartitionOptions partition;
    baseline::DefaultPlacementOptions placement;
    sim::EnergyParams energy;

    /**
     * When false the "optimized" run executes the *default* plan —
     * used by Figure 23's data-mapping-only bar and as a sanity
     * reference.
     */
    bool optimizeComputation = true;
    /** Zero network latency on the optimized run (Section 6.4). */
    bool idealNetwork = false;
    /** Profile-based page->MC remap on the optimized run (Fig. 23). */
    bool dataToMcRemap = false;
    /**
     * Profile-guided plan selection: after simulating the optimized
     * plan, fall back to the default plan for any nest where the
     * transformation did not pay off (a compiler with an accurate cost
     * model would not ship a slowdown). Disable to report the raw
     * partitioner output.
     */
    bool planSelection = true;
};

/** Results of the default/optimized pair for one loop nest. */
struct NestResult
{
    std::string nest;
    sim::SimResult defaultRun;
    sim::SimResult optimizedRun;
    partition::PartitionReport report;
    /**
     * Static verification of the optimized plan (empty at verify
     * level Off). runNest fails fast — ndp::panic with the rendered
     * diagnostic table — on any error-severity finding, so a
     * populated result implies no errors survived.
     */
    verify::Report verify;
    double analyzableFraction = 1.0;
    /** Miss-predictor totals of this nest's machine (Table 2). */
    std::int64_t predictorPredictions = 0;
    std::int64_t predictorCorrect = 0;
};

/** One application under one configuration. */
struct AppResult
{
    std::string app;
    std::vector<NestResult> nests;

    // Aggregates over all nests:
    std::int64_t defaultMakespan = 0;
    std::int64_t optimizedMakespan = 0;
    double defaultEnergy = 0.0;
    double optimizedEnergy = 0.0;

    /** Per-statement movement reduction (Figure 13). */
    Accumulator movementReductionPct;
    /** Degree of subcomputation parallelism (Figure 14). */
    Accumulator degreeOfParallelism;
    /** Syncs per statement after minimisation (Figure 15). */
    Accumulator syncsPerStatement;
    Accumulator rawSyncsPerStatement;

    double defaultL1HitRate = 0.0;
    double optimizedL1HitRate = 0.0;
    double defaultAvgNetLatency = 0.0;
    double optimizedAvgNetLatency = 0.0;
    double defaultMaxNetLatency = 0.0;
    double optimizedMaxNetLatency = 0.0;

    /** Static compile-time analyzability (Table 1). */
    double analyzableFraction = 1.0;
    /** Measured miss-predictor accuracy (Table 2). */
    double predictorAccuracy = 0.0;
    /** Offloaded op counts by category (Table 3). */
    std::int64_t offloadedOps[3] = {0, 0, 0};
    /** Compile-loop cost/caching counters, merged over all nests. */
    partition::CompileStats compile;
    /** Plan-verification tallies, merged over all nests. */
    verify::ReportCounts verify;

    double
    execTimeReductionPct() const
    {
        return percentReduction(
            static_cast<double>(defaultMakespan),
            static_cast<double>(optimizedMakespan));
    }

    double
    energyReductionPct() const
    {
        return percentReduction(defaultEnergy, optimizedEnergy);
    }

    /** Relative L1 hit-rate improvement (Figure 16). */
    double
    l1HitRateImprovementPct() const
    {
        if (defaultL1HitRate == 0.0)
            return 0.0;
        return 100.0 * (optimizedL1HitRate - defaultL1HitRate) /
               defaultL1HitRate;
    }

    double
    avgNetLatencyReductionPct() const
    {
        return percentReduction(defaultAvgNetLatency,
                                optimizedAvgNetLatency);
    }

    double
    maxNetLatencyReductionPct() const
    {
        return percentReduction(defaultMaxNetLatency,
                                optimizedMaxNetLatency);
    }
};

/** Figure 18's isolated-metric results, as % execution-time gain. */
struct IsolationResult
{
    std::string app;
    double s1L1Behavior = 0.0;
    double s2DataMovement = 0.0;
    double s3Parallelism = 0.0;
    double s4Synchronization = 0.0;
    double fullApproach = 0.0;
};

/** Runs workloads under configurations. */
class ExperimentRunner
{
  public:
    /**
     * @param pool when non-null, runApp() partitions independent loop
     *        nests concurrently on it (nest-level parallelism, cutting
     *        single-app latency). Null runs the nests serially. Both
     *        paths merge NestResults in nest order and produce
     *        byte-identical AppResults.
     */
    explicit ExperimentRunner(ExperimentConfig config = {},
                              support::ThreadPool *pool = nullptr);

    const ExperimentConfig &config() const { return config_; }

    /** Run one application end to end (fresh machine per nest). */
    AppResult runApp(const workloads::Workload &workload) const;

    /**
     * Run one loop nest on its own fresh machine: the profiling
     * default run, the partitioner, the optimized run, and
     * profile-guided plan selection. Pure function of (config,
     * workload, nest) — the unit of nest-level parallelism.
     */
    NestResult runNest(const workloads::Workload &workload,
                       const ir::LoopNest &nest) const;

    /** Figure 18: replay the default plan with one donor metric each. */
    IsolationResult runMetricIsolation(
        const workloads::Workload &workload) const;

  private:
    ExperimentConfig config_;
    support::ThreadPool *pool_;
};

/** Geometric mean of max(value,floor) percentages over apps. */
double geomeanPct(const std::vector<double> &values);

} // namespace ndp::driver

#endif // NDP_DRIVER_EXPERIMENT_H
