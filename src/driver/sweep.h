#ifndef NDP_DRIVER_SWEEP_H
#define NDP_DRIVER_SWEEP_H

/**
 * @file
 * Parallel experiment sweeps. Every (workload, ExperimentConfig) pair
 * of a figure reproduction is an independent computation — runApp()
 * builds its own ManycoreSystem per nest, every stochastic choice
 * flows through a per-run seeded Rng, and workloads are only read —
 * so a sweep fans the grid out across a support::ThreadPool and
 * collects results in submission order.
 *
 * Two parallelism axes share one pool:
 *  - across the sweep: one task per (app, config) cell (throughput);
 *  - within an app: each cell fans its independent loop nests out as
 *    nested tasks (latency), because ExperimentRunner::runNest is a
 *    pure function of (config, workload, nest). Nested waits help —
 *    they drain queued tasks instead of blocking — so sharing the
 *    FIFO pool between both axes cannot deadlock.
 *
 * Determinism contract: a sweep's *results* are bit-identical for any
 * thread count, including 1, and with nest parallelism on or off —
 * NestResults merge in nest order, cells in submission order. Only
 * the wall-clock timings attached to each cell vary between runs;
 * benches therefore print result tables to stdout and timing tables
 * to stderr, keeping stdout diffable.
 */

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "driver/experiment.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace ndp::driver {

/** One (workload, config) cell of a sweep grid. */
struct SweepCell
{
    AppResult result;
    /** Wall-clock seconds of this cell's runApp (nondeterministic). */
    double wallSeconds = 0.0;
};

/** Whole-sweep timing summary. */
struct SweepStats
{
    /** Wall-clock seconds from first submit to last collect. */
    double wallSeconds = 0.0;
    /** Sum of per-cell wall-clock seconds (serial-equivalent work). */
    double cellSecondsSum = 0.0;
    int threads = 1;
    std::size_t cells = 0;
    /** Split plans Kruskal actually ran for, summed over all cells. */
    std::int64_t splitPlansComputed = 0;
    /** Split plans replayed from the per-nest cache. */
    std::int64_t splitPlansMemoized = 0;
    /** Static plan-verification tallies, summed over all cells
     *  (all-zero when NDP_VERIFY is off). */
    verify::ReportCounts verify;

    /** Serial-equivalent time / wall time: the observed speedup. */
    double
    speedup() const
    {
        return wallSeconds <= 0.0 ? 1.0 : cellSecondsSum / wallSeconds;
    }

    /** Fraction of split requests served from the plan cache. */
    double
    splitCacheHitRate() const
    {
        const std::int64_t total = splitPlansComputed + splitPlansMemoized;
        return total == 0
                   ? 0.0
                   : static_cast<double>(splitPlansMemoized) /
                         static_cast<double>(total);
    }

    /**
     * One-line wall-clock/speedup summary, shared by every harness.
     * Print it to stderr: timing is the one nondeterministic output
     * and stdout must stay diffable across thread counts.
     */
    void printSummary(std::ostream &os) const;
};

/**
 * Fans (workload x config) grids out across a thread pool and merges
 * the per-cell AppResults back in submission order.
 */
class SweepRunner
{
  public:
    /**
     * @param threads worker count; <= 0 uses defaultThreads().
     * @param nest_parallel also fan each cell's loop nests out on the
     *        same pool (see the file comment; results are identical
     *        either way, single-app latency is not).
     */
    explicit SweepRunner(int threads = 0, bool nest_parallel = true);

    int threads() const { return threads_; }
    bool nestParallel() const { return nestParallel_; }

    /**
     * Worker count for sweeps: the NDP_BENCH_THREADS environment
     * variable when set to a positive integer, otherwise
     * hardware_concurrency (at least 1).
     */
    static int defaultThreads();

    /**
     * Run every workload under every config. Cell [a][c] holds
     * workload @p apps[a] under @p configs[c]; ordering (and therefore
     * every downstream table) is independent of the thread count.
     */
    std::vector<std::vector<SweepCell>> runGrid(
        const std::vector<workloads::Workload> &apps,
        const std::vector<ExperimentConfig> &configs);

    /**
     * Generic ordered fan-out for sweeps that are not plain
     * (app x config) grids (e.g. Figure 18's metric-isolation runs):
     * evaluates @p fn(0..count-1) on the pool and returns the results
     * indexed by input. @p fn must be safe to call concurrently. The
     * pool is exposed to @p fn so it can fan nested work out too
     * (ExperimentRunner's nest-level axis). Fills stats() like
     * runGrid().
     */
    template <typename T>
    std::vector<T>
    mapOrdered(std::size_t count,
               const std::function<T(std::size_t, support::ThreadPool &)>
                   &fn)
    {
        const auto sweep_start = std::chrono::steady_clock::now();
        support::ThreadPool pool(static_cast<std::size_t>(threads_));
        std::vector<double> seconds(count, 0.0);
        std::vector<std::future<T>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            futures.push_back(pool.submit([&fn, &pool, &seconds, i]() {
                const auto start = std::chrono::steady_clock::now();
                T value = fn(i, pool);
                seconds[i] = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 start)
                                 .count();
                return value;
            }));
        }
        std::vector<T> results;
        results.reserve(count);
        for (std::future<T> &f : futures) {
            pool.waitHelping(f);
            results.push_back(f.get());
        }
        stats_ = SweepStats{};
        stats_.threads = threads_;
        stats_.cells = count;
        for (double s : seconds)
            stats_.cellSecondsSum += s;
        stats_.wallSeconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 sweep_start)
                                 .count();
        return results;
    }

    /** Timing of the most recent runGrid()/mapOrdered() call. */
    const SweepStats &stats() const { return stats_; }

  private:
    int threads_;
    bool nestParallel_;
    SweepStats stats_;
};

} // namespace ndp::driver

#endif // NDP_DRIVER_SWEEP_H
