#ifndef NDP_DRIVER_SWEEP_H
#define NDP_DRIVER_SWEEP_H

/**
 * @file
 * Parallel experiment sweeps. Every (workload, ExperimentConfig) pair
 * of a figure reproduction is an independent computation — runApp()
 * builds its own ManycoreSystem, every stochastic choice flows through
 * a per-run seeded Rng, and workloads are only read — so a sweep fans
 * the grid out across a support::ThreadPool and collects results in
 * submission order.
 *
 * Determinism contract: a sweep's *results* are bit-identical for any
 * thread count, including 1. Only the wall-clock timings attached to
 * each cell vary between runs; benches therefore print result tables
 * to stdout and timing tables to stderr, keeping stdout diffable.
 */

#include <cstddef>
#include <functional>
#include <vector>

#include "driver/experiment.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace ndp::driver {

/** One (workload, config) cell of a sweep grid. */
struct SweepCell
{
    AppResult result;
    /** Wall-clock seconds of this cell's runApp (nondeterministic). */
    double wallSeconds = 0.0;
};

/** Whole-sweep timing summary. */
struct SweepStats
{
    /** Wall-clock seconds from first submit to last collect. */
    double wallSeconds = 0.0;
    /** Sum of per-cell wall-clock seconds (serial-equivalent work). */
    double cellSecondsSum = 0.0;
    int threads = 1;
    std::size_t cells = 0;

    /** Serial-equivalent time / wall time: the observed speedup. */
    double
    speedup() const
    {
        return wallSeconds <= 0.0 ? 1.0 : cellSecondsSum / wallSeconds;
    }
};

/**
 * Fans (workload x config) grids out across a thread pool and merges
 * the per-cell AppResults back in submission order.
 */
class SweepRunner
{
  public:
    /** @param threads worker count; <= 0 uses defaultThreads(). */
    explicit SweepRunner(int threads = 0);

    int threads() const { return threads_; }

    /**
     * Worker count for sweeps: the NDP_BENCH_THREADS environment
     * variable when set to a positive integer, otherwise
     * hardware_concurrency (at least 1).
     */
    static int defaultThreads();

    /**
     * Run every workload under every config. Cell [a][c] holds
     * workload @p apps[a] under @p configs[c]; ordering (and therefore
     * every downstream table) is independent of the thread count.
     */
    std::vector<std::vector<SweepCell>> runGrid(
        const std::vector<workloads::Workload> &apps,
        const std::vector<ExperimentConfig> &configs);

    /**
     * Generic ordered fan-out for sweeps that are not plain
     * (app x config) grids (e.g. Figure 18's metric-isolation runs):
     * evaluates @p fn(0..count-1) on the pool and returns the results
     * indexed by input. @p fn must be safe to call concurrently.
     */
    template <typename T>
    std::vector<T>
    mapOrdered(std::size_t count,
               const std::function<T(std::size_t)> &fn)
    {
        support::ThreadPool pool(static_cast<std::size_t>(threads_));
        std::vector<std::future<T>> futures;
        futures.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            futures.push_back(pool.submit([&fn, i]() { return fn(i); }));
        std::vector<T> results;
        results.reserve(count);
        for (std::future<T> &f : futures)
            results.push_back(f.get());
        return results;
    }

    /** Timing of the most recent runGrid() call. */
    const SweepStats &stats() const { return stats_; }

  private:
    int threads_;
    SweepStats stats_;
};

} // namespace ndp::driver

#endif // NDP_DRIVER_SWEEP_H
