#include "driver/experiment.h"

#include <algorithm>
#include <future>

#include "baseline/data_to_mc.h"
#include "ir/dependence.h"
#include "support/error.h"
#include "support/thread_pool.h"
#include "verify/plan_verifier.h"

namespace ndp::driver {

ExperimentRunner::ExperimentRunner(ExperimentConfig config,
                                   support::ThreadPool *pool)
    : config_(std::move(config)), pool_(pool)
{
}

NestResult
ExperimentRunner::runNest(const workloads::Workload &workload,
                          const ir::LoopNest &nest) const
{
    NestResult nr;
    nr.nest = nest.name();
    nr.analyzableFraction = ir::analyzableFraction(nest);

    // A fresh machine per nest: caches, traffic, and the profile-
    // trained miss predictor are nest-local state, which is what makes
    // nests independent units of parallelism.
    sim::ManycoreSystem system(config_.machine);
    system.setMcdramArrays(workload.mcdramArrays);
    sim::ExecutionEngine engine(system, config_.energy);
    baseline::DefaultPlacement placement(system, workload.arrays,
                                         config_.placement);

    const std::vector<noc::NodeId> nodes =
        placement.assignIterations(nest);
    sim::ExecutionPlan default_plan = placement.buildPlan(nest, nodes);

    // The default run doubles as the profiling pass: it trains the
    // L2 miss predictor the partitioner consults.
    nr.defaultRun = engine.run(default_plan);

    if (config_.dataToMcRemap) {
        system.addressMap().setPageMcOverride(baseline::profilePageToMc(
            system, workload.arrays, nest, nodes));
    }

    sim::ExecutionPlan optimized_plan;
    if (config_.optimizeComputation) {
        partition::PartitionOptions popts = config_.partition;
        popts.profileUtilization =
            static_cast<double>(nr.defaultRun.totalBusyCycles) /
            std::max<double>(
                1.0, static_cast<double>(nr.defaultRun.makespanCycles *
                                         config_.machine.meshCols *
                                         config_.machine.meshRows));
        partition::Partitioner partitioner(system, workload.arrays,
                                           popts);
        optimized_plan = partitioner.plan(nest, nodes);
        nr.report = partitioner.report();

        // Static plan verification (DESIGN.md §9): check the emitted
        // plan against an independent recomputation and fail fast on
        // error-severity findings — a malformed plan must never reach
        // the engine, let alone a results table.
        if (popts.verifyLevel != verify::VerifyLevel::Off &&
            nr.report.provenance) {
            const verify::PlanVerifier verifier(system,
                                                workload.arrays);
            nr.verify = verifier.verify(nest, optimized_plan,
                                        *nr.report.provenance);
            nr.report.verifyCounts = nr.verify.counts();
            nr.report.provenance.reset(); // keep NestResult lean
            if (nr.verify.counts().errors > 0) {
                ndp::panic("static plan verification failed for nest '" +
                           nest.name() + "':\n" +
                           nr.verify.renderTable());
            }
        }
    } else {
        optimized_plan = placement.buildPlan(nest, nodes);
    }

    sim::EngineOptions opts;
    opts.idealNetwork = config_.idealNetwork;
    nr.optimizedRun = engine.run(optimized_plan, opts);

    if (config_.planSelection && config_.optimizeComputation &&
        nr.optimizedRun.makespanCycles > nr.defaultRun.makespanCycles) {
        // Profile-guided selection: the transformation lost on
        // this nest; ship the default plan instead. The report's
        // planning statistics are cleared accordingly — no
        // subcomputation was actually re-mapped.
        nr.optimizedRun = engine.run(default_plan, opts);
        partition::PartitionReport kept;
        kept.chosenWindowSize = 1;
        kept.statementsKeptDefault = nr.report.statementsKeptDefault +
                                     nr.report.statementsSplit;
        kept.defaultMovement = nr.report.defaultMovement;
        kept.plannedMovement = nr.report.defaultMovement;
        kept.movementPerWindowSize = nr.report.movementPerWindowSize;
        kept.reuseMapHash = nr.report.reuseMapHash;
        kept.reuseCopiesPlanned = nr.report.reuseCopiesPlanned;
        // The compile cost was paid regardless of which plan shipped.
        kept.compile = nr.report.compile;
        // So was the verification: the partitioner plan was proven
        // clean even though profiling chose not to ship it.
        kept.verifyCounts = nr.report.verifyCounts;
        for (const sim::InstanceStats &is : default_plan.instances) {
            kept.movementReductionPct.add(0.0);
            kept.degreeOfParallelism.add(1.0);
            kept.syncsPerStatement.add(0.0);
            kept.rawSyncsPerStatement.add(0.0);
            (void)is;
        }
        nr.report = kept;
    }

    nr.predictorPredictions = system.missPredictor().predictions();
    nr.predictorCorrect = system.missPredictor().correctPredictions();
    return nr;
}

AppResult
ExperimentRunner::runApp(const workloads::Workload &workload) const
{
    AppResult result;
    result.app = workload.name;

    // ---- Run every nest, serially or fanned out on the pool. ----
    std::vector<NestResult> nest_results;
    nest_results.reserve(workload.nests.size());
    if (pool_ != nullptr && workload.nests.size() > 1) {
        std::vector<std::future<NestResult>> futures;
        futures.reserve(workload.nests.size());
        for (const ir::LoopNest &nest : workload.nests) {
            futures.push_back(pool_->submit([this, &workload, &nest]() {
                return runNest(workload, nest);
            }));
        }
        for (std::future<NestResult> &f : futures) {
            // runApp may itself execute on a pool worker (a SweepRunner
            // cell), so wait by helping rather than blocking.
            pool_->waitHelping(f);
            nest_results.push_back(f.get());
        }
    } else {
        for (const ir::LoopNest &nest : workload.nests)
            nest_results.push_back(runNest(workload, nest));
    }

    // ---- Merge in nest order: every aggregate below folds the nests
    // left to right, so the result is byte-identical no matter which
    // worker computed which NestResult. ----
    double analyzable_weighted = 0.0;
    std::int64_t analyzable_weight = 0;
    std::int64_t def_l1_hits = 0, def_l1_acc = 0;
    std::int64_t opt_l1_hits = 0, opt_l1_acc = 0;
    std::int64_t pred_total = 0, pred_correct = 0;
    Accumulator def_avg_lat, opt_avg_lat;
    double def_max_lat = 0.0, opt_max_lat = 0.0;

    for (std::size_t n = 0; n < nest_results.size(); ++n) {
        NestResult &nr = nest_results[n];
        const ir::LoopNest &nest = workload.nests[n];

        result.defaultMakespan += nr.defaultRun.makespanCycles;
        result.optimizedMakespan += nr.optimizedRun.makespanCycles;
        result.defaultEnergy += nr.defaultRun.energy.total();
        result.optimizedEnergy += nr.optimizedRun.energy.total();

        result.movementReductionPct.merge(
            nr.report.movementReductionPct);
        result.degreeOfParallelism.merge(nr.report.degreeOfParallelism);
        result.syncsPerStatement.merge(nr.report.syncsPerStatement);
        result.rawSyncsPerStatement.merge(
            nr.report.rawSyncsPerStatement);
        for (int c = 0; c < 3; ++c)
            result.offloadedOps[c] += nr.report.offloadedOps[c];
        result.compile.merge(nr.report.compile);
        result.verify.merge(nr.report.verifyCounts);

        def_l1_hits += nr.defaultRun.l1.hits;
        def_l1_acc += nr.defaultRun.l1.accesses();
        opt_l1_hits += nr.optimizedRun.l1.hits;
        opt_l1_acc += nr.optimizedRun.l1.accesses();
        def_avg_lat.add(nr.defaultRun.avgNetworkLatency);
        opt_avg_lat.add(nr.optimizedRun.avgNetworkLatency);
        def_max_lat = std::max(def_max_lat,
                               nr.defaultRun.maxNetworkLatency);
        opt_max_lat = std::max(opt_max_lat,
                               nr.optimizedRun.maxNetworkLatency);

        pred_total += nr.predictorPredictions;
        pred_correct += nr.predictorCorrect;

        const std::int64_t weight =
            nest.iterationCount() *
            static_cast<std::int64_t>(nest.body().size());
        analyzable_weighted +=
            nr.analyzableFraction * static_cast<double>(weight);
        analyzable_weight += weight;

        result.nests.push_back(std::move(nr));
    }

    result.defaultL1HitRate =
        def_l1_acc == 0 ? 0.0
                        : static_cast<double>(def_l1_hits) /
                              static_cast<double>(def_l1_acc);
    result.optimizedL1HitRate =
        opt_l1_acc == 0 ? 0.0
                        : static_cast<double>(opt_l1_hits) /
                              static_cast<double>(opt_l1_acc);
    result.defaultAvgNetLatency = def_avg_lat.mean();
    result.optimizedAvgNetLatency = opt_avg_lat.mean();
    result.defaultMaxNetLatency = def_max_lat;
    result.optimizedMaxNetLatency = opt_max_lat;
    result.analyzableFraction =
        analyzable_weight == 0
            ? 1.0
            : analyzable_weighted /
                  static_cast<double>(analyzable_weight);
    result.predictorAccuracy =
        pred_total == 0 ? 0.0
                        : static_cast<double>(pred_correct) /
                              static_cast<double>(pred_total);
    return result;
}

namespace {

/** Per-nest makespan totals of the Figure 18 isolation replays. */
struct IsolationTotals
{
    std::int64_t def = 0;
    std::int64_t full = 0;
    std::int64_t s1 = 0, s2 = 0, s3 = 0, s4 = 0;
};

} // namespace

IsolationResult
ExperimentRunner::runMetricIsolation(
    const workloads::Workload &workload) const
{
    IsolationResult iso;
    iso.app = workload.name;

    // Like runNest(): each nest replays on its own fresh machine, so
    // the isolation runs are independent and can fan out on the pool.
    const auto run_nest = [this,
                           &workload](const ir::LoopNest &nest) {
        sim::ManycoreSystem system(config_.machine);
        system.setMcdramArrays(workload.mcdramArrays);
        sim::ExecutionEngine engine(system, config_.energy);
        baseline::DefaultPlacement placement(system, workload.arrays,
                                             config_.placement);

        const std::vector<noc::NodeId> nodes =
            placement.assignIterations(nest);
        sim::ExecutionPlan default_plan =
            placement.buildPlan(nest, nodes);
        const sim::SimResult def = engine.run(default_plan);

        partition::PartitionOptions popts = config_.partition;
        popts.profileUtilization =
            static_cast<double>(def.totalBusyCycles) /
            std::max<double>(1.0,
                             static_cast<double>(
                                 def.makespanCycles *
                                 config_.machine.meshCols *
                                 config_.machine.meshRows));
        partition::Partitioner partitioner(system, workload.arrays,
                                           popts);
        sim::ExecutionPlan optimized_plan = partitioner.plan(nest, nodes);
        const sim::SimResult opt = engine.run(optimized_plan);

        IsolationTotals t;
        t.def = def.makespanCycles;
        t.full = config_.planSelection
                     ? std::min(opt.makespanCycles, def.makespanCycles)
                     : opt.makespanCycles;

        // S1: the default code with the optimized L1 hit/miss profile.
        sim::EngineOptions s1;
        s1.l1HitRateOverride = opt.l1HitRate();
        t.s1 = engine.run(default_plan, s1).makespanCycles;

        // S2: the default code paying the optimized data movement —
        // scale every network latency by the movement ratio.
        sim::EngineOptions s2;
        s2.networkScale =
            def.dataMovementFlitHops == 0
                ? 1.0
                : static_cast<double>(opt.dataMovementFlitHops) /
                      static_cast<double>(def.dataMovementFlitHops);
        t.s2 = engine.run(default_plan, s2).makespanCycles;

        // S3: the default code with the optimized degree of
        // subcomputation parallelism.
        sim::EngineOptions s3;
        s3.parallelismSpeedup = std::max(
            1.0, partitioner.report().degreeOfParallelism.mean());
        t.s3 = engine.run(default_plan, s3).makespanCycles;

        // S4: the default code paying the optimized synchronisations.
        sim::EngineOptions s4;
        s4.extraSyncs = opt.syncCount;
        t.s4 = engine.run(default_plan, s4).makespanCycles;
        return t;
    };

    std::vector<IsolationTotals> totals;
    totals.reserve(workload.nests.size());
    if (pool_ != nullptr && workload.nests.size() > 1) {
        std::vector<std::future<IsolationTotals>> futures;
        futures.reserve(workload.nests.size());
        for (const ir::LoopNest &nest : workload.nests) {
            futures.push_back(pool_->submit(
                [&run_nest, &nest]() { return run_nest(nest); }));
        }
        for (std::future<IsolationTotals> &f : futures) {
            pool_->waitHelping(f);
            totals.push_back(f.get());
        }
    } else {
        for (const ir::LoopNest &nest : workload.nests)
            totals.push_back(run_nest(nest));
    }

    std::int64_t def_total = 0;
    std::int64_t full_total = 0;
    std::int64_t s1_total = 0, s2_total = 0, s3_total = 0, s4_total = 0;
    for (const IsolationTotals &t : totals) {
        def_total += t.def;
        full_total += t.full;
        s1_total += t.s1;
        s2_total += t.s2;
        s3_total += t.s3;
        s4_total += t.s4;
    }

    const auto pct = [&](std::int64_t v) {
        return percentReduction(static_cast<double>(def_total),
                                static_cast<double>(v));
    };
    iso.s1L1Behavior = pct(s1_total);
    iso.s2DataMovement = pct(s2_total);
    iso.s3Parallelism = pct(s3_total);
    iso.s4Synchronization = pct(s4_total);
    iso.fullApproach = pct(full_total);
    return iso;
}

double
geomeanPct(const std::vector<double> &values)
{
    std::vector<double> floored;
    floored.reserve(values.size());
    for (double v : values)
        floored.push_back(std::max(v, 0.1));
    return geometricMean(floored);
}

} // namespace ndp::driver
