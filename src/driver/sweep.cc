#include "driver/sweep.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace ndp::driver {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

SweepRunner::SweepRunner(int threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
}

int
SweepRunner::defaultThreads()
{
    if (const char *env = std::getenv("NDP_BENCH_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<std::vector<SweepCell>>
SweepRunner::runGrid(const std::vector<workloads::Workload> &apps,
                     const std::vector<ExperimentConfig> &configs)
{
    const auto sweep_start = std::chrono::steady_clock::now();

    // One future per cell, submitted app-major so the earliest table
    // rows become available first. Each task owns its ExperimentRunner
    // (and, inside runApp, its ManycoreSystem); the workload is shared
    // read-only.
    support::ThreadPool pool(static_cast<std::size_t>(threads_));
    std::vector<std::future<SweepCell>> futures;
    futures.reserve(apps.size() * configs.size());
    for (const workloads::Workload &app : apps) {
        for (const ExperimentConfig &config : configs) {
            futures.push_back(pool.submit([&app, &config]() {
                const auto cell_start =
                    std::chrono::steady_clock::now();
                ExperimentRunner runner(config);
                SweepCell cell;
                cell.result = runner.runApp(app);
                cell.wallSeconds = secondsSince(cell_start);
                return cell;
            }));
        }
    }

    // Collect in submission order: the grid layout — and therefore
    // every table built from it — is identical for any thread count.
    std::vector<std::vector<SweepCell>> grid(apps.size());
    std::size_t at = 0;
    stats_ = SweepStats{};
    stats_.threads = threads_;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        grid[a].reserve(configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            grid[a].push_back(futures[at++].get());
            stats_.cellSecondsSum += grid[a].back().wallSeconds;
            ++stats_.cells;
        }
    }
    stats_.wallSeconds = secondsSince(sweep_start);
    return grid;
}

} // namespace ndp::driver
