#include "driver/sweep.h"

#include <chrono>
#include <cstdlib>
#include <ostream>
#include <thread>

namespace ndp::driver {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

void
SweepStats::printSummary(std::ostream &os) const
{
    os << "[sweep] " << cells << " runs on " << threads
       << " thread(s): " << wallSeconds << "s wall, " << cellSecondsSum
       << "s serial-equivalent (speedup x" << speedup()
       << "; set NDP_BENCH_THREADS to change)\n";
    if (splitPlansComputed + splitPlansMemoized > 0)
        os << "[sweep] split-plan cache: " << splitPlansMemoized
           << " memoized / " << splitPlansComputed << " computed ("
           << 100.0 * splitCacheHitRate() << "% hit rate)\n";
    if (verify.plansVerified > 0)
        os << "[sweep] plan verifier: " << verify.plansVerified
           << " instances checked, " << verify.errors << " error(s), "
           << verify.warnings << " warning(s), " << verify.notes
           << " note(s) (set NDP_VERIFY=off|cheap|full)\n";
}

SweepRunner::SweepRunner(int threads, bool nest_parallel)
    : threads_(threads > 0 ? threads : defaultThreads()),
      nestParallel_(nest_parallel)
{
}

int
SweepRunner::defaultThreads()
{
    if (const char *env = std::getenv("NDP_BENCH_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::vector<std::vector<SweepCell>>
SweepRunner::runGrid(const std::vector<workloads::Workload> &apps,
                     const std::vector<ExperimentConfig> &configs)
{
    const auto sweep_start = std::chrono::steady_clock::now();

    // One future per cell, submitted app-major so the earliest table
    // rows become available first. Each task owns its ExperimentRunner
    // (and, inside runApp, one ManycoreSystem per nest); the workload
    // is shared read-only. With nest parallelism on, the cell's nests
    // are nested tasks on this same pool — waits inside runApp help
    // (drain the queue) instead of blocking, so the FIFO pool serves
    // both axes without deadlock.
    support::ThreadPool pool(static_cast<std::size_t>(threads_));
    support::ThreadPool *nest_pool = nestParallel_ ? &pool : nullptr;
    std::vector<std::future<SweepCell>> futures;
    futures.reserve(apps.size() * configs.size());
    for (const workloads::Workload &app : apps) {
        for (const ExperimentConfig &config : configs) {
            futures.push_back(pool.submit([&app, &config, nest_pool]() {
                const auto cell_start =
                    std::chrono::steady_clock::now();
                ExperimentRunner runner(config, nest_pool);
                SweepCell cell;
                cell.result = runner.runApp(app);
                cell.wallSeconds = secondsSince(cell_start);
                return cell;
            }));
        }
    }

    // Collect in submission order: the grid layout — and therefore
    // every table built from it — is identical for any thread count.
    std::vector<std::vector<SweepCell>> grid(apps.size());
    std::size_t at = 0;
    stats_ = SweepStats{};
    stats_.threads = threads_;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        grid[a].reserve(configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            std::future<SweepCell> &f = futures[at++];
            pool.waitHelping(f);
            grid[a].push_back(f.get());
            stats_.cellSecondsSum += grid[a].back().wallSeconds;
            stats_.splitPlansComputed +=
                grid[a].back().result.compile.plansComputed;
            stats_.splitPlansMemoized +=
                grid[a].back().result.compile.plansMemoized;
            stats_.verify.merge(grid[a].back().result.verify);
            ++stats_.cells;
        }
    }
    stats_.wallSeconds = secondsSince(sweep_start);
    return grid;
}

} // namespace ndp::driver
