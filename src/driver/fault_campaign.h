#ifndef NDP_DRIVER_FAULT_CAMPAIGN_H
#define NDP_DRIVER_FAULT_CAMPAIGN_H

/**
 * @file
 * Graceful-degradation campaigns: Monte-Carlo sweeps over fault rates
 * answering "how well does data-movement-aware partitioning degrade
 * when the chip does?". For each swept node-fault rate the campaign
 * injects several independent fault sets (deterministic per-trial
 * seeds), runs the full default-vs-partitioned pipeline on each
 * faulted machine, and reports data movement / execution time / L1
 * hit rate against the healthy reference.
 *
 * Determinism contract (same as driver::SweepRunner): trial seeds are
 * a pure function of (baseSeed, rate index, trial index, attempt), all
 * trials fan out via SweepRunner::mapOrdered and merge in submission
 * order, so the report is bit-identical for any thread count.
 *
 * An injection that disconnects the surviving mesh is retried with a
 * fresh (still deterministic) seed up to maxRetriesPerTrial times;
 * retries and exhausted trials are counted in the result — a trial is
 * abandoned visibly, never silently dropped.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "driver/sweep.h"
#include "fault/fault_model.h"
#include "workloads/workload.h"

namespace ndp::driver {

/** Parameters of one graceful-degradation campaign. */
struct FaultCampaignConfig
{
    /**
     * The healthy machine/pipeline template. Its machine.faults must
     * be empty — the campaign owns fault injection.
     */
    ExperimentConfig experiment;

    /** Node-fault probabilities to sweep (0 is implicit: the healthy
     *  reference always runs). */
    std::vector<double> nodeFaultRates = {0.02, 0.05, 0.10};

    /** Each rate's link-fault probability = nodeFaultRate * this. */
    double linkFaultScale = 0.5;

    /** Fraction of faulted nodes that are degraded-slow, not dead. */
    double degradedFraction = 0.25;

    /** Compute-slowdown factor of degraded nodes. */
    double degradeFactor = 2.0;

    /** Independent fault sets simulated per rate. */
    int trialsPerRate = 3;

    /** Fresh-seed redraws allowed when injection disconnects the
     *  mesh, per trial. */
    int maxRetriesPerTrial = 8;

    /** Root of the deterministic per-trial seed derivation. */
    std::uint64_t baseSeed = 0xf001'5eedull;
};

/** One injected fault set simulated end to end. */
struct FaultTrialResult
{
    /** Seed that produced the accepted (connected) fault set. */
    std::uint64_t seed = 0;
    /** Disconnected draws discarded before acceptance. */
    int retries = 0;
    /** Retry budget exhausted: no connected set found, nothing ran. */
    bool abandoned = false;
    /** FaultModel::describe() of the accepted set. */
    std::string faultSummary;
    AppResult result;
};

/** All trials of one swept fault rate, plus their means. */
struct FaultRateResult
{
    double nodeFaultRate = 0.0;
    double linkFaultRate = 0.0;
    std::vector<FaultTrialResult> trials;
    int retries = 0;
    int abandoned = 0;

    // Means over completed (non-abandoned) trials:
    double meanDefaultMakespan = 0.0;
    double meanOptimizedMakespan = 0.0;
    double meanDefaultMovement = 0.0;
    double meanOptimizedMovement = 0.0;
    double meanDefaultL1HitRate = 0.0;
    double meanOptimizedL1HitRate = 0.0;
    /** Mean optimized-vs-default execution-time reduction %. */
    double meanExecReductionPct = 0.0;

    int completedTrials() const
    {
        return static_cast<int>(trials.size()) - abandoned;
    }
};

/** One campaign: healthy reference + per-rate degradation results. */
struct FaultCampaignResult
{
    std::string app;
    AppResult healthy;
    /** Whole-app flit-hop movement of the healthy runs. */
    double healthyDefaultMovement = 0.0;
    double healthyOptimizedMovement = 0.0;
    std::vector<FaultRateResult> rates;
    int totalRetries = 0;
    int totalAbandoned = 0;

    /**
     * Degradation report (deterministic, stdout-safe): one row per
     * fault rate with execution-time and data-movement inflation
     * versus the healthy reference, for the baseline placement and
     * the partitioned plan, plus L1 hit rates and retry accounting.
     */
    void printReport(std::ostream &os) const;
};

/** Whole-app flit-hop data movement of @p result's nests. */
double appMovement(const AppResult &result, bool optimized);

/**
 * Runs graceful-degradation campaigns. Stateless apart from its
 * config; one campaign object can run many apps.
 */
class FaultCampaign
{
  public:
    explicit FaultCampaign(FaultCampaignConfig config);

    const FaultCampaignConfig &config() const { return config_; }

    /**
     * The deterministic seed of (rate_idx, trial, attempt) — exposed
     * so tests can reproduce any single trial's fault set exactly.
     */
    std::uint64_t trialSeed(std::size_t rate_idx, int trial,
                            int attempt) const;

    /**
     * Draw the fault set for one trial: redraws with the next
     * attempt's seed while the injected set disconnects the mesh,
     * bounded by maxRetriesPerTrial. Returns the accepted model (or
     * none) via @p out; fills seed/retries/abandoned of @p trial.
     */
    void drawFaultSet(std::size_t rate_idx, int trial_idx,
                      FaultTrialResult &trial,
                      fault::FaultModel &out) const;

    /**
     * Run the campaign for @p app: the healthy reference plus
     * trialsPerRate trials of every swept rate, fanned out on
     * @p runner. Deterministic for any thread count.
     */
    FaultCampaignResult run(const workloads::Workload &app,
                            SweepRunner &runner) const;

  private:
    FaultCampaignConfig config_;
};

} // namespace ndp::driver

#endif // NDP_DRIVER_FAULT_CAMPAIGN_H
