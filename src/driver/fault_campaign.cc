#include "driver/fault_campaign.h"

#include <algorithm>
#include <ostream>

#include "noc/mesh_topology.h"
#include "support/error.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace ndp::driver {

namespace {

/** SplitMix64 step, chaining words into one well-mixed seed. */
std::uint64_t
mixWord(std::uint64_t state, std::uint64_t word)
{
    state += word + 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
percentInflation(double healthy, double faulted)
{
    if (healthy <= 0.0)
        return 0.0;
    return 100.0 * (faulted - healthy) / healthy;
}

} // namespace

double
appMovement(const AppResult &result, bool optimized)
{
    double total = 0.0;
    for (const NestResult &nest : result.nests) {
        const sim::SimResult &run =
            optimized ? nest.optimizedRun : nest.defaultRun;
        total += static_cast<double>(run.dataMovementFlitHops);
    }
    return total;
}

FaultCampaign::FaultCampaign(FaultCampaignConfig config)
    : config_(std::move(config))
{
    NDP_REQUIRE(config_.experiment.machine.faults.empty(),
                "the campaign template must be the healthy machine; "
                "fault injection is the campaign's job");
    NDP_REQUIRE(!config_.nodeFaultRates.empty(),
                "campaign needs at least one fault rate");
    NDP_REQUIRE(config_.trialsPerRate >= 1,
                "campaign needs at least one trial per rate");
    NDP_REQUIRE(config_.maxRetriesPerTrial >= 0,
                "negative retry budget");
}

std::uint64_t
FaultCampaign::trialSeed(std::size_t rate_idx, int trial,
                         int attempt) const
{
    std::uint64_t s = mixWord(config_.baseSeed, 0x7261746573ull);
    s = mixWord(s, static_cast<std::uint64_t>(rate_idx));
    s = mixWord(s, static_cast<std::uint64_t>(trial));
    s = mixWord(s, static_cast<std::uint64_t>(attempt));
    return s;
}

void
FaultCampaign::drawFaultSet(std::size_t rate_idx, int trial_idx,
                            FaultTrialResult &trial,
                            fault::FaultModel &out) const
{
    const sim::ManycoreConfig &machine = config_.experiment.machine;
    fault::FaultSpec spec;
    spec.nodeFaultRate = config_.nodeFaultRates[rate_idx];
    spec.linkFaultRate = spec.nodeFaultRate * config_.linkFaultScale;
    spec.degradedFraction = config_.degradedFraction;

    for (int attempt = 0; attempt <= config_.maxRetriesPerTrial;
         ++attempt) {
        spec.seed = trialSeed(rate_idx, trial_idx, attempt);
        fault::FaultModel model = fault::FaultModel::inject(
            machine.meshCols, machine.meshRows, machine.torus, spec);
        model.setDegradeFactor(config_.degradeFactor);
        if (noc::MeshTopology::faultsLeaveMeshConnected(
                machine.meshCols, machine.meshRows, machine.torus,
                model)) {
            trial.seed = spec.seed;
            out = std::move(model);
            return;
        }
        ++trial.retries;
    }
    trial.abandoned = true;
}

FaultCampaignResult
FaultCampaign::run(const workloads::Workload &app,
                   SweepRunner &runner) const
{
    const std::size_t rate_count = config_.nodeFaultRates.size();
    const auto trials_per_rate =
        static_cast<std::size_t>(config_.trialsPerRate);
    // Unit 0 is the healthy reference; unit 1 + r*T + t is trial t of
    // rate r. Flat submission order makes mapOrdered's merge (and
    // therefore the whole report) independent of the thread count.
    const std::size_t units = 1 + rate_count * trials_per_rate;
    const bool nest_parallel = runner.nestParallel();

    std::vector<FaultTrialResult> outcomes =
        runner.mapOrdered<FaultTrialResult>(
            units,
            [&](std::size_t unit, support::ThreadPool &pool)
                -> FaultTrialResult {
                FaultTrialResult trial;
                ExperimentConfig cfg = config_.experiment;
                if (unit > 0) {
                    const std::size_t rate_idx =
                        (unit - 1) / trials_per_rate;
                    const auto trial_idx = static_cast<int>(
                        (unit - 1) % trials_per_rate);
                    fault::FaultModel model;
                    drawFaultSet(rate_idx, trial_idx, trial, model);
                    if (trial.abandoned)
                        return trial;
                    trial.faultSummary = model.describe();
                    cfg.machine.faults = std::move(model);
                }
                const ExperimentRunner exp(
                    cfg, nest_parallel ? &pool : nullptr);
                trial.result = exp.runApp(app);
                return trial;
            });

    FaultCampaignResult result;
    result.app = app.name;
    result.healthy = std::move(outcomes.front().result);
    result.healthyDefaultMovement = appMovement(result.healthy, false);
    result.healthyOptimizedMovement = appMovement(result.healthy, true);

    for (std::size_t r = 0; r < rate_count; ++r) {
        FaultRateResult rate;
        rate.nodeFaultRate = config_.nodeFaultRates[r];
        rate.linkFaultRate =
            rate.nodeFaultRate * config_.linkFaultScale;
        for (std::size_t t = 0; t < trials_per_rate; ++t) {
            FaultTrialResult &trial =
                outcomes[1 + r * trials_per_rate + t];
            rate.retries += trial.retries;
            if (trial.abandoned)
                ++rate.abandoned;
            rate.trials.push_back(std::move(trial));
        }
        const int completed = rate.completedTrials();
        if (completed > 0) {
            for (const FaultTrialResult &trial : rate.trials) {
                if (trial.abandoned)
                    continue;
                const AppResult &res = trial.result;
                rate.meanDefaultMakespan +=
                    static_cast<double>(res.defaultMakespan);
                rate.meanOptimizedMakespan +=
                    static_cast<double>(res.optimizedMakespan);
                rate.meanDefaultMovement += appMovement(res, false);
                rate.meanOptimizedMovement += appMovement(res, true);
                rate.meanDefaultL1HitRate += res.defaultL1HitRate;
                rate.meanOptimizedL1HitRate += res.optimizedL1HitRate;
                rate.meanExecReductionPct +=
                    res.execTimeReductionPct();
            }
            const auto n = static_cast<double>(completed);
            rate.meanDefaultMakespan /= n;
            rate.meanOptimizedMakespan /= n;
            rate.meanDefaultMovement /= n;
            rate.meanOptimizedMovement /= n;
            rate.meanDefaultL1HitRate /= n;
            rate.meanOptimizedL1HitRate /= n;
            rate.meanExecReductionPct /= n;
        }
        result.totalRetries += rate.retries;
        result.totalAbandoned += rate.abandoned;
        result.rates.push_back(std::move(rate));
    }
    return result;
}

void
FaultCampaignResult::printReport(std::ostream &os) const
{
    os << "graceful degradation: " << app << " (healthy exec reduction "
       << healthy.execTimeReductionPct() << "%)\n";
    Table table({"node fault%", "trials", "retries", "abandoned",
                 "def slow%", "opt slow%", "def move+%", "opt move+%",
                 "def L1%", "opt L1%", "exec red%"});
    for (const FaultRateResult &rate : rates) {
        table.row()
            .cell(100.0 * rate.nodeFaultRate, 1)
            .cell(rate.completedTrials())
            .cell(rate.retries)
            .cell(rate.abandoned)
            .cell(percentInflation(
                      static_cast<double>(healthy.defaultMakespan),
                      rate.meanDefaultMakespan),
                  2)
            .cell(percentInflation(
                      static_cast<double>(healthy.optimizedMakespan),
                      rate.meanOptimizedMakespan),
                  2)
            .cell(percentInflation(healthyDefaultMovement,
                                   rate.meanDefaultMovement),
                  2)
            .cell(percentInflation(healthyOptimizedMovement,
                                   rate.meanOptimizedMovement),
                  2)
            .cell(100.0 * rate.meanDefaultL1HitRate, 2)
            .cell(100.0 * rate.meanOptimizedL1HitRate, 2)
            .cell(rate.meanExecReductionPct, 2);
    }
    table.print(os);
}

} // namespace ndp::driver
