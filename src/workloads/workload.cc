#include "workloads/workload.h"

#include <cmath>

#include "ir/parser.h"
#include "support/error.h"
#include "support/rng.h"

namespace ndp::workloads {

namespace {

/**
 * Synthesise a neighbor-list style index array: mostly short-range
 * references around the owning element with an occasional long-range
 * jump, which is how Barnes/FMM/MiniMD neighbor structures behave.
 */
std::vector<std::int64_t>
neighborIndices(std::int64_t n, std::int64_t reach, double far_fraction,
                Rng &rng)
{
    // Real neighbor structures are power-law-ish: a small set of hub
    // elements (tree cells, shared patches, bonded atoms) is
    // referenced by many owners. Those repeated targets are exactly
    // what NDP turns into L1 hits at the data's home node (Figure 16).
    const std::int64_t hubs = std::max<std::int64_t>(4, n / 64);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t v;
        if (rng.nextBool(0.35)) {
            v = rng.nextInRange(0, hubs - 1) * (n / hubs);
        } else if (rng.nextBool(far_fraction)) {
            v = rng.nextInRange(0, n - 1);
        } else {
            v = i + rng.nextInRange(-reach, reach);
        }
        v %= n;
        if (v < 0)
            v += n;
        idx[static_cast<std::size_t>(i)] = v;
    }
    return idx;
}

/** Random permutation-ish scatter targets (radix buckets, etc.). */
std::vector<std::int64_t>
scatterIndices(std::int64_t n, std::int64_t buckets, Rng &rng)
{
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        idx[static_cast<std::size_t>(i)] =
            rng.nextInRange(0, buckets - 1);
    return idx;
}

void
installIndex(Workload &w, const std::string &array,
             std::vector<std::int64_t> values)
{
    const ir::ArrayId id = w.arrays.find(array);
    NDP_CHECK(id != ir::kInvalidArray, "missing index array " << array);
    w.arrays.setIndexData(id, std::move(values));
}

void
markMcdram(Workload &w, std::initializer_list<const char *> names)
{
    for (const char *name : names) {
        const ir::ArrayId id = w.arrays.find(name);
        NDP_CHECK(id != ir::kInvalidArray, "missing array " << name);
        w.mcdramArrays.insert(id);
    }
}

std::int64_t
squareSide(std::int64_t scale)
{
    auto side = static_cast<std::int64_t>(
        std::llround(std::sqrt(static_cast<double>(scale))));
    return std::max<std::int64_t>(16, side);
}

} // namespace

WorkloadFactory::WorkloadFactory(std::int64_t scale, std::uint64_t seed)
    : scale_(scale), seed_(seed)
{
    NDP_REQUIRE(scale >= 256, "workload scale too small: " << scale);
}

const std::vector<std::string> &
WorkloadFactory::appNames()
{
    static const std::vector<std::string> names = {
        "barnes", "cholesky", "fft",      "fmm",
        "lu",     "ocean",    "radiosity", "radix",
        "raytrace", "water",  "minimd",   "minixyce",
    };
    return names;
}

std::vector<Workload>
WorkloadFactory::buildAll() const
{
    std::vector<Workload> all;
    all.reserve(appNames().size());
    for (const std::string &name : appNames())
        all.push_back(build(name));
    return all;
}

Workload
WorkloadFactory::build(const std::string &app) const
{
    Workload w;
    w.name = app;
    // The paper's applications stream array-of-structures data
    // (particles, patches, grid cells): model one cache line per
    // element so each iteration touches fresh lines, as their
    // 661MB-3.3GB datasets do.
    w.arrays.setDefaultElementSize(
        static_cast<std::uint32_t>(mem::kLineSize));
    Rng rng(seed_ ^ std::hash<std::string>()(app));
    const std::int64_t n = scale_;
    const std::int64_t side = squareSide(scale_);
    const ir::ParamMap params = {
        {"N", n}, {"M", side}, {"M2", side * 2}};

    if (app == "barnes") {
        // N-body tree walk: long force-accumulation statements with
        // two indirect neighbor loads -> low analyzability, big MSTs.
        w.nests.push_back(ir::parseKernel(R"(
            array PX[N]; array MASS[N]; array AX[N]; array DSQ[N];
            array NB1[N]; array NB2[N];
            for i = 0..N {
              S1: AX[i] = AX[i] + (PX[NB1[i]] - PX[i]) * MASS[NB1[i]]
                          + (PX[NB2[i]] - PX[i]) * MASS[NB2[i]];
              S2: DSQ[i] = (PX[NB1[i]] - PX[i]) * (PX[NB1[i]] - PX[i]);
            })",
                                          "barnes/force", w.arrays,
                                          params));
        w.nests.back().timingTrips = 4;
        w.nests.back().inspectorTrips = 1;
        w.nests.push_back(ir::parseKernel(R"(
            array VX[N]; array DT[N];
            for i = 0..N {
              S1: VX[i] = VX[i] + AX[i] * DT[i];
              S2: PX[i] = PX[i] + VX[i] * DT[i];
            })",
                                          "barnes/update", w.arrays,
                                          params));
        installIndex(w, "NB1", neighborIndices(n, 32, 0.15, rng));
        installIndex(w, "NB2", neighborIndices(n, 64, 0.25, rng));
        markMcdram(w, {"PX", "MASS", "AX"});
    } else if (app == "cholesky") {
        // Supernodal factorisation updates over dense 8-byte matrices:
        // A -= L-column * L-row with a small reused panel, then the
        // diagonal scaling. Strong spatial/temporal locality -> small
        // network footprint, hence the paper's modest gains.
        w.arrays.setDefaultElementSize(8);
        w.nests.push_back(ir::parseKernel(R"(
            array A[M2][M2]; array LCOL[M2]; array LROW[M2];
            array DIAG[M2]; array UPD[M2][M2] bytes 64;
            for i = 0..M2 { for j = 0..M2 {
              S1: A[i][j] = A[i][j] - LCOL[i] * LROW[j];
              S2: A[i][j] = A[i][j] / DIAG[i] + UPD[i][j];
            } })",
                                          "cholesky/update", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array SN[M2][M2]; array SCL[M2];
            for i = 0..M2 { for j = 0..M2 {
              S1: SN[i][j] = SN[i][j] * SCL[j];
            } })",
                                          "cholesky/scale", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array GX[M][M] bytes 64; array GL[M][M] bytes 64;
            array GR[M][M] bytes 64;
            for i = 0..M { for j = 0..M {
              S1: GX[i][j] = GX[i][j] - GL[i][j] * GR[j][i];
            } })",
                                          "cholesky/gemm", w.arrays,
                                          params));
        markMcdram(w, {"A", "GX"});
    } else if (app == "fft") {
        // Butterflies: twiddle factors shared between the real and
        // imaginary statements -> strong inter-statement reuse.
        w.nests.push_back(ir::parseKernel(R"(
            array AR[N]; array AI[N]; array BR[N]; array BI[N];
            array WR[N]; array WI[N]; array XR[N]; array XI[N];
            for i = 0..N {
              S1: XR[i] = AR[i] + WR[i] * BR[i] - WI[i] * BI[i];
              S2: XI[i] = AI[i] + WR[i] * BI[i] + WI[i] * BR[i];
            })",
                                          "fft/butterfly", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array SRC[N]; array DST[N]; array REV[N];
            for i = 0..N {
              S1: DST[i] = SRC[REV[i]];
            })",
                                          "fft/bitrev", w.arrays,
                                          params));
                installIndex(w, "REV", neighborIndices(n, n / 2, 0.9, rng));
        markMcdram(w, {"AR", "AI", "BR", "BI"});
    } else if (app == "fmm") {
        // Multipole interaction lists: three indirect loads per
        // statement over the charge array.
        w.nests.push_back(ir::parseKernel(R"(
            array PHI[N]; array Q[N]; array K1[N]; array K2[N];
            array K3[N]; array IL1[N]; array IL2[N]; array IL3[N];
            for i = 0..N {
              S1: PHI[i] = PHI[i] + Q[IL1[i]] * K1[i]
                           + Q[IL2[i]] * K2[i] + Q[IL3[i]] * K3[i];
            })",
                                          "fmm/interact", w.arrays,
                                          params));
        w.nests.back().timingTrips = 4;
        w.nests.back().inspectorTrips = 1;
        w.nests.push_back(ir::parseKernel(R"(
            array LOC[N]; array UP[N]; array WGT[N];
            for i = 0..N {
              S1: UP[i] = UP[i] + LOC[i] * WGT[i];
            })",
                                          "fmm/upward", w.arrays,
                                          params));
        installIndex(w, "IL1", neighborIndices(n, 16, 0.1, rng));
        installIndex(w, "IL2", neighborIndices(n, 48, 0.2, rng));
        installIndex(w, "IL3", neighborIndices(n, 128, 0.35, rng));
        markMcdram(w, {"PHI", "Q"});
    } else if (app == "lu") {
        // Panel updates over dense 8-byte matrices: A -= row*col, then
        // a pivot division; mul/div heavy, small per-statement
        // footprints thanks to spatial locality.
        w.arrays.setDefaultElementSize(8);
        w.nests.push_back(ir::parseKernel(R"(
            array A[M2][M2]; array ROW[M2]; array COL[M2];
            array PIV[M2]; array SRC[M2][M2] bytes 64;
            for i = 0..M2 { for j = 0..M2 {
              S1: A[i][j] = A[i][j] - ROW[j] * COL[i] + SRC[i][j];
              S2: A[i][j] = A[i][j] / PIV[i];
            } })",
                                          "lu/update", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array PROW[M]; array AP[M][M]; array PSEL[M];
            for i = 0..M {
              S1: PROW[i] = AP[i][PSEL[i]];
            })",
                                          "lu/pivot", w.arrays, params));
        w.nests.push_back(ir::parseKernel(R"(
            array TB[M][M] bytes 64; array TL[M][M] bytes 64;
            array TX[M][M] bytes 64; array TY[M][M] bytes 64;
            for i = 0..M { for j = 0..M {
              S1: TB[i][j] = TB[i][j] - TL[i][j] * TX[j][i]
                             - TY[i][j];
            } })",
                                          "lu/trsm", w.arrays, params));
                installIndex(w, "PSEL", scatterIndices(side, side, rng));
        markMcdram(w, {"A"});
    } else if (app == "ocean") {
        // Red-black relaxation over many distinct field arrays (psi,
        // vorticity, work grids — the real SPLASH-2 ocean touches 6-9
        // arrays per statement): wide operand spread, high gains.
        w.nests.push_back(ir::parseKernel(R"(
            array PSI[M][M]; array PSIM[M][M]; array WRK1[M][M];
            array WRK2[M][M]; array WRK3[M][M]; array WRK4[M][M];
            array GA[M][M]; array GB[M][M];
            for i = 1..M-1 { for j = 1..M-1 {
              S1: GA[i][j] = WRK1[i][j-1] + WRK2[i][j+1] + WRK3[i-1][j]
                             + WRK4[i+1][j] + PSI[i][j] * 0.2
                             + PSIM[i][j];
              S2: GB[i][j] = GA[i][j] - PSI[i][j] + WRK2[i][j+1];
            } })",
                                          "ocean/relax", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array VORT[M][M]; array BIDX[M]; array BVAL[M];
            for i = 0..M {
              S1: VORT[i][BIDX[i]] = BVAL[i];
              S2: VORT[i][0] = VORT[i][0] + BVAL[i];
            })",
                                          "ocean/boundary", w.arrays,
                                          params));
        installIndex(w, "BIDX", scatterIndices(side, side, rng));
        markMcdram(w, {"PSI", "WRK1", "WRK2"});
    } else if (app == "radiosity") {
        // Visibility-weighted energy exchange through two indirect
        // patch references.
        w.nests.push_back(ir::parseKernel(R"(
            array RAD[N]; array RADP[N]; array FF1[N]; array FF2[N];
            array VIS1[N]; array VIS2[N];
            for i = 0..N {
              S1: RAD[i] = RAD[i] + FF1[i] * RADP[VIS1[i]]
                           + FF2[i] * RADP[VIS2[i]];
            })",
                                          "radiosity/gather", w.arrays,
                                          params));
        w.nests.back().timingTrips = 4;
        w.nests.back().inspectorTrips = 1;
        w.nests.push_back(ir::parseKernel(R"(
            array AREA[N]; array EMIT[N]; array TOT[N];
            for i = 0..N {
              S1: TOT[i] = TOT[i] + RAD[i] * AREA[i] + EMIT[i];
            })",
                                          "radiosity/total", w.arrays,
                                          params));
        installIndex(w, "VIS1", neighborIndices(n, 64, 0.3, rng));
        installIndex(w, "VIS2", neighborIndices(n, 256, 0.5, rng));
        markMcdram(w, {"RAD", "RADP"});
    } else if (app == "radix") {
        // Digit extraction (shift/logical ops) plus histogram scatter
        // through an indirect left-hand side.
        w.nests.push_back(ir::parseKernel(R"(
            array KEY[N]; array DIG[N]; array SH[N]; array MSK[N];
            for i = 0..N {
              S1: DIG[i] = (KEY[i] >> SH[i]) & MSK[i];
            })",
                                          "radix/digits", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array CNT[N]; array ONE[N]; array BKT[N];
            for i = 0..N {
              S1: CNT[BKT[i]] = CNT[BKT[i]] + ONE[i];
            })",
                                          "radix/hist", w.arrays,
                                          params));
                installIndex(w, "BKT", scatterIndices(n, n, rng));
        markMcdram(w, {"KEY", "CNT"});
    } else if (app == "raytrace") {
        // Shading: a guarded accumulation with indirect texture reads
        // and a mul/div-heavy attenuation statement.
        w.nests.push_back(ir::parseKernel(R"(
            array CLR[N]; array TX[N]; array LT1[N]; array LT2[N];
            array OBJ[N]; array HIT[N];
            for i = 0..N {
              S1: if (HIT[i]) CLR[i] = CLR[i] + TX[OBJ[i]] * LT1[i]
                           + TX[OBJ[i]] * LT2[i];
            })",
                                          "raytrace/shade", w.arrays,
                                          params));
        w.nests.back().timingTrips = 2;
        w.nests.back().inspectorTrips = 1;
        w.nests.push_back(ir::parseKernel(R"(
            array ATT[N]; array NRM[N]; array DST[N]; array LI[N];
            for i = 0..N {
              S1: ATT[i] = NRM[i] / DST[i] * LI[i];
            })",
                                          "raytrace/atten", w.arrays,
                                          params));
        installIndex(w, "OBJ", neighborIndices(n, 128, 0.4, rng));
        markMcdram(w, {"CLR", "TX"});
    } else if (app == "water") {
        // Pair forces: wide, purely affine add/sub statements.
        w.nests.push_back(ir::parseKernel(R"(
            array FX[N]; array EPS[N]; array SIG[N];
            array RA[N]; array RB[N]; array RC[N]; array RD[N];
            for i = 0..N {
              S1: FX[i] = FX[i] + EPS[i] * (RA[i] - RB[i])
                          + SIG[i] * (RC[i] - RD[i]);
              S2: RA[i] = RA[i] + FX[i] * EPS[i];
            })",
                                          "water/forces", w.arrays,
                                          params));
        w.nests.push_back(ir::parseKernel(R"(
            array KIN[N]; array VSQ[N]; array MAS[N];
            for i = 0..N {
              S1: KIN[i] = KIN[i] + MAS[i] * VSQ[i];
            })",
                                          "water/energy", w.arrays,
                                          params));
        markMcdram(w, {"FX", "RA", "RB"});
    } else if (app == "minimd") {
        // Lennard-Jones forces over 3 neighbor-list entries: the
        // longest statements in the suite -> highest parallelism and
        // movement reduction.
        w.nests.push_back(ir::parseKernel(R"(
            array X[N]; array F[N]; array W1[N]; array W2[N];
            array W3[N]; array NL1[N]; array NL2[N]; array NL3[N];
            for i = 0..N {
              S1: F[i] = F[i] + (X[NL1[i]] - X[i]) * W1[i]
                         + (X[NL2[i]] - X[i]) * W2[i]
                         + (X[NL3[i]] - X[i]) * W3[i];
            })",
                                          "minimd/force", w.arrays,
                                          params));
        w.nests.back().timingTrips = 4;
        w.nests.back().inspectorTrips = 1;
        w.nests.push_back(ir::parseKernel(R"(
            array V[N]; array DTF[N];
            for i = 0..N {
              S1: V[i] = V[i] + F[i] * DTF[i];
              S2: X[i] = X[i] + V[i] * DTF[i];
            })",
                                          "minimd/integrate", w.arrays,
                                          params));
        installIndex(w, "NL1", neighborIndices(n, 16, 0.05, rng));
        installIndex(w, "NL2", neighborIndices(n, 32, 0.1, rng));
        installIndex(w, "NL3", neighborIndices(n, 96, 0.2, rng));
        markMcdram(w, {"X", "F"});
    } else if (app == "minixyce") {
        // Sparse matrix-vector products from circuit simulation: one
        // indirect column read among mostly affine traffic.
        w.nests.push_back(ir::parseKernel(R"(
            array Y[N]; array AV[N]; array XV[N]; array BV[N];
            array CI[N];
            for i = 0..N {
              S1: Y[i] = Y[i] + AV[i] * XV[CI[i]] + BV[i];
              S2: XV[i] = XV[i] + Y[i] * BV[i];
            })",
                                          "minixyce/spmv", w.arrays,
                                          params));
        w.nests.back().timingTrips = 4;
        w.nests.back().inspectorTrips = 1;
        w.nests.push_back(ir::parseKernel(R"(
            array G[N]; array DV[N]; array RES[N];
            for i = 0..N {
              S1: RES[i] = G[i] * DV[i] - RES[i];
            })",
                                          "minixyce/residual", w.arrays,
                                          params));
        installIndex(w, "CI", neighborIndices(n, 24, 0.1, rng));
        markMcdram(w, {"Y", "AV", "XV"});
    } else {
        fatal("unknown application '" + app + "'");
    }
    return w;
}

} // namespace ndp::workloads
