#ifndef NDP_WORKLOADS_WORKLOAD_H
#define NDP_WORKLOADS_WORKLOAD_H

/**
 * @file
 * Synthetic stand-ins for the paper's 12 applications (Splash-2 [63] +
 * Mantevo [23], Section 6.1). Each workload reproduces the *statement
 * shapes* that drive the paper's results for that application: operand
 * counts and spreads (data movement, Figure 13), operator mixes
 * (Table 3), indirect-access fractions (Table 1's compile-time
 * analyzability), and cross-statement reuse (Figures 16, 20, 21).
 * Kernels are written in the textual IR and parsed, so every workload
 * is also a parser/system test.
 */

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "ir/array.h"
#include "ir/statement.h"

namespace ndp::workloads {

/** One application: arrays, loop nests, and MCDRAM placement hints. */
struct Workload
{
    std::string name;
    ir::ArrayTable arrays;
    std::vector<ir::LoopNest> nests;
    /** Arrays the Vtune-style profiling step places in MCDRAM. */
    std::unordered_set<ir::ArrayId> mcdramArrays;

    /** Total statement instances across all nests. */
    std::int64_t
    statementInstances() const
    {
        std::int64_t total = 0;
        for (const ir::LoopNest &nest : nests)
            total += nest.iterationCount() *
                     static_cast<std::int64_t>(nest.body().size());
        return total;
    }
};

/** Builds the 12 applications at a given problem scale. */
class WorkloadFactory
{
  public:
    /**
     * @param scale base 1D extent (2D kernels use sqrt-ish splits);
     *        the default keeps a full 12-app experiment run in seconds
     * @param seed drives index-array synthesis (neighbor lists etc.)
     */
    explicit WorkloadFactory(std::int64_t scale = 4096,
                             std::uint64_t seed = 7);

    /** The paper's application list, in Table 1 order. */
    static const std::vector<std::string> &appNames();

    /** Build one application by name (throws on unknown names). */
    Workload build(const std::string &app) const;

    /** Build all 12. */
    std::vector<Workload> buildAll() const;

  private:
    std::int64_t scale_;
    std::uint64_t seed_;
};

} // namespace ndp::workloads

#endif // NDP_WORKLOADS_WORKLOAD_H
