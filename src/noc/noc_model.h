#ifndef NDP_NOC_NOC_MODEL_H
#define NDP_NOC_NOC_MODEL_H

/**
 * @file
 * Latency model for the on-chip network. Section 2 of the paper names
 * the three factors of network time: number of links, data volume, and
 * congestion. NocModel turns (route length, flits, link loads) into a
 * cycle count:
 *
 *   latency = router_cycles
 *           + hops * per_hop_cycles
 *           + (flits - 1) * serialization_cycles
 *           + sum over route links of congestion(link)
 *
 * congestion(link) = congestion_cycles_per_excess *
 *                    max(0, load(link) - capacity) / capacity
 * which grows linearly once a link's recorded traffic exceeds its
 * nominal capacity. The congestion term is fed by the pass-1
 * TrafficMatrix, making pass 2 deterministic.
 */

#include <cstdint>

#include "noc/mesh_topology.h"
#include "noc/traffic_matrix.h"
#include "support/stats.h"

namespace ndp::noc {

/** Tunable latency parameters (defaults approximate a KNL-class mesh). */
struct NocParams
{
    /** Fixed router pipeline cost paid once per message. */
    std::int64_t routerCycles = 2;
    /** Cycles per link traversal. */
    std::int64_t perHopCycles = 3;
    /** Extra cycles per additional flit (serialization). */
    std::int64_t serializationCycles = 1;
    /** Nominal per-link capacity in flits before congestion sets in. */
    std::int64_t linkCapacity = 4096;
    /** Congestion penalty per unit of excess load ratio, per link. */
    double congestionCyclesPerExcess = 4.0;
};

/**
 * Stateless latency calculator plus streaming latency statistics
 * (average / maximum message latency, Figure 19's metrics).
 */
class NocModel
{
  public:
    NocModel(const MeshTopology &mesh, NocParams params);

    const MeshTopology &mesh() const { return *mesh_; }
    const NocParams &params() const { return params_; }

    /**
     * Latency of a @p flits-flit message from @p from to @p to given the
     * pass-1 traffic in @p traffic. Also records the value into the
     * latency statistics. A local (from == to) message costs 0.
     */
    std::int64_t messageLatency(NodeId from, NodeId to, std::int64_t flits,
                                const TrafficMatrix &traffic);

    /** Same computation with no congestion input (ideal, pass-1 use). */
    std::int64_t uncontendedLatency(NodeId from, NodeId to,
                                    std::int64_t flits) const;

    /** Message latency statistics accumulated so far. */
    const Accumulator &latencyStats() const { return latency_; }

    void resetStats() { latency_.reset(); }

  private:
    std::int64_t congestionPenalty(NodeId from, NodeId to,
                                   const TrafficMatrix &traffic) const;

    const MeshTopology *mesh_;
    NocParams params_;
    Accumulator latency_;
};

} // namespace ndp::noc

#endif // NDP_NOC_NOC_MODEL_H
