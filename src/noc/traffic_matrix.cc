#include "noc/traffic_matrix.h"

#include <algorithm>

#include "support/error.h"

namespace ndp::noc {

TrafficMatrix::TrafficMatrix(const MeshTopology &mesh)
    : mesh_(&mesh),
      load_(static_cast<std::size_t>(mesh.linkCount()), 0)
{
}

void
TrafficMatrix::addMessage(NodeId from, NodeId to, std::int64_t flits)
{
    NDP_CHECK(flits >= 0, "negative flit count");
    ++messages_;
    if (from == to)
        return;
    for (std::int32_t link : mesh_->route(from, to)) {
        load_[static_cast<std::size_t>(link)] += flits;
        totalFlitHops_ += flits;
    }
}

std::int64_t
TrafficMatrix::linkLoad(std::int32_t link_index) const
{
    NDP_CHECK(link_index >= 0 &&
                  static_cast<std::size_t>(link_index) < load_.size(),
              "bad link index " << link_index);
    return load_[static_cast<std::size_t>(link_index)];
}

std::int64_t
TrafficMatrix::maxLinkLoad() const
{
    if (load_.empty())
        return 0;
    return *std::max_element(load_.begin(), load_.end());
}

double
TrafficMatrix::meanActiveLinkLoad() const
{
    std::int64_t sum = 0;
    std::int64_t active = 0;
    for (std::int64_t l : load_) {
        if (l > 0) {
            sum += l;
            ++active;
        }
    }
    return active == 0 ? 0.0
                       : static_cast<double>(sum) /
                             static_cast<double>(active);
}

void
TrafficMatrix::reset()
{
    std::fill(load_.begin(), load_.end(), 0);
    totalFlitHops_ = 0;
    messages_ = 0;
}

} // namespace ndp::noc
