#include "noc/mesh_topology.h"

#include <algorithm>
#include <deque>

#include "support/error.h"

namespace ndp::noc {

namespace {

/**
 * Sentinel distance between pairs with no surviving path (one endpoint
 * dead). Large enough to lose every comparison, small enough that a
 * handful of additions cannot overflow int32.
 */
constexpr std::int32_t kUnreachable = 1 << 28;

/**
 * Forward adjacency of the surviving directed graph: for each live
 * node, its live out-neighbours in canonical +x/-x/+y/-y order, with
 * failed links and dead routers removed.
 */
std::vector<std::vector<NodeId>>
survivingAdjacency(std::int32_t cols, std::int32_t rows, bool torus,
                   const fault::FaultModel &faults,
                   const std::vector<std::uint8_t> &live)
{
    const std::int32_t count = cols * rows;
    std::vector<std::vector<NodeId>> adjacency(
        static_cast<std::size_t>(count));
    const auto neighbor = [&](NodeId node,
                              std::int32_t dir) -> NodeId {
        const std::int32_t x = node % cols;
        const std::int32_t y = node / cols;
        switch (dir) {
          case 0:
            if (x + 1 < cols)
                return node + 1;
            return torus ? y * cols : kInvalidNode;
          case 1:
            if (x > 0)
                return node - 1;
            return torus ? y * cols + cols - 1 : kInvalidNode;
          case 2:
            if (y + 1 < rows)
                return node + cols;
            return torus ? x : kInvalidNode;
          default:
            if (y > 0)
                return node - cols;
            return torus ? (rows - 1) * cols + x : kInvalidNode;
        }
    };
    for (NodeId node = 0; node < count; ++node) {
        if (!live[static_cast<std::size_t>(node)])
            continue;
        for (std::int32_t dir = 0; dir < 4; ++dir) {
            const NodeId next = neighbor(node, dir);
            if (next == kInvalidNode || next == node)
                continue;
            if (!live[static_cast<std::size_t>(next)])
                continue;
            if (faults.isLinkFailed(node, next))
                continue;
            adjacency[static_cast<std::size_t>(node)].push_back(next);
        }
    }
    return adjacency;
}

/** BFS over @p adjacency from @p source; distances in hops. */
std::vector<std::int32_t>
bfsFrom(NodeId source,
        const std::vector<std::vector<NodeId>> &adjacency)
{
    std::vector<std::int32_t> dist(adjacency.size(), kUnreachable);
    dist[static_cast<std::size_t>(source)] = 0;
    std::deque<NodeId> frontier{source};
    while (!frontier.empty()) {
        const NodeId node = frontier.front();
        frontier.pop_front();
        const std::int32_t next_d =
            dist[static_cast<std::size_t>(node)] + 1;
        for (NodeId next : adjacency[static_cast<std::size_t>(node)]) {
            auto &d = dist[static_cast<std::size_t>(next)];
            if (next_d < d) {
                d = next_d;
                frontier.push_back(next);
            }
        }
    }
    return dist;
}

std::vector<std::uint8_t>
livenessMask(std::int32_t count, const fault::FaultModel &faults)
{
    std::vector<std::uint8_t> live(static_cast<std::size_t>(count), 1);
    for (NodeId node : faults.deadNodes()) {
        if (node >= 0 && node < count)
            live[static_cast<std::size_t>(node)] = 0;
    }
    return live;
}

} // namespace

MeshTopology::MeshTopology(std::int32_t cols, std::int32_t rows,
                           bool torus, fault::FaultModel faults)
    : cols_(cols), rows_(rows), torus_(torus),
      faults_(std::move(faults))
{
    NDP_REQUIRE(cols >= 2 && rows >= 2,
                "mesh must be at least 2x2, got " << cols << "x" << rows);
    // Each node has up to 4 outgoing links; we reserve a dense slot for
    // all 4 directions per node (absent edge slots are simply unused).
    linkCount_ = nodeCount() * 4;
    mcNodes_ = {
        nodeAt({0, 0}),
        nodeAt({cols_ - 1, 0}),
        nodeAt({0, rows_ - 1}),
        nodeAt({cols_ - 1, rows_ - 1}),
    };

    if (faults_.empty()) {
        // Healthy chip: precompute every pairwise Manhattan distance
        // once. O(N^2) int32 entries is a few KB for paper-scale
        // meshes, and it turns the planner's and simulator's hottest
        // function into a single table load. All nodes are live.
        const std::size_t n = static_cast<std::size_t>(nodeCount());
        distanceTable_.resize(n * n);
        for (NodeId a = 0; a < nodeCount(); ++a) {
            for (NodeId b = 0; b < nodeCount(); ++b) {
                distanceTable_[static_cast<std::size_t>(a) * n +
                               static_cast<std::size_t>(b)] =
                    distanceUncached(a, b);
            }
        }
        liveNodes_.resize(n);
        for (NodeId node = 0; node < nodeCount(); ++node)
            liveNodes_[static_cast<std::size_t>(node)] = node;
        return;
    }
    buildFaultTables();
}

void
MeshTopology::buildFaultTables()
{
    const std::int32_t count = nodeCount();
    for (NodeId node : faults_.deadNodes()) {
        NDP_REQUIRE(node >= 0 && node < count,
                    "fault set kills node " << node
                        << " outside the " << cols_ << "x" << rows_
                        << " mesh");
    }
    for (NodeId node : faults_.degradedNodes()) {
        NDP_REQUIRE(node >= 0 && node < count,
                    "fault set degrades node " << node
                        << " outside the " << cols_ << "x" << rows_
                        << " mesh");
    }
    for (const auto &[from, to] : faults_.failedLinks()) {
        NDP_REQUIRE(from >= 0 && from < count && to >= 0 && to < count,
                    "fault set fails link " << from << " -> " << to
                        << " outside the " << cols_ << "x" << rows_
                        << " mesh");
    }
    for (NodeId mc : mcNodes_) {
        NDP_REQUIRE(!faults_.isDead(mc),
                    "fault set kills memory-controller node "
                        << mc << "; corner tiles are hardened");
    }

    live_ = livenessMask(count, faults_);
    liveNodes_.clear();
    for (NodeId node = 0; node < count; ++node) {
        if (live_[static_cast<std::size_t>(node)])
            liveNodes_.push_back(node);
    }

    // Shortest surviving paths: one BFS per live source over the
    // directed surviving graph. Pairs with a dead endpoint stay at the
    // kUnreachable sentinel (no caller may route them); any live pair
    // left unreachable means the chip is not usable — fail fast.
    const auto adjacency =
        survivingAdjacency(cols_, rows_, torus_, faults_, live_);
    const std::size_t n = static_cast<std::size_t>(count);
    distanceTable_.assign(n * n, kUnreachable);
    for (NodeId node = 0; node < count; ++node)
        distanceTable_[static_cast<std::size_t>(node) * n +
                       static_cast<std::size_t>(node)] = 0;
    for (NodeId source : liveNodes_) {
        const std::vector<std::int32_t> dist = bfsFrom(source, adjacency);
        for (NodeId target : liveNodes_) {
            const std::int32_t d =
                dist[static_cast<std::size_t>(target)];
            NDP_REQUIRE(d < kUnreachable,
                        "fault set disconnects the mesh ("
                            << faults_.describe() << "): no route "
                            << source << " -> " << target);
            distanceTable_[static_cast<std::size_t>(source) * n +
                           static_cast<std::size_t>(target)] = d;
        }
    }

    // Dead banks re-home to the nearest live node by *healthy*
    // Manhattan distance (the physical proximity of the bank), with
    // the lowest node id breaking ties deterministically. liveNodes_
    // is ascending, so the strict < keeps the first (lowest) winner.
    rehome_.resize(n);
    for (NodeId node = 0; node < count; ++node) {
        if (live_[static_cast<std::size_t>(node)]) {
            rehome_[static_cast<std::size_t>(node)] = node;
            continue;
        }
        NodeId best = kInvalidNode;
        std::int32_t best_d = kUnreachable;
        for (NodeId candidate : liveNodes_) {
            const std::int32_t d = distanceUncached(node, candidate);
            if (d < best_d) {
                best = candidate;
                best_d = d;
            }
        }
        NDP_CHECK(best != kInvalidNode, "no live re-home target");
        rehome_[static_cast<std::size_t>(node)] = best;
    }
}

bool
MeshTopology::faultsLeaveMeshConnected(std::int32_t cols,
                                       std::int32_t rows, bool torus,
                                       const fault::FaultModel &faults)
{
    NDP_REQUIRE(cols >= 2 && rows >= 2,
                "mesh must be at least 2x2, got " << cols << "x" << rows);
    const std::int32_t count = cols * rows;
    for (NodeId node : faults.deadNodes()) {
        if (node < 0 || node >= count)
            return false;
    }
    const NodeId corners[4] = {0, cols - 1, (rows - 1) * cols,
                               count - 1};
    for (NodeId mc : corners) {
        if (faults.isDead(mc))
            return false;
    }
    const std::vector<std::uint8_t> live = livenessMask(count, faults);
    const auto adjacency =
        survivingAdjacency(cols, rows, torus, faults, live);
    // Strong connectivity of the live subgraph: forward BFS from one
    // live seed must reach every live node, and so must a BFS over the
    // reversed edges (links fail per direction).
    std::vector<std::vector<NodeId>> reversed(adjacency.size());
    for (NodeId from = 0; from < count; ++from) {
        for (NodeId to : adjacency[static_cast<std::size_t>(from)])
            reversed[static_cast<std::size_t>(to)].push_back(from);
    }
    const NodeId seed = corners[0];
    const std::vector<std::int32_t> fwd = bfsFrom(seed, adjacency);
    const std::vector<std::int32_t> rev = bfsFrom(seed, reversed);
    for (NodeId node = 0; node < count; ++node) {
        if (!live[static_cast<std::size_t>(node)])
            continue;
        if (fwd[static_cast<std::size_t>(node)] >= kUnreachable ||
            rev[static_cast<std::size_t>(node)] >= kUnreachable)
            return false;
    }
    return true;
}

bool
MeshTopology::contains(const Coord &c) const
{
    return c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_;
}

NodeId
MeshTopology::nodeAt(const Coord &c) const
{
    NDP_CHECK(contains(c), "coord out of mesh: " << c.toString());
    return c.y * cols_ + c.x;
}

Coord
MeshTopology::coordOf(NodeId node) const
{
    NDP_CHECK(node >= 0 && node < nodeCount(), "bad node id " << node);
    return {node % cols_, node / cols_};
}

std::int32_t
MeshTopology::distanceUncached(NodeId a, NodeId b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    if (!torus_)
        return manhattanDistance(ca, cb);
    const std::int32_t dx = std::abs(ca.x - cb.x);
    const std::int32_t dy = std::abs(ca.y - cb.y);
    return std::min(dx, cols_ - dx) + std::min(dy, rows_ - dy);
}

std::int32_t
MeshTopology::stepToward(std::int32_t from, std::int32_t to,
                         std::int32_t extent) const
{
    if (from == to)
        return 0;
    if (!torus_)
        return to > from ? 1 : -1;
    const std::int32_t forward = (to - from + extent) % extent;
    const std::int32_t backward = extent - forward;
    return forward <= backward ? 1 : -1;
}

NodeId
MeshTopology::neighborIn(NodeId node, std::int32_t dir) const
{
    const std::int32_t x = node % cols_;
    const std::int32_t y = node / cols_;
    switch (dir) {
      case 0:
        if (x + 1 < cols_)
            return node + 1;
        return torus_ ? y * cols_ : kInvalidNode;
      case 1:
        if (x > 0)
            return node - 1;
        return torus_ ? y * cols_ + cols_ - 1 : kInvalidNode;
      case 2:
        if (y + 1 < rows_)
            return node + cols_;
        return torus_ ? x : kInvalidNode;
      default:
        if (y > 0)
            return node - cols_;
        return torus_ ? (rows_ - 1) * cols_ + x : kInvalidNode;
    }
}

std::int32_t
MeshTopology::linkIndex(NodeId from, NodeId to) const
{
    const Coord cf = coordOf(from);
    const Coord ct = coordOf(to);
    // Direction encoding: 0 = +x, 1 = -x, 2 = +y, 3 = -y; torus wrap
    // links reuse the direction they logically continue.
    std::int32_t dir = -1;
    if (ct.y == cf.y) {
        if (ct.x == cf.x + 1 || (torus_ && cf.x == cols_ - 1 && ct.x == 0))
            dir = 0;
        else if (ct.x == cf.x - 1 ||
                 (torus_ && cf.x == 0 && ct.x == cols_ - 1))
            dir = 1;
    } else if (ct.x == cf.x) {
        if (ct.y == cf.y + 1 || (torus_ && cf.y == rows_ - 1 && ct.y == 0))
            dir = 2;
        else if (ct.y == cf.y - 1 ||
                 (torus_ && cf.y == 0 && ct.y == rows_ - 1))
            dir = 3;
    }
    NDP_CHECK(dir >= 0, "linkIndex on non-adjacent nodes "
                            << cf.toString() << " -> " << ct.toString());
    return from * 4 + dir;
}

std::vector<std::int32_t>
MeshTopology::route(NodeId from, NodeId to) const
{
    std::vector<std::int32_t> links;
    const std::vector<NodeId> nodes = routeNodes(from, to);
    links.reserve(nodes.size() > 0 ? nodes.size() - 1 : 0);
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
        links.push_back(linkIndex(nodes[i], nodes[i + 1]));
    return links;
}

std::vector<NodeId>
MeshTopology::routeNodes(NodeId from, NodeId to) const
{
    if (hasFaults()) {
        // Greedy descent on the BFS distance LUT: from each node take
        // the first canonical-order (+x/-x/+y/-y) surviving link whose
        // endpoint is one hop closer to the destination. BFS
        // guarantees such a neighbour exists on every shortest path,
        // and the fixed scan order makes the route deterministic.
        NDP_CHECK(isLive(from) && isLive(to),
                  "routing through dead node: " << from << " -> "
                                                << to);
        std::vector<NodeId> nodes;
        nodes.reserve(static_cast<std::size_t>(distance(from, to)) + 1);
        nodes.push_back(from);
        NodeId cur = from;
        while (cur != to) {
            const std::int32_t remaining = distance(cur, to);
            NodeId chosen = kInvalidNode;
            for (std::int32_t dir = 0; dir < 4; ++dir) {
                const NodeId next = neighborIn(cur, dir);
                if (next == kInvalidNode || next == cur)
                    continue;
                if (!isLive(next) || faults_.isLinkFailed(cur, next))
                    continue;
                if (distance(next, to) == remaining - 1) {
                    chosen = next;
                    break;
                }
            }
            NDP_CHECK(chosen != kInvalidNode,
                      "no next hop from " << cur << " toward " << to);
            nodes.push_back(chosen);
            cur = chosen;
        }
        return nodes;
    }

    Coord cur = coordOf(from);
    const Coord dst = coordOf(to);
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<std::size_t>(distance(from, to)) + 1);
    nodes.push_back(from);
    while (cur.x != dst.x) { // X dimension first
        cur.x = (cur.x + stepToward(cur.x, dst.x, cols_) + cols_) %
                cols_;
        nodes.push_back(nodeAt(cur));
    }
    while (cur.y != dst.y) { // then Y
        cur.y = (cur.y + stepToward(cur.y, dst.y, rows_) + rows_) %
                rows_;
        nodes.push_back(nodeAt(cur));
    }
    return nodes;
}

QuadrantId
MeshTopology::quadrantOf(NodeId node) const
{
    const Coord c = coordOf(node);
    const bool right = c.x >= (cols_ + 1) / 2;
    const bool bottom = c.y >= (rows_ + 1) / 2;
    return (bottom ? 2 : 0) + (right ? 1 : 0);
}

NodeId
MeshTopology::memoryControllerOfQuadrant(QuadrantId q) const
{
    NDP_CHECK(q >= 0 && q < 4, "bad quadrant " << q);
    // mcNodes_ order matches the quadrant encoding: top-left, top-right,
    // bottom-left, bottom-right.
    return mcNodes_[static_cast<std::size_t>(q)];
}

NodeId
MeshTopology::nearestMemoryController(NodeId node) const
{
    NodeId best = mcNodes_.front();
    std::int32_t best_d = distance(node, best);
    for (NodeId mc : mcNodes_) {
        const std::int32_t d = distance(node, mc);
        if (d < best_d) {
            best = mc;
            best_d = d;
        }
    }
    return best;
}

} // namespace ndp::noc
