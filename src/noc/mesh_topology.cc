#include "noc/mesh_topology.h"

#include "support/error.h"

namespace ndp::noc {

MeshTopology::MeshTopology(std::int32_t cols, std::int32_t rows,
                           bool torus)
    : cols_(cols), rows_(rows), torus_(torus)
{
    NDP_REQUIRE(cols >= 2 && rows >= 2,
                "mesh must be at least 2x2, got " << cols << "x" << rows);
    // Each node has up to 4 outgoing links; we reserve a dense slot for
    // all 4 directions per node (absent edge slots are simply unused).
    linkCount_ = nodeCount() * 4;
    mcNodes_ = {
        nodeAt({0, 0}),
        nodeAt({cols_ - 1, 0}),
        nodeAt({0, rows_ - 1}),
        nodeAt({cols_ - 1, rows_ - 1}),
    };
    // Precompute every pairwise distance once: O(N^2) int32 entries is
    // a few KB for paper-scale meshes, and it turns the planner's and
    // simulator's hottest function into a single table load.
    const std::size_t n = static_cast<std::size_t>(nodeCount());
    distanceTable_.resize(n * n);
    for (NodeId a = 0; a < nodeCount(); ++a) {
        for (NodeId b = 0; b < nodeCount(); ++b) {
            distanceTable_[static_cast<std::size_t>(a) * n +
                           static_cast<std::size_t>(b)] =
                distanceUncached(a, b);
        }
    }
}

bool
MeshTopology::contains(const Coord &c) const
{
    return c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_;
}

NodeId
MeshTopology::nodeAt(const Coord &c) const
{
    NDP_CHECK(contains(c), "coord out of mesh: " << c.toString());
    return c.y * cols_ + c.x;
}

Coord
MeshTopology::coordOf(NodeId node) const
{
    NDP_CHECK(node >= 0 && node < nodeCount(), "bad node id " << node);
    return {node % cols_, node / cols_};
}

std::int32_t
MeshTopology::distanceUncached(NodeId a, NodeId b) const
{
    const Coord ca = coordOf(a);
    const Coord cb = coordOf(b);
    if (!torus_)
        return manhattanDistance(ca, cb);
    const std::int32_t dx = std::abs(ca.x - cb.x);
    const std::int32_t dy = std::abs(ca.y - cb.y);
    return std::min(dx, cols_ - dx) + std::min(dy, rows_ - dy);
}

std::int32_t
MeshTopology::stepToward(std::int32_t from, std::int32_t to,
                         std::int32_t extent) const
{
    if (from == to)
        return 0;
    if (!torus_)
        return to > from ? 1 : -1;
    const std::int32_t forward = (to - from + extent) % extent;
    const std::int32_t backward = extent - forward;
    return forward <= backward ? 1 : -1;
}

std::int32_t
MeshTopology::linkIndex(NodeId from, NodeId to) const
{
    const Coord cf = coordOf(from);
    const Coord ct = coordOf(to);
    // Direction encoding: 0 = +x, 1 = -x, 2 = +y, 3 = -y; torus wrap
    // links reuse the direction they logically continue.
    std::int32_t dir = -1;
    if (ct.y == cf.y) {
        if (ct.x == cf.x + 1 || (torus_ && cf.x == cols_ - 1 && ct.x == 0))
            dir = 0;
        else if (ct.x == cf.x - 1 ||
                 (torus_ && cf.x == 0 && ct.x == cols_ - 1))
            dir = 1;
    } else if (ct.x == cf.x) {
        if (ct.y == cf.y + 1 || (torus_ && cf.y == rows_ - 1 && ct.y == 0))
            dir = 2;
        else if (ct.y == cf.y - 1 ||
                 (torus_ && cf.y == 0 && ct.y == rows_ - 1))
            dir = 3;
    }
    NDP_CHECK(dir >= 0, "linkIndex on non-adjacent nodes "
                            << cf.toString() << " -> " << ct.toString());
    return from * 4 + dir;
}

std::vector<std::int32_t>
MeshTopology::route(NodeId from, NodeId to) const
{
    std::vector<std::int32_t> links;
    const std::vector<NodeId> nodes = routeNodes(from, to);
    links.reserve(nodes.size() > 0 ? nodes.size() - 1 : 0);
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
        links.push_back(linkIndex(nodes[i], nodes[i + 1]));
    return links;
}

std::vector<NodeId>
MeshTopology::routeNodes(NodeId from, NodeId to) const
{
    Coord cur = coordOf(from);
    const Coord dst = coordOf(to);
    std::vector<NodeId> nodes;
    nodes.reserve(static_cast<std::size_t>(distance(from, to)) + 1);
    nodes.push_back(from);
    while (cur.x != dst.x) { // X dimension first
        cur.x = (cur.x + stepToward(cur.x, dst.x, cols_) + cols_) %
                cols_;
        nodes.push_back(nodeAt(cur));
    }
    while (cur.y != dst.y) { // then Y
        cur.y = (cur.y + stepToward(cur.y, dst.y, rows_) + rows_) %
                rows_;
        nodes.push_back(nodeAt(cur));
    }
    return nodes;
}

QuadrantId
MeshTopology::quadrantOf(NodeId node) const
{
    const Coord c = coordOf(node);
    const bool right = c.x >= (cols_ + 1) / 2;
    const bool bottom = c.y >= (rows_ + 1) / 2;
    return (bottom ? 2 : 0) + (right ? 1 : 0);
}

NodeId
MeshTopology::memoryControllerOfQuadrant(QuadrantId q) const
{
    NDP_CHECK(q >= 0 && q < 4, "bad quadrant " << q);
    // mcNodes_ order matches the quadrant encoding: top-left, top-right,
    // bottom-left, bottom-right.
    return mcNodes_[static_cast<std::size_t>(q)];
}

NodeId
MeshTopology::nearestMemoryController(NodeId node) const
{
    NodeId best = mcNodes_.front();
    std::int32_t best_d = distance(node, best);
    for (NodeId mc : mcNodes_) {
        const std::int32_t d = distance(node, mc);
        if (d < best_d) {
            best = mc;
            best_d = d;
        }
    }
    return best;
}

} // namespace ndp::noc
