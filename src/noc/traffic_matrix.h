#ifndef NDP_NOC_TRAFFIC_MATRIX_H
#define NDP_NOC_TRAFFIC_MATRIX_H

/**
 * @file
 * Per-link traffic accounting. The simulator runs two passes: pass one
 * records, for every message, the flit-count crossing each physical link
 * (this matrix); pass two converts per-link load into a congestion delay.
 * This realises the paper's observation that a longer distance "also
 * increases chances for contention" without a full flit-level model.
 */

#include <cstdint>
#include <vector>

#include "noc/mesh_topology.h"

namespace ndp::noc {

/** Flit counts per unidirectional link, plus aggregate statistics. */
class TrafficMatrix
{
  public:
    explicit TrafficMatrix(const MeshTopology &mesh);

    /** Account @p flits crossing every link of the XY route from->to. */
    void addMessage(NodeId from, NodeId to, std::int64_t flits);

    /** Raw flit count over the dense link @p link_index. */
    std::int64_t linkLoad(std::int32_t link_index) const;

    /** Sum of flit x link products = total data movement (Equation 1). */
    std::int64_t totalFlitHops() const { return totalFlitHops_; }

    /** Number of messages recorded. */
    std::int64_t messageCount() const { return messages_; }

    /** Highest per-link load (a proxy for the congestion hot spot). */
    std::int64_t maxLinkLoad() const;

    /** Mean load over links that carried any traffic. */
    double meanActiveLinkLoad() const;

    void reset();

  private:
    const MeshTopology *mesh_;
    std::vector<std::int64_t> load_;
    std::int64_t totalFlitHops_ = 0;
    std::int64_t messages_ = 0;
};

} // namespace ndp::noc

#endif // NDP_NOC_TRAFFIC_MATRIX_H
