#ifndef NDP_NOC_MESH_TOPOLOGY_H
#define NDP_NOC_MESH_TOPOLOGY_H

/**
 * @file
 * The M x N 2D-mesh topology of the target manycore (Figure 1). Each
 * node holds a core, a private L1, and one bank of the shared SNUCA L2.
 * Memory controllers sit at the four corner nodes. Messages are routed
 * with deterministic dimension-ordered (XY) routing, which traverses
 * exactly ManhattanDistance links.
 */

#include <cstdint>
#include <vector>

#include "noc/coord.h"
#include "support/error.h"

namespace ndp::noc {

/**
 * Identifier of one unidirectional physical link. Links connect
 * adjacent nodes; the id encodes (source node, direction).
 */
struct LinkId
{
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;

    bool operator==(const LinkId &other) const = default;
};

/** Quadrant index (0..3) used by the quadrant / SNC-4 cluster modes. */
using QuadrantId = std::int32_t;

/**
 * Rectangular 2D mesh (optionally a torus) with row-major node
 * numbering.
 *
 * The topology is immutable after construction. All routing here is
 * minimal XY routing: traverse the X dimension first, then Y; the hop
 * count therefore equals the (wrap-aware) Manhattan distance. The
 * torus option exercises the paper's claim that the approach works
 * with any on-chip topology (Section 2).
 */
class MeshTopology
{
  public:
    /**
     * @param cols mesh width (N in the paper's M x N template)
     * @param rows mesh height
     * @param torus add wrap-around links in both dimensions
     */
    MeshTopology(std::int32_t cols, std::int32_t rows,
                 bool torus = false);

    bool isTorus() const { return torus_; }

    std::int32_t cols() const { return cols_; }
    std::int32_t rows() const { return rows_; }
    std::int32_t nodeCount() const { return cols_ * rows_; }

    /** Dense per-link index space for traffic accounting. */
    std::int32_t linkCount() const { return linkCount_; }

    bool contains(const Coord &c) const;

    NodeId nodeAt(const Coord &c) const;
    Coord coordOf(NodeId node) const;

    /**
     * Manhattan (wrap-aware on a torus) distance between two nodes.
     * Served from a precomputed O(N^2) table — distance() sits on the
     * locate/MST/traffic hot paths, so it must be a single load.
     */
    std::int32_t
    distance(NodeId a, NodeId b) const
    {
        NDP_CHECK(a >= 0 && a < nodeCount() && b >= 0 &&
                      b < nodeCount(),
                  "bad node pair " << a << ", " << b);
        return distanceTable_[static_cast<std::size_t>(a) *
                                  static_cast<std::size_t>(nodeCount()) +
                              static_cast<std::size_t>(b)];
    }

    /**
     * The same distance computed from coordinates, bypassing the
     * table. Kept as the independent reference the property tests
     * cross-check the LUT against.
     */
    std::int32_t distanceUncached(NodeId a, NodeId b) const;

    /**
     * The dense index of the unidirectional link from @p from to the
     * adjacent node @p to. Used to index TrafficMatrix counters.
     */
    std::int32_t linkIndex(NodeId from, NodeId to) const;

    /**
     * Minimal XY route from @p from to @p to as a sequence of dense link
     * indices. Empty when from == to.
     */
    std::vector<std::int32_t> route(NodeId from, NodeId to) const;

    /** Nodes visited by the XY route, inclusive of both endpoints. */
    std::vector<NodeId> routeNodes(NodeId from, NodeId to) const;

    /**
     * The corner nodes hosting the memory controllers (Figure 1):
     * (0,0), (cols-1,0), (0,rows-1), (cols-1,rows-1).
     */
    const std::vector<NodeId> &memoryControllerNodes() const
    {
        return mcNodes_;
    }

    /** Quadrant (0..3) containing @p node, for quadrant/SNC-4 modes. */
    QuadrantId quadrantOf(NodeId node) const;

    /** The memory-controller node located in quadrant @p q. */
    NodeId memoryControllerOfQuadrant(QuadrantId q) const;

    /** Nearest memory controller to @p node by Manhattan distance. */
    NodeId nearestMemoryController(NodeId node) const;

  private:
    /** Signed minimal step (-1/0/+1) from @p from to @p to, modular
     *  when the topology is a torus. */
    std::int32_t stepToward(std::int32_t from, std::int32_t to,
                            std::int32_t extent) const;

    std::int32_t cols_;
    std::int32_t rows_;
    bool torus_;
    std::int32_t linkCount_;
    std::vector<NodeId> mcNodes_;
    /** distance(a, b) == distanceTable_[a * nodeCount() + b]. */
    std::vector<std::int32_t> distanceTable_;
};

} // namespace ndp::noc

#endif // NDP_NOC_MESH_TOPOLOGY_H
