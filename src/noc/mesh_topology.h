#ifndef NDP_NOC_MESH_TOPOLOGY_H
#define NDP_NOC_MESH_TOPOLOGY_H

/**
 * @file
 * The M x N 2D-mesh topology of the target manycore (Figure 1). Each
 * node holds a core, a private L1, and one bank of the shared SNUCA L2.
 * Memory controllers sit at the four corner nodes. Messages are routed
 * with deterministic dimension-ordered (XY) routing, which traverses
 * exactly ManhattanDistance links.
 *
 * The topology optionally carries a fault::FaultModel. With an empty
 * model the behaviour is bit-identical to the healthy mesh (XY routes,
 * Manhattan LUT). With faults, routing switches to shortest paths over
 * the surviving directed graph (dead routers and failed links removed,
 * BFS-rebuilt distance LUT, deterministic +x/-x/+y/-y next-hop
 * tiebreak), construction fails fast with ndp::fatal when the live
 * mesh is not strongly connected, and rehomeOf() maps each dead node's
 * L2 bank to its nearest live node.
 */

#include <cstdint>
#include <vector>

#include "fault/fault_model.h"
#include "noc/coord.h"
#include "support/error.h"

namespace ndp::noc {

/**
 * Identifier of one unidirectional physical link. Links connect
 * adjacent nodes; the id encodes (source node, direction).
 */
struct LinkId
{
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;

    bool operator==(const LinkId &other) const = default;
};

/** Quadrant index (0..3) used by the quadrant / SNC-4 cluster modes. */
using QuadrantId = std::int32_t;

/**
 * Rectangular 2D mesh (optionally a torus) with row-major node
 * numbering.
 *
 * The topology is immutable after construction. Without faults all
 * routing is minimal XY routing: traverse the X dimension first, then
 * Y; the hop count therefore equals the (wrap-aware) Manhattan
 * distance. The torus option exercises the paper's claim that the
 * approach works with any on-chip topology (Section 2).
 */
class MeshTopology
{
  public:
    /**
     * @param cols mesh width (N in the paper's M x N template)
     * @param rows mesh height
     * @param torus add wrap-around links in both dimensions
     * @param faults dead/degraded nodes and failed links; the empty
     *        model reproduces the healthy mesh exactly. Fatal if a
     *        corner (memory-controller) node is dead or the surviving
     *        mesh is not strongly connected.
     */
    MeshTopology(std::int32_t cols, std::int32_t rows,
                 bool torus = false, fault::FaultModel faults = {});

    bool isTorus() const { return torus_; }

    std::int32_t cols() const { return cols_; }
    std::int32_t rows() const { return rows_; }
    std::int32_t nodeCount() const { return cols_ * rows_; }

    /** Dense per-link index space for traffic accounting. */
    std::int32_t linkCount() const { return linkCount_; }

    bool contains(const Coord &c) const;

    NodeId nodeAt(const Coord &c) const;
    Coord coordOf(NodeId node) const;

    /**
     * Hop distance between two nodes: Manhattan (wrap-aware on a
     * torus) on the healthy mesh, shortest surviving path under
     * faults. Served from a precomputed O(N^2) table — distance()
     * sits on the locate/MST/traffic hot paths, so it must stay a
     * single load in release builds (hence NDP_DCHECK).
     */
    std::int32_t
    distance(NodeId a, NodeId b) const
    {
        NDP_DCHECK(a >= 0 && a < nodeCount() && b >= 0 &&
                       b < nodeCount(),
                   "bad node pair " << a << ", " << b);
        return distanceTable_[static_cast<std::size_t>(a) *
                                  static_cast<std::size_t>(nodeCount()) +
                              static_cast<std::size_t>(b)];
    }

    /**
     * The healthy-mesh Manhattan distance computed from coordinates,
     * bypassing the table and ignoring faults. Kept as the independent
     * reference: property tests cross-check the LUT against it, and
     * under faults it lower-bounds the detoured distance.
     */
    std::int32_t distanceUncached(NodeId a, NodeId b) const;

    /**
     * The dense index of the unidirectional link from @p from to the
     * adjacent node @p to. Used to index TrafficMatrix counters.
     */
    std::int32_t linkIndex(NodeId from, NodeId to) const;

    /**
     * Route from @p from to @p to as a sequence of dense link indices:
     * minimal XY on the healthy mesh, shortest surviving path under
     * faults. Empty when from == to.
     */
    std::vector<std::int32_t> route(NodeId from, NodeId to) const;

    /** Nodes visited by the route, inclusive of both endpoints. */
    std::vector<NodeId> routeNodes(NodeId from, NodeId to) const;

    /**
     * The corner nodes hosting the memory controllers (Figure 1):
     * (0,0), (cols-1,0), (0,rows-1), (cols-1,rows-1).
     */
    const std::vector<NodeId> &memoryControllerNodes() const
    {
        return mcNodes_;
    }

    /** Quadrant (0..3) containing @p node, for quadrant/SNC-4 modes. */
    QuadrantId quadrantOf(NodeId node) const;

    /** The memory-controller node located in quadrant @p q. */
    NodeId memoryControllerOfQuadrant(QuadrantId q) const;

    /** Nearest memory controller to @p node by hop distance. */
    NodeId nearestMemoryController(NodeId node) const;

    // ------------------------------------------------------------------
    // Fault queries. All are trivially cheap; with an empty model they
    // answer as if every node were live.

    bool hasFaults() const { return !faults_.empty(); }
    const fault::FaultModel &faults() const { return faults_; }

    /** Is @p node's tile (core + caches + router) usable? */
    bool
    isLive(NodeId node) const
    {
        NDP_DCHECK(node >= 0 && node < nodeCount(),
                   "bad node id " << node);
        return live_.empty() ||
               live_[static_cast<std::size_t>(node)] != 0;
    }

    /** Live node ids, ascending. Equals all nodes when fault-free. */
    const std::vector<NodeId> &liveNodes() const { return liveNodes_; }

    /**
     * Where @p node's L2 bank content lives: @p node itself when live,
     * else the nearest live node by healthy Manhattan distance with a
     * deterministic lowest-id tiebreak. AddressMap applies this to
     * every home-bank lookup so the compiler and the simulator agree
     * on re-homed banks.
     */
    NodeId
    rehomeOf(NodeId node) const
    {
        NDP_DCHECK(node >= 0 && node < nodeCount(),
                   "bad node id " << node);
        return rehome_.empty() ? node
                               : rehome_[static_cast<std::size_t>(node)];
    }

    /**
     * Cheap pre-check used by fault campaigns before paying for a full
     * topology: would this fault set keep the mesh strongly connected
     * (and all four corner memory controllers alive)? Constructing a
     * MeshTopology with a model that fails this check is fatal.
     */
    static bool faultsLeaveMeshConnected(std::int32_t cols,
                                         std::int32_t rows, bool torus,
                                         const fault::FaultModel &faults);

  private:
    /** Signed minimal step (-1/0/+1) from @p from to @p to, modular
     *  when the topology is a torus. */
    std::int32_t stepToward(std::int32_t from, std::int32_t to,
                            std::int32_t extent) const;

    /** Neighbour of @p node in direction @p dir (0=+x,1=-x,2=+y,3=-y),
     *  kInvalidNode when off-mesh (non-torus edge). */
    NodeId neighborIn(NodeId node, std::int32_t dir) const;

    /** BFS distance LUT + liveness/rehome tables for the fault set. */
    void buildFaultTables();

    std::int32_t cols_;
    std::int32_t rows_;
    bool torus_;
    std::int32_t linkCount_;
    fault::FaultModel faults_;
    std::vector<NodeId> mcNodes_;
    /** distance(a, b) == distanceTable_[a * nodeCount() + b]. */
    std::vector<std::int32_t> distanceTable_;
    /** Per-node liveness mask; empty when fault-free (all live). */
    std::vector<std::uint8_t> live_;
    std::vector<NodeId> liveNodes_;
    /** Dead-bank re-home map; empty when fault-free (identity). */
    std::vector<NodeId> rehome_;
};

} // namespace ndp::noc

#endif // NDP_NOC_MESH_TOPOLOGY_H
