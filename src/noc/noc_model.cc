#include "noc/noc_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace ndp::noc {

NocModel::NocModel(const MeshTopology &mesh, NocParams params)
    : mesh_(&mesh), params_(params)
{
    NDP_REQUIRE(params_.linkCapacity > 0, "link capacity must be positive");
}

std::int64_t
NocModel::uncontendedLatency(NodeId from, NodeId to,
                             std::int64_t flits) const
{
    if (from == to)
        return 0;
    const std::int64_t hops = mesh_->distance(from, to);
    return params_.routerCycles + hops * params_.perHopCycles +
           std::max<std::int64_t>(0, flits - 1) *
               params_.serializationCycles;
}

std::int64_t
NocModel::congestionPenalty(NodeId from, NodeId to,
                            const TrafficMatrix &traffic) const
{
    if (from == to)
        return 0;
    double penalty = 0.0;
    for (std::int32_t link : mesh_->route(from, to)) {
        const std::int64_t load = traffic.linkLoad(link);
        const std::int64_t excess = load - params_.linkCapacity;
        if (excess > 0) {
            penalty += params_.congestionCyclesPerExcess *
                       static_cast<double>(excess) /
                       static_cast<double>(params_.linkCapacity);
        }
    }
    return static_cast<std::int64_t>(std::llround(penalty));
}

std::int64_t
NocModel::messageLatency(NodeId from, NodeId to, std::int64_t flits,
                         const TrafficMatrix &traffic)
{
    const std::int64_t cycles = uncontendedLatency(from, to, flits) +
                                congestionPenalty(from, to, traffic);
    if (from != to)
        latency_.add(static_cast<double>(cycles));
    return cycles;
}

} // namespace ndp::noc
