#ifndef NDP_NOC_COORD_H
#define NDP_NOC_COORD_H

/**
 * @file
 * Mesh coordinates and the Manhattan distance metric of Section 2:
 * MD(n_ij, n_xy) = |i - x| + |j - y|, the minimum number of network links
 * a message must traverse between the two nodes.
 */

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>

namespace ndp::noc {

/** Dense node identifier: row-major index into the mesh. */
using NodeId = std::int32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** A position (x = column, y = row) on the 2D mesh. */
struct Coord
{
    std::int32_t x = 0;
    std::int32_t y = 0;

    bool operator==(const Coord &other) const = default;

    std::string
    toString() const
    {
        return "(" + std::to_string(x) + "," + std::to_string(y) + ")";
    }
};

/** Manhattan distance between two mesh positions (Section 2). */
inline std::int32_t
manhattanDistance(const Coord &a, const Coord &b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

} // namespace ndp::noc

template <>
struct std::hash<ndp::noc::Coord>
{
    std::size_t
    operator()(const ndp::noc::Coord &c) const noexcept
    {
        return std::hash<std::int64_t>()(
            (static_cast<std::int64_t>(c.x) << 32) ^
            static_cast<std::int64_t>(c.y));
    }
};

#endif // NDP_NOC_COORD_H
