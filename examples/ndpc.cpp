/**
 * @file
 * ndpc — a miniature "NDP compiler" driver over the library's public
 * API. Reads a kernel in the textual IR from a file (or stdin), runs
 * the whole pipeline, and reports:
 *
 *   - the parsed nest and its static analyzability,
 *   - the nested variable sets of each statement (Section 4.2),
 *   - the adaptive window choice and planning statistics,
 *   - Figure-8-style generated pseudo-code for the first iterations,
 *   - the simulated default-vs-optimized comparison.
 *
 * Usage:
 *   ndpc [kernel-file] [--param NAME=VALUE]... [--mesh CxR]
 *        [--window W] [--iterations-shown K]
 *
 * With no file, a built-in demo kernel is compiled.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "baseline/default_placement.h"
#include "ir/dependence.h"
#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "partition/codegen.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "support/error.h"
#include "support/table.h"

namespace {

const char *kDemoKernel = R"(
array A[N]; array B[N]; array C[N]; array D[N]; array E[N];
array X[N]; array Y[N];
for i = 0..N {
  S1: A[i] = B[i] + C[i] + D[i] + E[i];
  S2: X[i] = Y[i] + C[i];
}
)";

void
printSets(const ndp::ir::VarSet &set, const ndp::ir::Statement &stmt,
          const ndp::ir::ArrayTable &arrays, int depth)
{
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    std::cout << indent << "(";
    bool first = true;
    for (const auto &elem : set.elems) {
        if (!first)
            std::cout << " ";
        first = false;
        if (elem.isLeaf()) {
            std::cout << stmt.reads()[static_cast<std::size_t>(
                                          elem.leaf)]
                             ->toString(arrays, {"i", "j", "k"});
        } else {
            std::cout << "\n";
            printSets(*elem.sub, stmt, arrays, depth + 1);
        }
    }
    std::cout << ")";
    if (depth == 0)
        std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ndp;

    std::string source = kDemoKernel;
    ir::ParamMap params = {{"N", 1024}};
    std::int32_t mesh_cols = 6, mesh_rows = 6;
    std::int32_t fixed_window = 0;
    std::int64_t shown = 1;

    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        auto next_value = [&]() -> std::string {
            if (a + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++a];
        };
        if (arg == "--param") {
            const std::string kv = next_value();
            const auto eq = kv.find('=');
            if (eq == std::string::npos) {
                std::cerr << "--param expects NAME=VALUE\n";
                return 1;
            }
            params[kv.substr(0, eq)] = std::atoll(kv.c_str() + eq + 1);
        } else if (arg == "--mesh") {
            const std::string dims = next_value();
            const auto x = dims.find('x');
            if (x == std::string::npos) {
                std::cerr << "--mesh expects CxR, e.g. 6x6\n";
                return 1;
            }
            mesh_cols = std::atoi(dims.c_str());
            mesh_rows = std::atoi(dims.c_str() + x + 1);
        } else if (arg == "--window") {
            fixed_window = std::atoi(next_value().c_str());
        } else if (arg == "--iterations-shown") {
            shown = std::atoll(next_value().c_str());
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: ndpc [kernel-file] "
                         "[--param NAME=VALUE]... [--mesh CxR] "
                         "[--window W] [--iterations-shown K]\n";
            return 0;
        } else {
            std::ifstream file(arg);
            if (!file) {
                std::cerr << "cannot open kernel file '" << arg
                          << "'\n";
                return 1;
            }
            std::ostringstream buffer;
            buffer << file.rdbuf();
            source = buffer.str();
        }
    }

    try {
        // ---- Front end. ----
        ir::ArrayTable arrays;
        arrays.setDefaultElementSize(64);
        ir::LoopNest nest =
            ir::parseKernel(source, "kernel", arrays, params);

        std::cout << "== parsed kernel ==\n"
                  << nest.toString(arrays) << "\n"
                  << "statically analyzable references: "
                  << 100.0 * ir::analyzableFraction(nest) << "%\n\n";

        std::cout << "== nested variable sets (Section 4.2) ==\n";
        for (const ir::Statement &stmt : nest.body()) {
            std::cout << stmt.label() << ": ";
            const ir::VarSet sets = ir::buildVarSets(stmt);
            printSets(sets, stmt, arrays, 0);
        }

        // ---- Machine, baseline, partitioner. ----
        sim::ManycoreConfig config;
        config.meshCols = mesh_cols;
        config.meshRows = mesh_rows;
        sim::ManycoreSystem system(config);
        sim::ExecutionEngine engine(system);
        baseline::DefaultPlacement placement(system, arrays);
        const auto nodes = placement.assignIterations(nest);
        const sim::SimResult def =
            engine.run(placement.buildPlan(nest, nodes));

        partition::PartitionOptions options;
        options.fixedWindowSize = fixed_window;
        partition::Partitioner partitioner(system, arrays, options);
        const sim::ExecutionPlan plan = partitioner.plan(nest, nodes);
        const sim::SimResult opt = engine.run(plan);
        const auto &report = partitioner.report();

        std::cout << "\n== plan ==\n"
                  << "window size: " << report.chosenWindowSize
                  << (fixed_window ? " (fixed)" : " (adaptive)")
                  << "\nstatements split: " << report.statementsSplit
                  << ", kept default: "
                  << report.statementsKeptDefault
                  << "\nplanned movement: " << report.plannedMovement
                  << " vs default " << report.defaultMovement
                  << " flit-hops\n";

        std::cout << "\n== generated schedule (iterations 0.."
                  << shown - 1 << ") ==\n"
                  << partition::generatePseudoCode(plan, nest, arrays,
                                                   0, shown - 1);

        Table cmp({"metric", "default", "optimized"});
        cmp.row()
            .cell("execution time (cycles)")
            .cell(def.makespanCycles)
            .cell(opt.makespanCycles);
        cmp.row()
            .cell("data movement (flit-hops)")
            .cell(def.dataMovementFlitHops)
            .cell(opt.dataMovementFlitHops);
        cmp.row()
            .cell("L1 hit rate")
            .cell(def.l1HitRate(), 3)
            .cell(opt.l1HitRate(), 3);
        cmp.row()
            .cell("synchronisations")
            .cell(def.syncCount)
            .cell(opt.syncCount);
        std::cout << "\n== simulation (" << mesh_cols << "x"
                  << mesh_rows << " mesh) ==\n";
        cmp.print(std::cout);
        std::cout << "\nexecution time reduction: "
                  << percentReduction(
                         static_cast<double>(def.makespanCycles),
                         static_cast<double>(opt.makespanCycles))
                  << "%\n";
    } catch (const FatalError &e) {
        std::cerr << "ndpc: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
