/**
 * @file
 * Irregular molecular-dynamics force kernel (MiniMD-style): forces are
 * accumulated through *indirect* neighbor-list accesses X[NL[i]],
 * which the compiler cannot disambiguate statically (a may-dependence,
 * Section 4.5). This example demonstrates the inspector/executor
 * path:
 *
 *  1. Without an inspector, the indirect statement cannot be split —
 *     the plan degenerates to the default placement.
 *  2. With the inspector enabled (the first trips of the outer timing
 *     loop record the realised indices), the same statement splits
 *     into subcomputations near the neighbor data.
 *
 * Run: ./irregular_minimd [atoms]
 */

#include <cstdlib>
#include <iostream>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "support/rng.h"
#include "support/table.h"

namespace {

/** Hub-biased neighbor list, like a real MD cell structure. */
std::vector<std::int64_t>
neighbors(std::int64_t n, ndp::Rng &rng)
{
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t v = rng.nextBool(0.3)
                             ? rng.nextInRange(0, n / 32)
                             : i + rng.nextInRange(-24, 24);
        v %= n;
        if (v < 0)
            v += n;
        idx[static_cast<std::size_t>(i)] = v;
    }
    return idx;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ndp;

    const std::int64_t atoms = argc > 1 ? std::atoll(argv[1]) : 2048;

    ir::ArrayTable arrays;
    arrays.setDefaultElementSize(64); // one particle record per line
    ir::LoopNest nest = ir::parseKernel(R"(
        array X[N]; array F[N]; array W1[N]; array W2[N]; array W3[N];
        array NL1[N]; array NL2[N]; array NL3[N];
        for i = 0..N {
          S1: F[i] = F[i] + (X[NL1[i]] - X[i]) * W1[i]
                     + (X[NL2[i]] - X[i]) * W2[i]
                     + (X[NL3[i]] - X[i]) * W3[i];
        })",
                                        "minimd-force", arrays,
                                        {{"N", atoms}});

    Rng rng(2026);
    arrays.setIndexData(arrays.find("NL1"), neighbors(atoms, rng));
    arrays.setIndexData(arrays.find("NL2"), neighbors(atoms, rng));
    arrays.setIndexData(arrays.find("NL3"), neighbors(atoms, rng));

    std::cout << "Force kernel over " << atoms
              << " atoms, 3 indirect neighbor loads per statement\n"
              << "statically analyzable references: "
              << 100.0 * ir::analyzableFraction(nest) << "%\n\n";

    sim::ManycoreSystem system({});
    sim::ExecutionEngine engine(system);
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    const sim::SimResult def =
        engine.run(placement.buildPlan(nest, nodes));

    Table table({"configuration", "statements split",
                 "exec cycles", "movement (flit-hops)",
                 "improvement%"});

    // ---- 1. No inspector: may-dependences block the transform. ----
    nest.timingTrips = 1;
    nest.inspectorTrips = 0;
    {
        partition::Partitioner partitioner(system, arrays);
        const auto plan = partitioner.plan(nest, nodes);
        const sim::SimResult r = engine.run(plan);
        table.row()
            .cell("compile-time only (no inspector)")
            .cell(partitioner.report().statementsSplit)
            .cell(r.makespanCycles)
            .cell(r.dataMovementFlitHops)
            .cell(percentReduction(
                static_cast<double>(def.makespanCycles),
                static_cast<double>(r.makespanCycles)));
    }

    // ---- 2. Inspector/executor: the first timing-loop trips record
    // the realised neighbor indices; the executor trips are split.
    nest.timingTrips = 8;
    nest.inspectorTrips = 1;
    {
        partition::Partitioner partitioner(system, arrays);
        const auto plan = partitioner.plan(nest, nodes);
        const sim::SimResult r = engine.run(plan);
        table.row()
            .cell("inspector/executor")
            .cell(partitioner.report().statementsSplit)
            .cell(r.makespanCycles)
            .cell(r.dataMovementFlitHops)
            .cell(percentReduction(
                static_cast<double>(def.makespanCycles),
                static_cast<double>(r.makespanCycles)));
    }

    // ---- 3. Oracle disambiguation (upper bound, Section 6.4). ----
    {
        nest.inspectorTrips = 0;
        partition::PartitionOptions options;
        options.oracle = true;
        partition::Partitioner partitioner(system, arrays, options);
        const auto plan = partitioner.plan(nest, nodes);
        const sim::SimResult r = engine.run(plan);
        table.row()
            .cell("ideal data analysis (oracle)")
            .cell(partitioner.report().statementsSplit)
            .cell(r.makespanCycles)
            .cell(r.dataMovementFlitHops)
            .cell(percentReduction(
                static_cast<double>(def.makespanCycles),
                static_cast<double>(r.makespanCycles)));
    }

    std::cout << "default execution: " << def.makespanCycles
              << " cycles, " << def.dataMovementFlitHops
              << " flit-hops\n\n";
    table.print(std::cout);
    std::cout << "\nThe inspector unlocks subcomputation scheduling for "
                 "the irregular statement;\nthe oracle shows how much "
                 "headroom perfect disambiguation would add.\n";
    return 0;
}
