/**
 * @file
 * Ocean-style stencil relaxation: the workload class the paper's
 * introduction motivates (wide statements over many grid arrays, heavy
 * on-chip traffic). This example shows:
 *
 *  - building a 2D kernel through the textual IR,
 *  - the adaptive statement-window selection (Section 4.4): the
 *    planner's movement estimate for every window size 1..8,
 *  - the full default-vs-optimized comparison on the simulated mesh,
 *  - where the gain comes from (movement, L1, network latency).
 *
 * Run with an optional grid side argument: ./stencil_ocean [side]
 */

#include <cstdlib>
#include <iostream>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "support/stats.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace ndp;

    const std::int64_t side = argc > 1 ? std::atoll(argv[1]) : 48;
    if (side < 8) {
        std::cerr << "grid side must be >= 8\n";
        return 1;
    }

    // ---- The kernel: red-black relaxation over six field arrays. ----
    ir::ArrayTable arrays;
    arrays.setDefaultElementSize(64); // one grid cell per cache line
    ir::LoopNest nest = ir::parseKernel(R"(
        array PSI[M][M]; array PSIM[M][M]; array WRK1[M][M];
        array WRK2[M][M]; array WRK3[M][M]; array WRK4[M][M];
        array GA[M][M];  array GB[M][M];
        for i = 1..M-1 { for j = 1..M-1 {
          S1: GA[i][j] = WRK1[i][j-1] + WRK2[i][j+1] + WRK3[i-1][j]
                         + WRK4[i+1][j] + PSI[i][j] * 0.2 + PSIM[i][j];
          S2: GB[i][j] = GA[i][j] - PSI[i][j] + WRK2[i][j+1];
        } })",
                                        "ocean-relax", arrays,
                                        {{"M", side}});
    std::cout << "Relaxation kernel on a " << side << "x" << side
              << " grid (" << nest.iterationCount()
              << " iterations, 2 statements each):\n\n";

    // ---- Machine and baseline. ----
    sim::ManycoreSystem system({});
    sim::ExecutionEngine engine(system);
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    const sim::SimResult def =
        engine.run(placement.buildPlan(nest, nodes));

    // ---- Partition with the adaptive window sweep. The profiled node
    // utilisation feeds the planner's overhead model, exactly as the
    // experiment driver does.
    partition::PartitionOptions options;
    options.profileUtilization =
        static_cast<double>(def.totalBusyCycles) /
        static_cast<double>(def.makespanCycles *
                            system.mesh().nodeCount());
    partition::Partitioner partitioner(system, arrays, options);
    const sim::ExecutionPlan plan = partitioner.plan(nest, nodes);
    const auto &report = partitioner.report();
    const sim::SimResult opt = engine.run(plan);

    Table sweep({"window size", "planned movement (flit-hops)"});
    for (std::size_t w = 0; w < report.movementPerWindowSize.size();
         ++w) {
        std::string label = std::to_string(w + 1);
        if (static_cast<std::int32_t>(w + 1) ==
            report.chosenWindowSize)
            label += " <= chosen";
        sweep.row().cell(label).cell(report.movementPerWindowSize[w]);
    }
    std::cout << "Adaptive window selection (Section 4.4):\n";
    sweep.print(std::cout);

    Table cmp({"metric", "default", "optimized", "reduction%"});
    auto add = [&](const char *name, double d, double o) {
        cmp.row().cell(name).cell(d).cell(o).cell(
            percentReduction(d, o));
    };
    add("execution time (cycles)",
        static_cast<double>(def.makespanCycles),
        static_cast<double>(opt.makespanCycles));
    add("data movement (flit-hops)",
        static_cast<double>(def.dataMovementFlitHops),
        static_cast<double>(opt.dataMovementFlitHops));
    add("avg network latency", def.avgNetworkLatency,
        opt.avgNetworkLatency);
    add("max network latency", def.maxNetworkLatency,
        opt.maxNetworkLatency);
    add("energy (nJ)", def.energy.total() / 1000.0,
        opt.energy.total() / 1000.0);
    std::cout << "\nDefault vs optimized (simulated 6x6 mesh):\n";
    cmp.print(std::cout);

    std::cout << "\nL1 hit rate: " << def.l1HitRate() << " -> "
              << opt.l1HitRate()
              << "\nper-statement movement reduction: "
              << report.movementReductionPct.mean() << "% avg, "
              << report.movementReductionPct.max() << "% max"
              << "\ndegree of parallelism: "
              << report.degreeOfParallelism.mean() << " avg"
              << "\nsynchronisations per statement: "
              << report.syncsPerStatement.mean() << "\n";
    return 0;
}
