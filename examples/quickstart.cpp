/**
 * @file
 * Quickstart: the library in one page.
 *
 *  1. Describe a kernel in the textual IR (or build the IR directly).
 *  2. Build the modelled manycore.
 *  3. Produce the profile-guided default placement and the NDP
 *     partitioner's optimized plan.
 *  4. Simulate both and compare data movement / execution time.
 *
 * The kernel here is the paper's running example (Figure 3):
 * A(i) = B(i) + C(i) + D(i) + E(i).
 */

#include <iostream>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/codegen.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "support/table.h"

int
main()
{
    using namespace ndp;

    // ---- 1. The kernel. ----
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[N]; array B[N]; array C[N]; array D[N]; array E[N];
        for i = 0..N {
          S1: A[i] = B[i] + C[i] + D[i] + E[i];
        })",
                                        "quickstart", arrays,
                                        {{"N", 4096}});
    std::cout << "Kernel:\n" << nest.toString(arrays) << "\n";

    // ---- 2. The machine: a 6x6 mesh (KNL-like), quadrant + flat. ----
    sim::ManycoreConfig machine;
    sim::ManycoreSystem system(machine);
    sim::ExecutionEngine engine(system);

    // ---- 3. Plans. ----
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    sim::ExecutionPlan default_plan = placement.buildPlan(nest, nodes);
    const sim::SimResult def = engine.run(default_plan);

    partition::Partitioner partitioner(system, arrays);
    sim::ExecutionPlan optimized_plan = partitioner.plan(nest, nodes);
    const sim::SimResult opt = engine.run(optimized_plan);

    // ---- 4. Compare. ----
    Table table({"metric", "default", "optimized"});
    table.row()
        .cell("data movement (flit-hops)")
        .cell(def.dataMovementFlitHops)
        .cell(opt.dataMovementFlitHops);
    table.row()
        .cell("execution time (cycles)")
        .cell(def.makespanCycles)
        .cell(opt.makespanCycles);
    table.row()
        .cell("L1 hit rate")
        .cell(def.l1HitRate(), 3)
        .cell(opt.l1HitRate(), 3);
    table.row()
        .cell("avg net latency (cycles)")
        .cell(def.avgNetworkLatency)
        .cell(opt.avgNetworkLatency);
    table.print(std::cout);

    const auto &report = partitioner.report();
    std::cout << "\nchosen window size: " << report.chosenWindowSize
              << "\nper-statement movement reduction: "
              << report.movementReductionPct.mean() << "% (max "
              << report.movementReductionPct.max() << "%)"
              << "\ndegree of parallelism: "
              << report.degreeOfParallelism.mean() << "\n\n";

    std::cout << "Generated schedule for iteration 0 (Figure-8 style):\n"
              << partition::generatePseudoCode(optimized_plan, nest,
                                               arrays, 0, 0);
    return 0;
}
