/**
 * @file
 * Tests for the NoC layer: Manhattan distance, mesh topology and XY
 * routing, traffic accounting, and the latency/congestion model.
 */

#include <gtest/gtest.h>

#include <set>

#include "noc/mesh_topology.h"
#include "noc/noc_model.h"
#include "noc/traffic_matrix.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ndp;
using namespace ndp::noc;

// ---------------------------------------------------------------- Coord

TEST(CoordTest, ManhattanDistanceMatchesDefinition)
{
    // MD(n_ij, n_xy) = |i-x| + |j-y| (Section 2).
    EXPECT_EQ(manhattanDistance({0, 0}, {0, 0}), 0);
    EXPECT_EQ(manhattanDistance({1, 2}, {4, 6}), 7);
    EXPECT_EQ(manhattanDistance({4, 6}, {1, 2}), 7); // symmetric
    EXPECT_EQ(manhattanDistance({-1, 0}, {1, 0}), 2);
}

TEST(CoordTest, EqualityAndHash)
{
    Coord a{2, 3}, b{2, 3}, c{3, 2};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_EQ(std::hash<Coord>()(a), std::hash<Coord>()(b));
}

// --------------------------------------------------------- MeshTopology

TEST(MeshTopologyTest, NodeNumberingRoundTrips)
{
    MeshTopology mesh(6, 6);
    EXPECT_EQ(mesh.nodeCount(), 36);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n)
        EXPECT_EQ(mesh.nodeAt(mesh.coordOf(n)), n);
}

TEST(MeshTopologyTest, RejectsDegenerateMeshes)
{
    EXPECT_THROW(MeshTopology(1, 6), FatalError);
    EXPECT_THROW(MeshTopology(6, 1), FatalError);
}

TEST(MeshTopologyTest, CornersHostMemoryControllers)
{
    MeshTopology mesh(6, 4);
    const auto &mcs = mesh.memoryControllerNodes();
    ASSERT_EQ(mcs.size(), 4u);
    EXPECT_EQ(mesh.coordOf(mcs[0]), (Coord{0, 0}));
    EXPECT_EQ(mesh.coordOf(mcs[1]), (Coord{5, 0}));
    EXPECT_EQ(mesh.coordOf(mcs[2]), (Coord{0, 3}));
    EXPECT_EQ(mesh.coordOf(mcs[3]), (Coord{5, 3}));
}

TEST(MeshTopologyTest, QuadrantsPartitionTheMesh)
{
    MeshTopology mesh(6, 6);
    int count[4] = {0, 0, 0, 0};
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        const QuadrantId q = mesh.quadrantOf(n);
        ASSERT_GE(q, 0);
        ASSERT_LT(q, 4);
        ++count[q];
    }
    for (int q = 0; q < 4; ++q)
        EXPECT_EQ(count[q], 9);
    // The quadrant's MC lives in that quadrant.
    for (QuadrantId q = 0; q < 4; ++q) {
        EXPECT_EQ(mesh.quadrantOf(mesh.memoryControllerOfQuadrant(q)),
                  q);
    }
}

TEST(MeshTopologyTest, NearestMemoryControllerIsNearest)
{
    MeshTopology mesh(6, 6);
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        const NodeId best = mesh.nearestMemoryController(n);
        for (NodeId mc : mesh.memoryControllerNodes())
            EXPECT_LE(mesh.distance(n, best), mesh.distance(n, mc));
    }
}

/** Mesh-shape sweep: XY routes must be minimal and contiguous. */
class MeshRoutingTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MeshRoutingTest, RoutesAreMinimalAndContiguous)
{
    const auto [cols, rows] = GetParam();
    MeshTopology mesh(cols, rows);
    Rng rng(99);
    for (int trial = 0; trial < 64; ++trial) {
        const auto a = static_cast<NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(mesh.nodeCount())));
        const auto b = static_cast<NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(mesh.nodeCount())));
        const auto nodes = mesh.routeNodes(a, b);
        ASSERT_FALSE(nodes.empty());
        EXPECT_EQ(nodes.front(), a);
        EXPECT_EQ(nodes.back(), b);
        // Hop count equals the Manhattan distance (minimal route).
        {
            EXPECT_EQ(static_cast<std::int32_t>(nodes.size()) - 1,
                      mesh.distance(a, b));
        }
        for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
            EXPECT_EQ(mesh.distance(nodes[i], nodes[i + 1]), 1);
        // Links correspond to the node sequence.
        EXPECT_EQ(mesh.route(a, b).size(), nodes.size() - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshRoutingTest,
    ::testing::Values(std::make_pair(2, 2), std::make_pair(6, 6),
                      std::make_pair(8, 4), std::make_pair(3, 7)));

TEST(MeshTopologyTest, XyRoutingGoesXFirst)
{
    MeshTopology mesh(6, 6);
    const NodeId from = mesh.nodeAt({1, 1});
    const NodeId to = mesh.nodeAt({4, 3});
    const auto nodes = mesh.routeNodes(from, to);
    // After the first segment the y coordinate must be unchanged until
    // x reaches the destination column.
    for (const NodeId n : nodes) {
        const Coord c = mesh.coordOf(n);
        if (c.y != 1) {
            EXPECT_EQ(c.x, 4);
        }
    }
}

TEST(MeshTopologyTest, LinkIndexUniquePerDirectedLink)
{
    MeshTopology mesh(4, 4);
    std::set<std::int32_t> seen;
    for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
        const Coord c = mesh.coordOf(n);
        const Coord neighbors[4] = {{c.x + 1, c.y},
                                    {c.x - 1, c.y},
                                    {c.x, c.y + 1},
                                    {c.x, c.y - 1}};
        for (const Coord &nc : neighbors) {
            if (!mesh.contains(nc))
                continue;
            const std::int32_t link =
                mesh.linkIndex(n, mesh.nodeAt(nc));
            EXPECT_TRUE(seen.insert(link).second)
                << "duplicate link index " << link;
            EXPECT_LT(link, mesh.linkCount());
        }
    }
}

TEST(MeshTopologyTest, LinkIndexRejectsNonAdjacent)
{
    MeshTopology mesh(4, 4);
    EXPECT_THROW(mesh.linkIndex(0, 2), PanicError);
}

// -------------------------------------------------------- TrafficMatrix

TEST(TrafficMatrixTest, AccountsFlitHopsAsFlitsTimesDistance)
{
    MeshTopology mesh(6, 6);
    TrafficMatrix traffic(mesh);
    const NodeId a = mesh.nodeAt({0, 0});
    const NodeId b = mesh.nodeAt({3, 2});
    traffic.addMessage(a, b, 8);
    EXPECT_EQ(traffic.totalFlitHops(), 8 * mesh.distance(a, b));
    EXPECT_EQ(traffic.messageCount(), 1);
}

TEST(TrafficMatrixTest, LocalMessageMovesNothing)
{
    MeshTopology mesh(4, 4);
    TrafficMatrix traffic(mesh);
    traffic.addMessage(5, 5, 8);
    EXPECT_EQ(traffic.totalFlitHops(), 0);
    EXPECT_EQ(traffic.messageCount(), 1);
}

TEST(TrafficMatrixTest, PerLinkLoadsAccumulate)
{
    MeshTopology mesh(4, 4);
    TrafficMatrix traffic(mesh);
    const NodeId a = mesh.nodeAt({0, 0});
    const NodeId b = mesh.nodeAt({1, 0});
    traffic.addMessage(a, b, 3);
    traffic.addMessage(a, b, 4);
    EXPECT_EQ(traffic.linkLoad(mesh.linkIndex(a, b)), 7);
    EXPECT_EQ(traffic.maxLinkLoad(), 7);
    EXPECT_DOUBLE_EQ(traffic.meanActiveLinkLoad(), 7.0);
    traffic.reset();
    EXPECT_EQ(traffic.totalFlitHops(), 0);
    EXPECT_EQ(traffic.maxLinkLoad(), 0);
}

TEST(TrafficMatrixTest, OppositeDirectionsAreSeparateLinks)
{
    MeshTopology mesh(4, 4);
    TrafficMatrix traffic(mesh);
    const NodeId a = mesh.nodeAt({0, 0});
    const NodeId b = mesh.nodeAt({1, 0});
    traffic.addMessage(a, b, 2);
    EXPECT_EQ(traffic.linkLoad(mesh.linkIndex(a, b)), 2);
    EXPECT_EQ(traffic.linkLoad(mesh.linkIndex(b, a)), 0);
}

// ------------------------------------------------------------- NocModel

TEST(NocModelTest, UncontendedLatencyComposition)
{
    MeshTopology mesh(6, 6);
    NocParams params;
    params.routerCycles = 2;
    params.perHopCycles = 3;
    params.serializationCycles = 1;
    NocModel model(mesh, params);

    const NodeId a = mesh.nodeAt({0, 0});
    const NodeId b = mesh.nodeAt({2, 1});
    // 3 hops, 8 flits: 2 + 3*3 + 7*1 = 18.
    EXPECT_EQ(model.uncontendedLatency(a, b, 8), 18);
    EXPECT_EQ(model.uncontendedLatency(a, a, 8), 0);
}

TEST(NocModelTest, LatencyMonotonicInDistanceAndSize)
{
    MeshTopology mesh(6, 6);
    NocModel model(mesh, {});
    const NodeId origin = mesh.nodeAt({0, 0});
    std::int64_t prev = -1;
    for (int x = 1; x < 6; ++x) {
        const std::int64_t lat = model.uncontendedLatency(
            origin, mesh.nodeAt({x, 0}), 1);
        EXPECT_GT(lat, prev);
        prev = lat;
    }
    EXPECT_LT(model.uncontendedLatency(origin, mesh.nodeAt({3, 3}), 1),
              model.uncontendedLatency(origin, mesh.nodeAt({3, 3}), 8));
}

TEST(NocModelTest, CongestionKicksInAboveCapacity)
{
    MeshTopology mesh(4, 4);
    NocParams params;
    params.linkCapacity = 10;
    params.congestionCyclesPerExcess = 10.0;
    NocModel model(mesh, params);
    TrafficMatrix traffic(mesh);

    const NodeId a = mesh.nodeAt({0, 0});
    const NodeId b = mesh.nodeAt({1, 0});
    const std::int64_t quiet = model.messageLatency(a, b, 1, traffic);
    traffic.addMessage(a, b, 100); // well above capacity
    const std::int64_t congested =
        model.messageLatency(a, b, 1, traffic);
    EXPECT_GT(congested, quiet);
}

TEST(NocModelTest, LatencyStatsTrackMessages)
{
    MeshTopology mesh(4, 4);
    NocModel model(mesh, {});
    TrafficMatrix traffic(mesh);
    model.messageLatency(0, 1, 1, traffic);
    model.messageLatency(0, 5, 8, traffic);
    EXPECT_EQ(model.latencyStats().count(), 2u);
    EXPECT_GT(model.latencyStats().max(), 0.0);
    // Local messages do not pollute the stats.
    model.messageLatency(3, 3, 8, traffic);
    EXPECT_EQ(model.latencyStats().count(), 2u);
    model.resetStats();
    EXPECT_EQ(model.latencyStats().count(), 0u);
}

TEST(NocModelTest, RejectsNonPositiveCapacity)
{
    MeshTopology mesh(4, 4);
    NocParams params;
    params.linkCapacity = 0;
    EXPECT_THROW(NocModel(mesh, params), FatalError);
}

// ------------------------------------------------------- distance LUT

TEST(MeshTopologyTest, DistanceTableMatchesUncachedOnRandomMeshes)
{
    // distance() is a precomputed-table load on the locate/MST/traffic
    // hot paths; distanceUncached() recomputes from coordinates. They
    // must agree on every pair, for plain meshes and wrap-aware tori.
    Rng rng(0xd157);
    for (int trial = 0; trial < 24; ++trial) {
        const auto cols = static_cast<std::int32_t>(2 + rng.nextBelow(7));
        const auto rows = static_cast<std::int32_t>(2 + rng.nextBelow(7));
        const bool torus = rng.nextBool(0.5);
        MeshTopology mesh(cols, rows, torus);
        const auto nodes = static_cast<std::uint64_t>(mesh.nodeCount());
        for (int pair = 0; pair < 200; ++pair) {
            const auto a = static_cast<NodeId>(rng.nextBelow(nodes));
            const auto b = static_cast<NodeId>(rng.nextBelow(nodes));
            ASSERT_EQ(mesh.distance(a, b), mesh.distanceUncached(a, b))
                << cols << "x" << rows << (torus ? " torus" : " mesh")
                << " nodes " << a << "," << b;
            // On a plain mesh both must equal the coordinate-space
            // Manhattan distance by definition.
            if (!torus) {
                ASSERT_EQ(mesh.distance(a, b),
                          manhattanDistance(mesh.coordOf(a),
                                            mesh.coordOf(b)))
                    << cols << "x" << rows << " nodes " << a << "," << b;
            }
        }
        // A torus can only ever shorten paths, and the wrap matters
        // somewhere on every mesh with an extent > 2.
        if (torus) {
            MeshTopology flat(cols, rows, false);
            bool shorter_somewhere = false;
            for (NodeId a = 0; a < mesh.nodeCount(); ++a) {
                for (NodeId b = 0; b < mesh.nodeCount(); ++b) {
                    ASSERT_LE(mesh.distance(a, b), flat.distance(a, b));
                    shorter_somewhere = shorter_somewhere ||
                                        mesh.distance(a, b) <
                                            flat.distance(a, b);
                }
            }
            if (cols > 2 || rows > 2)
                EXPECT_TRUE(shorter_somewhere)
                    << cols << "x" << rows << " torus never wrapped";
        }
    }
}

} // namespace
