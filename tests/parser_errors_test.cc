/**
 * @file
 * Parser robustness: every malformed kernel must be rejected with an
 * ndp::FatalError carrying a "line N, col M" diagnostic — never a
 * PanicError (those flag library bugs), never an unhandled standard
 * exception, never a crash. The corpus covers lexer overflow, every
 * declaration/loop/statement production, subscript and expression
 * errors, and semantic checks (unknown arrays, arity, affinity).
 */

#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "ir/parser.h"
#include "support/error.h"

namespace {

using namespace ndp;

/**
 * Parse @p src expecting a located FatalError whose message contains
 * @p expect_substr. Anything else — success, PanicError, an escaped
 * std:: exception — fails the test.
 */
void
expectParseError(const std::string &src,
                 const std::string &expect_substr)
{
    ir::ArrayTable arrays;
    try {
        ir::parseKernel(src, "bad", arrays, {{"N", 16}});
        ADD_FAILURE() << "kernel accepted: " << src;
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(expect_substr), std::string::npos)
            << "message '" << msg << "' lacks '" << expect_substr
            << "' for kernel: " << src;
        static const std::regex located("line [0-9]+, col [0-9]+");
        EXPECT_TRUE(std::regex_search(msg, located))
            << "message '" << msg
            << "' lacks a line/col diagnostic for kernel: " << src;
    } catch (const PanicError &e) {
        ADD_FAILURE() << "PanicError (library bug) for kernel: " << src
                      << " — " << e.what();
    } catch (const std::exception &e) {
        ADD_FAILURE() << "unexpected " << typeid(e).name()
                      << " for kernel: " << src << " — " << e.what();
    }
}

TEST(ParserErrorsTest, LexicalErrors)
{
    // 1. integer literal overflowing int64
    expectParseError("array A[99999999999999999999999]; "
                     "for i = 0..4 { A[i] = 1; }",
                     "out of range");
    // 2. overflowing literal in a subscript
    expectParseError("array A[4]; for i = 0..4 "
                     "{ A[123456789012345678901234567890] = 1; }",
                     "out of range");
    // 3. float literal overflowing double (~10^400)
    expectParseError("array A[4]; for i = 0..4 { A[i] = " +
                         std::string(400, '9') + ".5; }",
                     "out of range");
    // 4. empty input
    expectParseError("", "expected 'for'");
    // 5. free-standing garbage
    expectParseError("%%%", "expected 'for'");
}

TEST(ParserErrorsTest, ArrayDeclarationErrors)
{
    // 6. missing array name
    expectParseError("array ;", "expected identifier");
    // 7. missing extents
    expectParseError("array A; for i = 0..4 { A[i] = 1; }",
                     "at least one extent");
    // 8. empty extent brackets
    expectParseError("array A[]; for i = 0..4 { A[i] = 1; }",
                     "expected integer, parameter, or '('");
    // 9. zero extent
    expectParseError("array A[0]; for i = 0..4 { A[i] = 1; }",
                     "non-positive extent");
    // 10. negative computed extent
    expectParseError("array A[4-8]; for i = 0..4 { A[i] = 1; }",
                     "non-positive extent");
    // 11. duplicate declaration
    expectParseError("array A[4]; array A[8]; "
                     "for i = 0..4 { A[i] = 1; }",
                     "duplicate array 'A'");
    // 12. unknown size parameter
    expectParseError("array A[M]; for i = 0..4 { A[i] = 1; }",
                     "unknown size parameter 'M'");
    // 13. division by zero in a size expression
    expectParseError("array A[4/0]; for i = 0..4 { A[i] = 1; }",
                     "division by zero");
    // 14. bad element size
    expectParseError("array A[4] bytes 0-2; "
                     "for i = 0..4 { A[i] = 1; }",
                     "bad element size");
    // 15. missing semicolon after the declaration
    expectParseError("array A[4] for i = 0..4 { A[i] = 1; }",
                     "expected ';'");
    // 16. unclosed extent bracket
    expectParseError("array A[4; for i = 0..4 { A[i] = 1; }",
                     "expected ']'");
}

TEST(ParserErrorsTest, LoopHeaderErrors)
{
    // 17. missing loop variable
    expectParseError("array A[4]; for = 0..4 { A[0] = 1; }",
                     "expected identifier");
    // 18. missing '='
    expectParseError("array A[4]; for i 0..4 { A[i] = 1; }",
                     "expected '='");
    // 19. missing '..' range operator
    expectParseError("array A[4]; for i = 0 4 { A[i] = 1; }",
                     "expected '..'");
    // 20. missing body brace
    expectParseError("array A[4]; for i = 0..4 A[i] = 1;",
                     "expected '{'");
    // 21. empty iteration range
    expectParseError("array A[4]; for i = 4..4 { A[i] = 1; }",
                     "empty range");
    // 22. zero step
    expectParseError("array A[4]; for i = 0..4 step 0 { A[i] = 1; }",
                     "empty range");
    // 23. duplicate loop variable in a nest
    expectParseError("array A[4]; for i = 0..4 { for i = 0..2 "
                     "{ A[i] = 1; } }",
                     "duplicate loop variable 'i'");
    // 24. unclosed loop body
    expectParseError("array A[4]; for i = 0..4 { A[i] = 1;",
                     "expected statement");
    // 25. body with no statements
    expectParseError("array A[4]; for i = 0..4 { }",
                     "has no statements");
    // 26. trailing tokens after the nest
    expectParseError("array A[4]; for i = 0..4 { A[i] = 1; } junk",
                     "trailing input");
}

TEST(ParserErrorsTest, StatementAndReferenceErrors)
{
    // 27. unknown array on the left-hand side
    expectParseError("for i = 0..4 { Z[i] = 1; }",
                     "unknown array 'Z'");
    // 28. unknown array on the right-hand side
    expectParseError("array A[4]; for i = 0..4 { A[i] = Q[i]; }",
                     "unknown array 'Q'");
    // 29. too few subscripts
    expectParseError("array A[4][4]; for i = 0..4 { A[i] = 1; }",
                     "expects 2 subscripts");
    // 30. too many subscripts
    expectParseError("array A[4]; for i = 0..4 { A[i][i] = 1; }",
                     "expects 1 subscripts");
    // 31. missing '=' in a statement
    expectParseError("array A[4]; for i = 0..4 { A[i] 1; }",
                     "expected '='");
    // 32. missing statement semicolon
    expectParseError("array A[4]; for i = 0..4 { A[i] = 1 }",
                     "expected ';'");
    // 33. label with no statement behind it
    expectParseError("array A[4]; for i = 0..4 { S1: ; }",
                     "expected identifier");
    // 34. guard referencing an unknown array
    expectParseError("array A[4]; for i = 0..4 "
                     "{ if (Q[i]) A[i] = 1; }",
                     "unknown array 'Q'");
}

TEST(ParserErrorsTest, SubscriptAndExpressionErrors)
{
    // 35. non-affine subscript (loop var * loop var)
    expectParseError("array A[16]; for i = 0..4 { for j = 0..4 "
                     "{ A[i*j] = 1; } }",
                     "non-affine subscript");
    // 36. unknown name in a subscript
    expectParseError("array A[4]; for i = 0..4 { A[k] = 1; }",
                     "unknown name 'k'");
    // 37. unary minus is not part of the subscript grammar
    expectParseError("array A[4]; for i = 0..4 { A[-i] = 1; }",
                     "unknown name '-'");
    // 38. empty right-hand side
    expectParseError("array A[4]; for i = 0..4 { A[i] = ; }",
                     "expected expression");
    // 39. unbalanced parenthesis on the right-hand side
    expectParseError("array A[4]; for i = 0..4 { A[i] = (1 + 2; }",
                     "expected ')'");
    // 40. min() missing its comma
    expectParseError("array A[4]; for i = 0..4 { A[i] = min(1 2); }",
                     "expected ','");
    // 41. unclosed subscript on a right-hand-side reference
    expectParseError("array A[4]; array B[4]; for i = 0..4 "
                     "{ A[i] = B[i; }",
                     "expected ']'");
    // 42. operator with a missing operand
    expectParseError("array A[4]; for i = 0..4 { A[i] = 1 + ; }",
                     "expected expression");
}

TEST(ParserErrorsTest, DiagnosticsPointAtTheOffendingToken)
{
    // The location must identify the actual offender, not just 1:1.
    ir::ArrayTable arrays;
    try {
        ir::parseKernel("array A[4];\nfor i = 0..4 {\n  A[i] = 1 }\n",
                        "bad", arrays);
        ADD_FAILURE() << "kernel accepted";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        // The '}' that should have been ';' sits at line 3, col 12.
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("near '}'"), std::string::npos) << msg;
    }
}

} // namespace
