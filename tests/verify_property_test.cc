/**
 * @file
 * Property tests for the static plan verifier: real planner output —
 * healthy or running on a faulted chip — must verify clean at the
 * full level with zero diagnostics of any severity. This is the
 * no-false-positives half of the verifier's contract (the mutation
 * tests pin the no-false-negatives half) and doubles as an end-to-end
 * invariant check of the whole planning pipeline on every app.
 */

#include <gtest/gtest.h>

#include "driver/experiment.h"
#include "fault/fault_model.h"
#include "noc/mesh_topology.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;
using driver::AppResult;
using driver::ExperimentConfig;
using driver::ExperimentRunner;

/** Run @p app under @p config and return the merged verify tallies
 *  (ExperimentRunner panics on error-severity findings, so reaching
 *  the return already means no errors fired). */
driver::AppResult
runVerified(const workloads::Workload &app, ExperimentConfig config)
{
    config.partition.verifyLevel = verify::VerifyLevel::Full;
    ExperimentRunner runner(config);
    return runner.runApp(app);
}

void
expectClean(const AppResult &result, const std::string &label)
{
    EXPECT_GT(result.verify.plansVerified, 0) << label;
    EXPECT_EQ(result.verify.errors, 0) << label;
    EXPECT_EQ(result.verify.warnings, 0) << label;
    EXPECT_EQ(result.verify.notes, 0) << label;
}

TEST(VerifyPropertyTest, HealthyPlansVerifyCleanAtFull)
{
    workloads::WorkloadFactory factory(256);
    for (const workloads::Workload &app : factory.buildAll()) {
        const AppResult result = runVerified(app, ExperimentConfig{});
        expectClean(result, app.name);
    }
}

TEST(VerifyPropertyTest, DesignChoiceVariantsVerifyCleanAtFull)
{
    workloads::WorkloadFactory factory(256);
    const workloads::Workload app = factory.buildAll().front();

    ExperimentConfig no_reuse;
    no_reuse.partition.exploitReuse = false;
    expectClean(runVerified(app, no_reuse), "exploitReuse=off");

    ExperimentConfig no_balance;
    no_balance.partition.loadBalance = false;
    expectClean(runVerified(app, no_balance), "loadBalance=off");

    ExperimentConfig oracle;
    oracle.partition.oracle = true;
    expectClean(runVerified(app, oracle), "oracle");

    ExperimentConfig fixed_window;
    fixed_window.partition.fixedWindowSize = 4;
    expectClean(runVerified(app, fixed_window), "fixedWindow=4");
}

TEST(VerifyPropertyTest, FaultedPlansVerifyCleanAtFull)
{
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = factory.buildAll();

    ExperimentConfig config;
    fault::FaultSpec spec;
    spec.nodeFaultRate = 0.05;
    spec.linkFaultRate = 0.05;
    spec.degradedFraction = 0.25;

    // A handful of deterministic fault draws; skip the rare draw that
    // disconnects the mesh, exactly as the fault campaign does.
    int injected = 0;
    for (std::uint64_t seed = 1; seed <= 8 && injected < 3; ++seed) {
        spec.seed = seed;
        fault::FaultModel model = fault::FaultModel::inject(
            config.machine.meshCols, config.machine.meshRows,
            config.machine.torus, spec);
        if (!noc::MeshTopology::faultsLeaveMeshConnected(
                config.machine.meshCols, config.machine.meshRows,
                config.machine.torus, model))
            continue;
        ++injected;
        config.machine.faults = model;
        const workloads::Workload &app =
            apps[static_cast<std::size_t>(injected) % apps.size()];
        expectClean(runVerified(app, config),
                    app.name + " @5% faults seed " +
                        std::to_string(seed));
    }
    EXPECT_GE(injected, 1) << "no connected fault draw in 8 seeds";
}

} // namespace
