/**
 * @file
 * Tests for the manycore model and the two-pass execution engine:
 * access walks through the hierarchy, latency decomposition, plan
 * execution, determinism, warm-up behaviour, and the Figure 18
 * override knobs.
 */

#include <gtest/gtest.h>

#include "sim/energy.h"
#include "sim/engine.h"
#include "sim/manycore.h"
#include "support/error.h"

namespace {

using namespace ndp;
using namespace ndp::sim;

class ManycoreTest : public ::testing::Test
{
  protected:
    ManycoreConfig config;
};

TEST_F(ManycoreTest, WalkReadLevels)
{
    ManycoreSystem system(config);
    const noc::NodeId node = 7;
    MemAccess access{0x4000, 64, 0};

    // Cold: L1 miss, L2 miss -> memory.
    const AccessRecord first = system.walkRead(node, access);
    EXPECT_EQ(first.level, AccessLevel::Memory);
    EXPECT_EQ(first.home,
              system.addressMap().homeBankNode(access.addr));
    EXPECT_EQ(first.mc,
              system.addressMap().memoryControllerNode(access.addr));

    // Immediately after: L1 hit at the same node.
    const AccessRecord second = system.walkRead(node, access);
    EXPECT_EQ(second.level, AccessLevel::L1);

    // From another node: the home bank now holds the line -> L2.
    const AccessRecord remote = system.walkRead(
        node == 0 ? 1 : 0, access);
    EXPECT_EQ(remote.level, AccessLevel::L2);
}

TEST_F(ManycoreTest, AccessLatencyDecomposition)
{
    ManycoreSystem system(config);
    AccessRecord l1;
    l1.level = AccessLevel::L1;
    l1.requester = 0;
    const auto parts = system.accessLatency(l1);
    EXPECT_EQ(parts.core, config.l1HitCycles);
    EXPECT_EQ(parts.network, 0);
    EXPECT_EQ(parts.memory, 0);

    AccessRecord local_l2;
    local_l2.level = AccessLevel::L2;
    local_l2.requester = 5;
    local_l2.home = 5; // same node: no network
    const auto local = system.accessLatency(local_l2);
    EXPECT_EQ(local.network, 0);
    EXPECT_EQ(local.core, config.l1HitCycles + config.l2BankCycles);

    AccessRecord remote_l2 = local_l2;
    remote_l2.home = 35;
    const auto remote = system.accessLatency(remote_l2);
    EXPECT_GT(remote.network, 0);
}

TEST_F(ManycoreTest, WriteIsPostedButMovesData)
{
    ManycoreSystem system(config);
    MemAccess access{0x8000, 64, 0};
    const std::int64_t before = system.traffic().totalFlitHops();
    const AccessRecord rec = system.walkWrite(3, access);
    EXPECT_TRUE(rec.isWrite);
    if (system.addressMap().homeBankNode(access.addr) != 3) {
        EXPECT_GT(system.traffic().totalFlitHops(), before);
    }
    EXPECT_EQ(system.accessLatency(rec).total(), config.l1HitCycles);
}

TEST_F(ManycoreTest, McdramArraysChangeMemoryKind)
{
    ManycoreSystem system(config); // flat mode
    system.setMcdramArrays({2});
    EXPECT_EQ(system.memoryKindOf(2), mem::MemoryKind::Mcdram);
    EXPECT_EQ(system.memoryKindOf(3), mem::MemoryKind::Ddr);
}

TEST_F(ManycoreTest, CacheModeForcesDdrBacking)
{
    config.memoryMode = mem::MemoryMode::Cache;
    ManycoreSystem system(config);
    system.setMcdramArrays({2});
    EXPECT_EQ(system.memoryKindOf(2), mem::MemoryKind::Ddr);
}

TEST_F(ManycoreTest, ResetKeepsPredictorClearsCaches)
{
    ManycoreSystem system(config);
    MemAccess access{0x4000, 64, 0};
    system.walkRead(0, access);
    system.walkRead(0, access);
    const std::int64_t preds = system.missPredictor().predictions();
    EXPECT_GT(preds, 0);
    system.reset();
    EXPECT_EQ(system.l1Stats().accesses(), 0);
    EXPECT_EQ(system.missPredictor().predictions(), preds);
    system.resetPredictor();
    EXPECT_EQ(system.missPredictor().predictions(), 0);
}

// --------------------------------------------------------------- engine

/** Helpers to hand-build small plans. */
Task
makeTask(TaskId id, noc::NodeId node, std::int64_t cost = 1)
{
    Task t;
    t.id = id;
    t.node = node;
    t.computeCost = cost;
    t.statementIndex = 0;
    t.iterationNumber = id;
    return t;
}

class EngineTest : public ::testing::Test
{
  protected:
    ManycoreConfig config;
};

TEST_F(EngineTest, SingleTaskMakespan)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    plan.tasks.push_back(makeTask(0, 3, 2));
    const SimResult result = engine.run(plan);
    EXPECT_EQ(result.taskCount, 1);
    EXPECT_EQ(result.makespanCycles,
              config.perTaskOverheadCycles +
                  2 * config.computeCyclesPerOpUnit);
    EXPECT_EQ(result.syncCount, 0);
}

TEST_F(EngineTest, IndependentTasksRunInParallel)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    for (TaskId i = 0; i < 8; ++i)
        plan.tasks.push_back(makeTask(i, i, 4));
    const SimResult serial_work = engine.run(plan);
    // Eight independent tasks on eight nodes: makespan = one task.
    EXPECT_EQ(serial_work.makespanCycles,
              config.perTaskOverheadCycles +
                  4 * config.computeCyclesPerOpUnit);
    EXPECT_EQ(serial_work.totalBusyCycles,
              8 * serial_work.makespanCycles);
}

TEST_F(EngineTest, SameNodeTasksSerialize)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    for (TaskId i = 0; i < 4; ++i)
        plan.tasks.push_back(makeTask(i, 9, 1));
    const SimResult result = engine.run(plan);
    EXPECT_EQ(result.makespanCycles, 4 * (config.perTaskOverheadCycles +
                                          config.computeCyclesPerOpUnit));
}

TEST_F(EngineTest, CrossNodeDependencyAddsSyncAndMessage)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    plan.tasks.push_back(makeTask(0, 0, 1));
    Task consumer = makeTask(1, 35, 1);
    consumer.deps.push_back(0);
    plan.tasks.push_back(consumer);
    const SimResult result = engine.run(plan);
    EXPECT_EQ(result.syncCount, 1);
    EXPECT_GT(result.syncWaitCycles, 0);
    // Makespan exceeds two serial tasks by the message+sync time.
    EXPECT_GT(result.makespanCycles,
              2 * (config.perTaskOverheadCycles +
                   config.computeCyclesPerOpUnit));
}

TEST_F(EngineTest, SameNodeDependencyNeedsNoSync)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    plan.tasks.push_back(makeTask(0, 4, 1));
    Task consumer = makeTask(1, 4, 1);
    consumer.deps.push_back(0);
    plan.tasks.push_back(consumer);
    const SimResult result = engine.run(plan);
    EXPECT_EQ(result.syncCount, 0);
}

TEST_F(EngineTest, ReadyListFillsWaitGaps)
{
    // One consumer waits on a remote producer; an unrelated task on
    // the consumer's node fills the gap, so makespan is less than the
    // naive serial order.
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    plan.tasks.push_back(makeTask(0, 0, 30)); // slow producer
    Task consumer = makeTask(1, 10, 1);
    consumer.deps.push_back(0);
    plan.tasks.push_back(consumer);
    plan.tasks.push_back(makeTask(2, 10, 30)); // filler on node 10
    const SimResult result = engine.run(plan);
    const std::int64_t producer_time =
        config.perTaskOverheadCycles + 30 * config.computeCyclesPerOpUnit;
    // The filler overlaps the producer, so the makespan is well under
    // producer + filler + consumer run back to back.
    EXPECT_LT(result.makespanCycles,
              2 * producer_time +
                  (config.perTaskOverheadCycles +
                   config.computeCyclesPerOpUnit));
}

TEST_F(EngineTest, DeterministicAcrossRuns)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    for (TaskId i = 0; i < 40; ++i) {
        Task t = makeTask(i, i % 36, 1 + i % 5);
        t.reads.push_back({static_cast<mem::Addr>(0x1000 + 64 * i), 64, 0});
        if (i > 0 && i % 3 == 0)
            t.deps.push_back(i - 1);
        plan.tasks.push_back(t);
    }
    const SimResult a = engine.run(plan);
    const SimResult b = engine.run(plan);
    EXPECT_EQ(a.makespanCycles, b.makespanCycles);
    EXPECT_EQ(a.dataMovementFlitHops, b.dataMovementFlitHops);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.energy.total(), b.energy.total());
}

TEST_F(EngineTest, WarmupRaisesHitRates)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    for (TaskId i = 0; i < 64; ++i) {
        Task t = makeTask(i, i % 36, 1);
        t.reads.push_back({static_cast<mem::Addr>(0x10000 + 64 * i), 64, 0});
        plan.tasks.push_back(t);
    }
    EngineOptions cold;
    cold.warmupPasses = 0;
    EngineOptions warm;
    warm.warmupPasses = 1;
    const SimResult cold_run = engine.run(plan, cold);
    const SimResult warm_run = engine.run(plan, warm);
    // After the warm-up trip every line is resident in its reader's
    // L1, so the measured trip hits where the cold trip missed.
    EXPECT_GT(warm_run.l1.hitRate(), cold_run.l1.hitRate());
    EXPECT_LE(warm_run.makespanCycles, cold_run.makespanCycles);
}

TEST_F(EngineTest, IdealNetworkRemovesNetworkStalls)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    for (TaskId i = 0; i < 32; ++i) {
        Task t = makeTask(i, i % 36, 1);
        t.reads.push_back({static_cast<mem::Addr>(0x20000 + 64 * i), 64, 0});
        plan.tasks.push_back(t);
    }
    EngineOptions ideal;
    ideal.idealNetwork = true;
    const SimResult real = engine.run(plan);
    const SimResult zero = engine.run(plan, ideal);
    EXPECT_EQ(zero.networkStallCycles, 0);
    EXPECT_LE(zero.makespanCycles, real.makespanCycles);
}

TEST_F(EngineTest, L1OverrideMovesHitRateTowardTarget)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    // Reads with zero reuse: natural L1 hit rate ~ 0.
    for (TaskId i = 0; i < 128; ++i) {
        Task t = makeTask(i, i % 36, 1);
        t.reads.push_back({static_cast<mem::Addr>(0x40000 + 64 * i), 64, 0});
        plan.tasks.push_back(t);
    }
    EngineOptions natural;
    natural.warmupPasses = 0; // cold: natural L1 hit rate ~ 0
    const SimResult base = engine.run(plan, natural);
    EngineOptions forced;
    forced.warmupPasses = 0;
    forced.l1HitRateOverride = 0.9;
    const SimResult boosted = engine.run(plan, forced);
    // Higher effective hit rate shows as fewer network stalls.
    EXPECT_LT(boosted.networkStallCycles, base.networkStallCycles);
}

TEST_F(EngineTest, ExtraSyncsPenalizeMakespan)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    plan.tasks.push_back(makeTask(0, 0, 1));
    const SimResult base = engine.run(plan);
    EngineOptions opts;
    opts.extraSyncs = 3600;
    const SimResult penalized = engine.run(plan, opts);
    EXPECT_GT(penalized.makespanCycles, base.makespanCycles);
    EXPECT_EQ(penalized.syncCount, base.syncCount + 3600);
}

TEST_F(EngineTest, ParallelismSpeedupCutsCompute)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    plan.tasks.push_back(makeTask(0, 0, 100));
    EngineOptions opts;
    opts.parallelismSpeedup = 2.0;
    const SimResult fast = engine.run(plan, opts);
    const SimResult slow = engine.run(plan);
    EXPECT_LT(fast.computeCycles, slow.computeCycles);
}

TEST_F(EngineTest, RejectsForwardDependencies)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    ExecutionPlan plan;
    Task t = makeTask(0, 0, 1);
    t.deps.push_back(5); // dep on a later (nonexistent-yet) task
    plan.tasks.push_back(t);
    EXPECT_THROW(engine.run(plan), PanicError);
}

// --------------------------------------------------------------- energy

TEST(EnergyTest, ComponentsScaleWithEvents)
{
    EnergyParams params;
    EnergyEvents events;
    events.opUnits = 100;
    events.l1Accesses = 50;
    events.flitHops = 200;
    events.ddrAccesses = 10;
    events.syncs = 5;
    events.nodeCount = 36;
    events.makespanCycles = 1000;
    const EnergyBreakdown e = computeEnergy(events, params);
    EXPECT_DOUBLE_EQ(e.compute, 100 * params.aluPerOpUnit);
    EXPECT_DOUBLE_EQ(e.network, 200 * params.linkPerFlitHop);
    EXPECT_DOUBLE_EQ(e.memory, 10 * params.ddrAccess);
    EXPECT_DOUBLE_EQ(e.staticLeakage,
                     36 * 1000 * params.staticPerNodeCycle);
    EXPECT_GT(e.total(), 0.0);

    EnergyEvents doubled = events;
    doubled.flitHops *= 2;
    EXPECT_GT(computeEnergy(doubled, params).total(), e.total());
}

TEST(EnergyTest, ZeroEventsZeroEnergy)
{
    EXPECT_DOUBLE_EQ(computeEnergy({}, {}).total(), 0.0);
}

} // namespace
