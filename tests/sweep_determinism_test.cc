/**
 * @file
 * The SweepRunner determinism contract: the same (workload x config)
 * grid produces byte-identical AppResult metrics for any thread count.
 * Fingerprints serialize every aggregate — makespans, energies, the
 * movement-reduction / parallelism / sync accumulators, cache and
 * network metrics — with hexfloat precision, so even a 1-ULP drift
 * (e.g. from a reduction reassociated across threads) fails the test.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;
using namespace ndp::driver;

void
fingerprintAccumulator(std::ostringstream &os, const char *tag,
                       const Accumulator &acc)
{
    os << tag << ':' << acc.count() << ',' << std::hexfloat
       << acc.sum() << ',' << acc.min() << ',' << acc.max() << ';';
}

/** Byte-exact serialization of every AppResult aggregate. */
std::string
fingerprint(const AppResult &r)
{
    std::ostringstream os;
    os << r.app << '|' << r.defaultMakespan << ','
       << r.optimizedMakespan << '|' << std::hexfloat
       << r.defaultEnergy << ',' << r.optimizedEnergy << '|';
    fingerprintAccumulator(os, "mov", r.movementReductionPct);
    fingerprintAccumulator(os, "dop", r.degreeOfParallelism);
    fingerprintAccumulator(os, "sync", r.syncsPerStatement);
    fingerprintAccumulator(os, "rawsync", r.rawSyncsPerStatement);
    os << std::hexfloat << r.defaultL1HitRate << ','
       << r.optimizedL1HitRate << ',' << r.defaultAvgNetLatency << ','
       << r.optimizedAvgNetLatency << ',' << r.defaultMaxNetLatency
       << ',' << r.optimizedMaxNetLatency << ','
       << r.analyzableFraction << ',' << r.predictorAccuracy << '|'
       << r.offloadedOps[0] << ',' << r.offloadedOps[1] << ','
       << r.offloadedOps[2] << '|' << r.nests.size();
    for (const NestResult &nr : r.nests) {
        os << '|' << nr.nest << ':'
           << nr.defaultRun.makespanCycles << ','
           << nr.optimizedRun.makespanCycles << ','
           << nr.defaultRun.dataMovementFlitHops << ','
           << nr.optimizedRun.dataMovementFlitHops << ','
           << nr.optimizedRun.syncCount;
    }
    return os.str();
}

std::vector<std::string>
sweepFingerprints(int threads)
{
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water"), factory.build("lu"),
        factory.build("fft")};

    ExperimentConfig base;
    ExperimentConfig oracle;
    oracle.partition.oracle = true;
    const std::vector<ExperimentConfig> configs = {base, oracle};

    SweepRunner runner(threads);
    const auto grid = runner.runGrid(apps, configs);

    std::vector<std::string> prints;
    for (const auto &row : grid)
        for (const SweepCell &cell : row)
            prints.push_back(fingerprint(cell.result));
    return prints;
}

TEST(SweepDeterminismTest, ByteIdenticalResultsAcross1_2_8Threads)
{
    const std::vector<std::string> t1 = sweepFingerprints(1);
    const std::vector<std::string> t2 = sweepFingerprints(2);
    const std::vector<std::string> t8 = sweepFingerprints(8);

    ASSERT_EQ(t1.size(), 6u); // 3 apps x 2 configs
    ASSERT_EQ(t2.size(), t1.size());
    ASSERT_EQ(t8.size(), t1.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i], t2[i]) << "cell " << i << " differs 1 vs 2";
        EXPECT_EQ(t1[i], t8[i]) << "cell " << i << " differs 1 vs 8";
    }
}

TEST(SweepDeterminismTest, GridMatchesSerialExperimentRunner)
{
    // The pool must be a pure scheduling change: cell [a][c] equals a
    // plain serial ExperimentRunner(configs[c]).runApp(apps[a]).
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water"), factory.build("radix")};
    ExperimentConfig base;
    ExperimentConfig ideal;
    ideal.optimizeComputation = false;
    ideal.idealNetwork = true;
    const std::vector<ExperimentConfig> configs = {base, ideal};

    SweepRunner runner(4);
    const auto grid = runner.runGrid(apps, configs);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            ExperimentRunner serial(configs[c]);
            EXPECT_EQ(fingerprint(grid[a][c].result),
                      fingerprint(serial.runApp(apps[a])))
                << apps[a].name << " config " << c;
        }
    }
}

TEST(SweepDeterminismTest, StatsCoverEveryCell)
{
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water")};
    const std::vector<ExperimentConfig> configs = {ExperimentConfig{},
                                                   ExperimentConfig{}};
    SweepRunner runner(2);
    (void)runner.runGrid(apps, configs);
    EXPECT_EQ(runner.stats().cells, 2u);
    EXPECT_EQ(runner.stats().threads, 2);
    EXPECT_GT(runner.stats().wallSeconds, 0.0);
    EXPECT_GE(runner.stats().cellSecondsSum, 0.0);
}

} // namespace
