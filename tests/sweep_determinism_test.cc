/**
 * @file
 * The SweepRunner determinism contract: the same (workload x config)
 * grid produces byte-identical AppResult metrics for any thread count.
 * Fingerprints serialize every aggregate — makespans, energies, the
 * movement-reduction / parallelism / sync accumulators, cache and
 * network metrics — with hexfloat precision, so even a 1-ULP drift
 * (e.g. from a reduction reassociated across threads) fails the test.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;
using namespace ndp::driver;

void
fingerprintAccumulator(std::ostringstream &os, const char *tag,
                       const Accumulator &acc)
{
    os << tag << ':' << acc.count() << ',' << std::hexfloat
       << acc.sum() << ',' << acc.min() << ',' << acc.max() << ';';
}

/** Byte-exact serialization of every AppResult aggregate. */
std::string
fingerprint(const AppResult &r)
{
    std::ostringstream os;
    os << r.app << '|' << r.defaultMakespan << ','
       << r.optimizedMakespan << '|' << std::hexfloat
       << r.defaultEnergy << ',' << r.optimizedEnergy << '|';
    fingerprintAccumulator(os, "mov", r.movementReductionPct);
    fingerprintAccumulator(os, "dop", r.degreeOfParallelism);
    fingerprintAccumulator(os, "sync", r.syncsPerStatement);
    fingerprintAccumulator(os, "rawsync", r.rawSyncsPerStatement);
    os << std::hexfloat << r.defaultL1HitRate << ','
       << r.optimizedL1HitRate << ',' << r.defaultAvgNetLatency << ','
       << r.optimizedAvgNetLatency << ',' << r.defaultMaxNetLatency
       << ',' << r.optimizedMaxNetLatency << ','
       << r.analyzableFraction << ',' << r.predictorAccuracy << '|'
       << r.offloadedOps[0] << ',' << r.offloadedOps[1] << ','
       << r.offloadedOps[2] << '|' << r.nests.size();
    for (const NestResult &nr : r.nests) {
        os << '|' << nr.nest << ':'
           << nr.defaultRun.makespanCycles << ','
           << nr.optimizedRun.makespanCycles << ','
           << nr.defaultRun.dataMovementFlitHops << ','
           << nr.optimizedRun.dataMovementFlitHops << ','
           << nr.optimizedRun.syncCount << ','
           << nr.predictorPredictions << ',' << nr.predictorCorrect
           << ',' << nr.report.reuseMapHash << ','
           << nr.report.reuseCopiesPlanned;
    }
    return os.str();
}

std::vector<std::string>
sweepFingerprints(int threads)
{
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water"), factory.build("lu"),
        factory.build("fft")};

    ExperimentConfig base;
    ExperimentConfig oracle;
    oracle.partition.oracle = true;
    const std::vector<ExperimentConfig> configs = {base, oracle};

    SweepRunner runner(threads);
    const auto grid = runner.runGrid(apps, configs);

    std::vector<std::string> prints;
    for (const auto &row : grid)
        for (const SweepCell &cell : row)
            prints.push_back(fingerprint(cell.result));
    return prints;
}

TEST(SweepDeterminismTest, ByteIdenticalResultsAcross1_2_8Threads)
{
    const std::vector<std::string> t1 = sweepFingerprints(1);
    const std::vector<std::string> t2 = sweepFingerprints(2);
    const std::vector<std::string> t8 = sweepFingerprints(8);

    ASSERT_EQ(t1.size(), 6u); // 3 apps x 2 configs
    ASSERT_EQ(t2.size(), t1.size());
    ASSERT_EQ(t8.size(), t1.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i], t2[i]) << "cell " << i << " differs 1 vs 2";
        EXPECT_EQ(t1[i], t8[i]) << "cell " << i << " differs 1 vs 8";
    }
}

TEST(SweepDeterminismTest, GridMatchesSerialExperimentRunner)
{
    // The pool must be a pure scheduling change: cell [a][c] equals a
    // plain serial ExperimentRunner(configs[c]).runApp(apps[a]).
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water"), factory.build("radix")};
    ExperimentConfig base;
    ExperimentConfig ideal;
    ideal.optimizeComputation = false;
    ideal.idealNetwork = true;
    const std::vector<ExperimentConfig> configs = {base, ideal};

    SweepRunner runner(4);
    const auto grid = runner.runGrid(apps, configs);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            ExperimentRunner serial(configs[c]);
            EXPECT_EQ(fingerprint(grid[a][c].result),
                      fingerprint(serial.runApp(apps[a])))
                << apps[a].name << " config " << c;
        }
    }
}

/**
 * Fingerprints of one harness-shaped grid — the exact configs a bench
 * binary sweeps — for a subset of apps at the golden scale.
 */
std::vector<std::string>
harnessFingerprints(const std::vector<std::string> &app_names,
                    const std::vector<ExperimentConfig> &configs,
                    int threads)
{
    workloads::WorkloadFactory factory(256);
    std::vector<workloads::Workload> apps;
    for (const std::string &name : app_names)
        apps.push_back(factory.build(name));
    SweepRunner runner(threads);
    const auto grid = runner.runGrid(apps, configs);
    std::vector<std::string> prints;
    for (const auto &row : grid)
        for (const SweepCell &cell : row)
            prints.push_back(fingerprint(cell.result));
    return prints;
}

void
expectThreadCountInvariant(const std::vector<std::string> &app_names,
                           const std::vector<ExperimentConfig> &configs,
                           const char *family)
{
    const auto t1 = harnessFingerprints(app_names, configs, 1);
    const auto t2 = harnessFingerprints(app_names, configs, 2);
    const auto t8 = harnessFingerprints(app_names, configs, 8);
    ASSERT_EQ(t1.size(), app_names.size() * configs.size()) << family;
    ASSERT_EQ(t2.size(), t1.size()) << family;
    ASSERT_EQ(t8.size(), t1.size()) << family;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i], t2[i])
            << family << " cell " << i << " differs 1 vs 2 threads";
        EXPECT_EQ(t1[i], t8[i])
            << family << " cell " << i << " differs 1 vs 8 threads";
    }
}

// One converted harness per family — a figure, a table, an ablation —
// pinned at 1/2/8 threads with the configs the bench binary uses.

TEST(SweepDeterminismTest, Fig17HarnessGridIsThreadCountInvariant)
{
    ExperimentConfig ours;
    ExperimentConfig ideal_net;
    ideal_net.optimizeComputation = false;
    ideal_net.idealNetwork = true;
    ExperimentConfig oracle;
    oracle.partition.oracle = true;
    expectThreadCountInvariant({"water", "lu"},
                               {ours, ideal_net, oracle}, "fig17");
}

TEST(SweepDeterminismTest, Table2HarnessGridIsThreadCountInvariant)
{
    expectThreadCountInvariant({"water", "fft"}, {ExperimentConfig{}},
                               "table2");
}

TEST(SweepDeterminismTest, AblationHarnessGridIsThreadCountInvariant)
{
    ExperimentConfig full;
    ExperimentConfig no_reuse;
    no_reuse.partition.exploitReuse = false;
    ExperimentConfig window1;
    window1.partition.fixedWindowSize = 1;
    expectThreadCountInvariant({"water"}, {full, no_reuse, window1},
                               "ablation_design_choices");
}

TEST(SweepDeterminismTest, NestParallelMatchesSerialAppResult)
{
    // The within-app axis: an ExperimentRunner handed a pool fans the
    // app's loop nests out but must still merge byte-identical
    // AppResults (NestResults merge in nest order).
    workloads::WorkloadFactory factory(256);
    ExperimentConfig config;
    const ExperimentRunner serial(config);
    support::ThreadPool pool(4);
    const ExperimentRunner parallel(config, &pool);
    for (const std::string &name : {"water", "lu", "radix"}) {
        const workloads::Workload app = factory.build(name);
        ASSERT_GT(app.nests.size(), 1u)
            << name << " no longer exercises multi-nest fan-out";
        EXPECT_EQ(fingerprint(serial.runApp(app)),
                  fingerprint(parallel.runApp(app)))
            << name;
    }
}

TEST(SweepStatsTest, PrintSummaryReportsRunsThreadsAndSpeedup)
{
    SweepStats stats;
    stats.cells = 24;
    stats.threads = 8;
    stats.wallSeconds = 2.0;
    stats.cellSecondsSum = 12.0;
    std::ostringstream os;
    stats.printSummary(os);
    EXPECT_EQ(os.str(),
              "[sweep] 24 runs on 8 thread(s): 2s wall, 12s "
              "serial-equivalent (speedup x6; set NDP_BENCH_THREADS "
              "to change)\n");
}

TEST(SweepDeterminismTest, StatsCoverEveryCell)
{
    workloads::WorkloadFactory factory(256);
    const std::vector<workloads::Workload> apps = {
        factory.build("water")};
    const std::vector<ExperimentConfig> configs = {ExperimentConfig{},
                                                   ExperimentConfig{}};
    SweepRunner runner(2);
    (void)runner.runGrid(apps, configs);
    EXPECT_EQ(runner.stats().cells, 2u);
    EXPECT_EQ(runner.stats().threads, 2);
    EXPECT_GT(runner.stats().wallSeconds, 0.0);
    EXPECT_GE(runner.stats().cellSecondsSum, 0.0);
}

} // namespace
