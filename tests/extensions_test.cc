/**
 * @file
 * Tests for the extensions beyond the paper's core algorithm: loop
 * unrolling (used by Figure 12 to fill windows), the torus topology
 * option (the paper's "any topology" template claim), and execution
 * tracing / utilisation analysis.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "ir/transform.h"
#include "partition/inspector.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "support/error.h"

namespace {

using namespace ndp;

// --------------------------------------------------------------- unroll

class UnrollTest : public ::testing::Test
{
  protected:
    ir::ArrayTable arrays;
};

TEST_F(UnrollTest, DuplicatesBodyAndScalesStep)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[64]; array B[64];
        for i = 0..64 { S1: A[i] = B[i] + B[i+1]; })",
                                        "u", arrays);
    const ir::LoopNest unrolled = ir::unroll(nest, 4);
    EXPECT_EQ(unrolled.body().size(), 4u);
    EXPECT_EQ(unrolled.loops().back().step, 4);
    EXPECT_EQ(unrolled.iterationCount(), 16);
    EXPECT_EQ(unrolled.body()[0].label(), "S1.0");
    EXPECT_EQ(unrolled.body()[3].label(), "S1.3");
}

TEST_F(UnrollTest, ShiftedCopiesTouchTheRightElements)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[64]; array B[64];
        for i = 0..64 { A[i] = B[i+1]; })",
                                        "u", arrays);
    const ir::LoopNest unrolled = ir::unroll(nest, 2);
    // Copy 1 must read B[i+2] and write A[i+1].
    const ir::Statement &copy1 = unrolled.body()[1];
    EXPECT_EQ(copy1.lhs().subscripts[0].affine.constantPart(), 1);
    EXPECT_EQ(copy1.reads()[0]->subscripts[0].affine.constantPart(), 2);

    // Semantics preserved: the set of (write, read) element pairs over
    // the whole iteration space is unchanged.
    std::set<std::pair<mem::Addr, mem::Addr>> original, after;
    nest.forEachIteration([&](const ir::IterationVector &iv) {
        ir::StatementInstance inst;
        inst.stmt = &nest.body().front();
        inst.iter = iv;
        original.emplace(resolveWrite(inst, arrays).addr,
                         resolveReads(inst, arrays)[0].addr);
    });
    unrolled.forEachIteration([&](const ir::IterationVector &iv) {
        for (const ir::Statement &stmt : unrolled.body()) {
            ir::StatementInstance inst;
            inst.stmt = &stmt;
            inst.iter = iv;
            after.emplace(resolveWrite(inst, arrays).addr,
                          resolveReads(inst, arrays)[0].addr);
        }
    });
    EXPECT_EQ(original, after);
}

TEST_F(UnrollTest, InnermostOfTwoDeepNest)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[8][32]; array B[8][32];
        for i = 0..8 { for j = 0..32 { A[i][j] = B[i][j]; } })",
                                        "u2", arrays);
    const ir::LoopNest unrolled = ir::unroll(nest, 8);
    EXPECT_EQ(unrolled.loops()[0].step, 1);
    EXPECT_EQ(unrolled.loops()[1].step, 8);
    EXPECT_EQ(unrolled.iterationCount(), 8 * 4);
    EXPECT_EQ(unrolled.body().size(), 8u);
}

TEST_F(UnrollTest, GuardsAndIndirectionShiftToo)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array X[32]; array Y[32]; array Z[32]; array H[32];
        for i = 0..32 { if (H[i]) Z[i] = X[Y[i]]; })",
                                        "ug", arrays);
    const ir::LoopNest unrolled = ir::unroll(nest, 2);
    const ir::Statement &copy1 = unrolled.body()[1];
    ASSERT_TRUE(copy1.hasGuard());
    // Guard H[i+1]; indirect index position Y[i+1].
    EXPECT_EQ(copy1.reads().back()->subscripts[0].affine.constantPart(),
              1);
    EXPECT_EQ(copy1.reads()[0]->subscripts[0].affine.constantPart(), 1);
    EXPECT_TRUE(copy1.reads()[0]->subscripts[0].isIndirect());
}

TEST_F(UnrollTest, FactorOneIsIdentity)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[8]; array B[8];
        for i = 0..8 { A[i] = B[i]; })",
                                        "u1", arrays);
    const ir::LoopNest same = ir::unroll(nest, 1);
    EXPECT_EQ(same.body().size(), 1u);
    EXPECT_EQ(same.loops().back().step, 1);
}

TEST_F(UnrollTest, RejectsNonDividingFactor)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[10]; array B[10];
        for i = 0..10 { A[i] = B[i]; })",
                                        "ur", arrays);
    EXPECT_THROW(ir::unroll(nest, 3), FatalError);
    EXPECT_THROW(ir::unroll(nest, 0), FatalError);
}

TEST_F(UnrollTest, UnrolledNestStillPartitions)
{
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[128] bytes 64; array B[128] bytes 64;
        array C[128] bytes 64;
        for i = 0..128 { A[i] = B[i] + C[i]; })",
                                        "up", arrays);
    const ir::LoopNest unrolled = ir::unroll(nest, 2);
    sim::ManycoreSystem system({});
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(unrolled);
    sim::ExecutionEngine engine(system);
    (void)engine.run(placement.buildPlan(unrolled, nodes));
    partition::Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(unrolled, nodes);
    EXPECT_EQ(static_cast<std::int64_t>(plan.instances.size()),
              unrolled.iterationCount() * 2);
}

// ---------------------------------------------------------------- torus

TEST(TorusTest, WrapDistancesShorter)
{
    noc::MeshTopology mesh(6, 6, /*torus=*/false);
    noc::MeshTopology torus(6, 6, /*torus=*/true);
    const noc::NodeId a = mesh.nodeAt({0, 0});
    const noc::NodeId b = mesh.nodeAt({5, 5});
    EXPECT_EQ(mesh.distance(a, b), 10);
    EXPECT_EQ(torus.distance(a, b), 2); // one wrap hop per dimension
    EXPECT_TRUE(torus.isTorus());
}

TEST(TorusTest, RoutesMatchDistancesEverywhere)
{
    noc::MeshTopology torus(5, 4, /*torus=*/true);
    for (noc::NodeId a = 0; a < torus.nodeCount(); ++a) {
        for (noc::NodeId b = 0; b < torus.nodeCount(); ++b) {
            const auto nodes = torus.routeNodes(a, b);
            EXPECT_EQ(static_cast<std::int32_t>(nodes.size()) - 1,
                      torus.distance(a, b))
                << a << "->" << b;
            // Every step is a real (possibly wrapped) link.
            for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
                EXPECT_GE(torus.linkIndex(nodes[i], nodes[i + 1]), 0);
            }
        }
    }
}

TEST(TorusTest, FullPipelineRunsOnTorus)
{
    sim::ManycoreConfig config;
    config.torus = true;
    sim::ManycoreSystem system(config);
    EXPECT_TRUE(system.mesh().isTorus());

    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[128] bytes 64; array B[128] bytes 64;
        array C[128] bytes 64; array D[128] bytes 64;
        for i = 0..128 { A[i] = B[i] + C[i] + D[i]; })",
                                        "torus", arrays);
    baseline::DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    sim::ExecutionEngine engine(system);
    const auto def = engine.run(placement.buildPlan(nest, nodes));
    partition::Partitioner partitioner(system, arrays);
    const auto opt = engine.run(partitioner.plan(nest, nodes));
    EXPECT_GT(def.makespanCycles, 0);
    EXPECT_GT(opt.makespanCycles, 0);
    // Wrap links shorten average distances: total movement on the
    // torus must not exceed the plain-mesh default for the same plan
    // structure (sanity, not strict).
    EXPECT_LE(opt.dataMovementFlitHops, def.dataMovementFlitHops);
}

// ---------------------------------------------------------------- trace

TEST(TraceTest, RecordsEveryTask)
{
    sim::ManycoreConfig config;
    sim::ManycoreSystem system(config);
    sim::ExecutionEngine engine(system);
    sim::ExecutionPlan plan;
    for (sim::TaskId i = 0; i < 10; ++i) {
        sim::Task t;
        t.id = i;
        t.node = i % 4;
        t.computeCost = 2;
        if (i > 0)
            t.deps.push_back(i - 1);
        plan.tasks.push_back(t);
    }
    sim::ExecutionTrace trace;
    sim::EngineOptions opts;
    opts.trace = &trace;
    const auto result = engine.run(plan, opts);
    ASSERT_EQ(trace.size(), 10u);
    EXPECT_EQ(trace.makespan(), result.makespanCycles);
    for (const sim::TraceEvent &e : trace.events()) {
        EXPECT_LT(e.start, e.finish);
        EXPECT_GE(e.waited, 0);
    }
}

TEST(TraceTest, UtilizationAndImbalance)
{
    sim::ExecutionTrace trace;
    trace.record(0, 0, 0, 100, 0, false);
    trace.record(1, 1, 0, 50, 0, true);
    EXPECT_EQ(trace.makespan(), 100);
    const auto util = trace.nodeUtilization(4);
    EXPECT_DOUBLE_EQ(util[0], 1.0);
    EXPECT_DOUBLE_EQ(util[1], 0.5);
    EXPECT_DOUBLE_EQ(util[2], 0.0);
    // busy: 100 and 50 -> mean 75, max 100.
    EXPECT_NEAR(trace.imbalance(4), 100.0 / 75.0, 1e-9);
}

TEST(TraceTest, CsvExport)
{
    sim::ExecutionTrace trace;
    trace.record(3, 7, 10, 25, 5, true);
    std::ostringstream oss;
    trace.writeCsv(oss);
    EXPECT_NE(oss.str().find("task,node,start,finish,waited,offloaded"),
              std::string::npos);
    EXPECT_NE(oss.str().find("3,7,10,25,5,1"), std::string::npos);
}

TEST(TraceTest, ClearedBetweenRuns)
{
    sim::ManycoreConfig config;
    sim::ManycoreSystem system(config);
    sim::ExecutionEngine engine(system);
    sim::ExecutionPlan plan;
    sim::Task t;
    t.id = 0;
    t.node = 0;
    t.computeCost = 1;
    plan.tasks.push_back(t);
    sim::ExecutionTrace trace;
    sim::EngineOptions opts;
    opts.trace = &trace;
    (void)engine.run(plan, opts);
    (void)engine.run(plan, opts);
    EXPECT_EQ(trace.size(), 1u); // cleared at run start
}

// ------------------------------------------------------------ inspector

TEST(InspectorTest, ResolvesWhenDataAndTripsPresent)
{
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array X[64]; array Y[64]; array Z[64];
        for i = 0..64 { Z[i] = X[Y[i]] + Z[i]; })",
                                        "insp", arrays);
    std::vector<std::int64_t> idx(64);
    for (int i = 0; i < 64; ++i)
        idx[static_cast<std::size_t>(i)] = i % 8; // heavy fan-in
    arrays.setIndexData(arrays.find("Y"), idx);

    partition::Inspector inspector;
    // No timing loop: the inspector cannot run.
    nest.inspectorTrips = 0;
    EXPECT_FALSE(partition::Inspector::canResolve(nest, arrays));
    EXPECT_FALSE(inspector.inspect(nest, arrays).resolved);

    nest.timingTrips = 4;
    nest.inspectorTrips = 1;
    EXPECT_TRUE(partition::Inspector::canResolve(nest, arrays));
    const partition::InspectionResult result =
        inspector.inspect(nest, arrays);
    EXPECT_TRUE(result.resolved);
    EXPECT_EQ(result.indirectAccesses, 64);
    EXPECT_EQ(result.distinctTargets, 8);
    EXPECT_EQ(result.maxTargetFanIn, 8);
    EXPECT_NEAR(result.reuseFactor(), 8.0, 1e-9);
    EXPECT_FALSE(result.writeConflicts);
}

TEST(InspectorTest, DetectsWriteConflicts)
{
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array X[32]; array Y[32];
        for i = 0..32 { X[i] = X[Y[i]]; })",
                                        "conflict", arrays);
    std::vector<std::int64_t> idx(32);
    for (int i = 0; i < 32; ++i)
        idx[static_cast<std::size_t>(i)] = (i + 1) % 32;
    arrays.setIndexData(arrays.find("Y"), idx);
    nest.timingTrips = 2;
    nest.inspectorTrips = 1;
    const partition::InspectionResult result =
        partition::Inspector().inspect(nest, arrays);
    ASSERT_TRUE(result.resolved);
    EXPECT_TRUE(result.writeConflicts);
}

TEST(InspectorTest, MissingIndexDataBlocksResolution)
{
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array X[32]; array Y[32]; array Z[32];
        for i = 0..32 { Z[i] = X[Y[i]]; })",
                                        "nodata", arrays);
    nest.timingTrips = 2;
    nest.inspectorTrips = 1;
    // Y has no runtime data: the inspector cannot run.
    EXPECT_FALSE(partition::Inspector::canResolve(nest, arrays));
}

} // namespace
