/**
 * @file
 * Randomized fault invariants. Over many injected fault sets:
 *
 *  - fault-aware distances never beat the healthy Manhattan distance,
 *    and every route is a valid surviving path: consecutive hops are
 *    mesh-adjacent, no intermediate node is dead, no traversed link
 *    is failed, and the hop count equals distance();
 *  - every re-homed bank lands on a live node, and on *the* nearest
 *    live node by healthy Manhattan distance with the lowest-id
 *    tiebreak (cross-checked by brute force);
 *  - no compiled plan — default placement or partitioned — ever
 *    schedules a task on a dead node, and the full pipeline runs to
 *    completion on the faulted machine (the engine's own liveness
 *    checks would panic otherwise).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/default_placement.h"
#include "fault/fault_model.h"
#include "ir/parser.h"
#include "noc/mesh_topology.h"
#include "partition/partitioner.h"
#include "sim/manycore.h"
#include "support/rng.h"

namespace {

using namespace ndp;
using fault::FaultModel;
using fault::FaultSpec;
using noc::MeshTopology;
using noc::NodeId;

/** Draw until the injected set keeps the mesh connected. */
FaultModel
connectedFaults(std::int32_t cols, std::int32_t rows, double node_rate,
                double link_rate, Rng &rng)
{
    FaultSpec spec;
    spec.nodeFaultRate = node_rate;
    spec.linkFaultRate = link_rate;
    spec.degradedFraction = 0.25;
    for (;;) {
        spec.seed = rng.next();
        FaultModel model =
            FaultModel::inject(cols, rows, false, spec);
        if (MeshTopology::faultsLeaveMeshConnected(cols, rows, false,
                                                   model)) {
            return model;
        }
    }
}

TEST(FaultPropertyTest, RoutesAreValidSurvivingShortestPaths)
{
    Rng rng(0x70f1'70f1ull);
    for (int trial = 0; trial < 12; ++trial) {
        const FaultModel model =
            connectedFaults(8, 8, 0.10, 0.05, rng);
        const MeshTopology mesh(8, 8, false, model);
        const std::vector<NodeId> &live = mesh.liveNodes();

        for (NodeId a : live) {
            for (NodeId b : live) {
                const std::int32_t d = mesh.distance(a, b);
                // Detours only ever lengthen a path.
                EXPECT_GE(d, mesh.distanceUncached(a, b))
                    << "trial " << trial << " " << a << "->" << b;

                const std::vector<NodeId> path = mesh.routeNodes(a, b);
                ASSERT_GE(path.size(), 1u);
                EXPECT_EQ(path.front(), a);
                EXPECT_EQ(path.back(), b);
                EXPECT_EQ(static_cast<std::int32_t>(path.size()) - 1,
                          d)
                    << "trial " << trial << " " << a << "->" << b;
                for (std::size_t i = 0; i + 1 < path.size(); ++i) {
                    // Hops are mesh-adjacent...
                    EXPECT_EQ(mesh.distanceUncached(path[i],
                                                    path[i + 1]),
                              1);
                    // ...never through a dead router...
                    EXPECT_TRUE(mesh.isLive(path[i]));
                    EXPECT_TRUE(mesh.isLive(path[i + 1]));
                    // ...and never over a failed link.
                    EXPECT_FALSE(
                        model.isLinkFailed(path[i], path[i + 1]))
                        << "trial " << trial << " " << a << "->" << b
                        << " hop " << path[i] << "->" << path[i + 1];
                }
            }
        }
    }
}

TEST(FaultPropertyTest, RehomedBanksAreNearestLiveNodes)
{
    Rng rng(0x5eed'0002ull);
    for (int trial = 0; trial < 16; ++trial) {
        const FaultModel model =
            connectedFaults(8, 8, 0.15, 0.0, rng);
        const MeshTopology mesh(8, 8, false, model);

        for (NodeId n = 0; n < mesh.nodeCount(); ++n) {
            const NodeId home = mesh.rehomeOf(n);
            EXPECT_TRUE(mesh.isLive(home))
                << "trial " << trial << " node " << n;
            if (mesh.isLive(n)) {
                EXPECT_EQ(home, n);
                continue;
            }
            // Brute-force the nearest live node, lowest id first, and
            // demand exactly that one.
            NodeId best = noc::kInvalidNode;
            std::int32_t best_d = 0;
            for (NodeId cand : mesh.liveNodes()) {
                const std::int32_t d = mesh.distanceUncached(n, cand);
                if (best == noc::kInvalidNode || d < best_d) {
                    best = cand;
                    best_d = d;
                }
            }
            EXPECT_EQ(home, best)
                << "trial " << trial << " dead node " << n;
        }
    }
}

TEST(FaultPropertyTest, NoPlanSchedulesWorkOnDeadNodes)
{
    const std::string src = "array A[96]; array B[96]; array C[96];\n"
                            "array D[96]; array E[96];\n"
                            "for i = 0..64 {\n"
                            "  S1: A[i] = B[i] + C[i] + D[i];\n"
                            "  S2: E[i] = A[i] * C[i] + B[i];\n"
                            "}";

    Rng rng(0xdead'c0deull);
    for (int trial = 0; trial < 6; ++trial) {
        sim::ManycoreConfig config; // 6x6 default
        config.faults = connectedFaults(
            config.meshCols, config.meshRows, 0.12, 0.04, rng);
        sim::ManycoreSystem system(config);
        ir::ArrayTable arrays;
        const ir::LoopNest nest =
            ir::parseKernel(src, "faultprop", arrays);

        baseline::DefaultPlacement placement(system, arrays);
        const std::vector<NodeId> defaults =
            placement.assignIterations(nest);
        for (NodeId n : defaults)
            EXPECT_TRUE(system.mesh().isLive(n)) << "trial " << trial;

        const sim::ExecutionPlan default_plan =
            placement.buildPlan(nest, defaults);
        partition::Partitioner partitioner(system, arrays);
        const sim::ExecutionPlan optimized =
            partitioner.plan(nest, defaults);
        for (const sim::ExecutionPlan *plan :
             {&default_plan, &optimized}) {
            for (const sim::Task &task : plan->tasks) {
                EXPECT_TRUE(system.mesh().isLive(task.node))
                    << "trial " << trial << " task " << task.id
                    << " on dead node " << task.node;
            }
        }

        // The full simulation accepts both plans (its own liveness
        // NDP_CHECKs would throw PanicError on a violation).
        sim::ExecutionEngine engine(system);
        const sim::SimResult def = engine.run(default_plan);
        const sim::SimResult opt = engine.run(optimized);
        EXPECT_GT(def.makespanCycles, 0) << "trial " << trial;
        EXPECT_GT(opt.makespanCycles, 0) << "trial " << trial;
    }
}

} // namespace
