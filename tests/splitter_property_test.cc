/**
 * @file
 * Randomized property tests for the statement splitter (Section 4.2,
 * Algorithm 1). Deterministically seeded, so failures reproduce:
 *
 *  - the Kruskal MST of a flat statement spans exactly
 *    (distinct nodes - 1) edges, where the distinct nodes are the leaf
 *    locations plus the store node;
 *  - total scheduled movement never exceeds the naive all-to-store
 *    cost of Equation 1 (every operand fetched straight to the store
 *    node): the MST is no heavier than the star tree rooted at the
 *    store, and forwarding a partial result (1 flit) is never dearer
 *    than fetching a line (8 flits);
 *  - nested-set levels never mix components: every leaf operand
 *    belongs to exactly one set level and to exactly one
 *    subcomputation, and children always precede their parents.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "noc/mesh_topology.h"
#include "partition/splitter.h"
#include "support/rng.h"

namespace {

using namespace ndp;

constexpr std::int64_t kFetchWeight = 8;
constexpr std::int64_t kResultWeight = 1;

/** Parse a one-statement kernel whose RHS is @p rhs over V0..Vn-1. */
ir::LoopNest
kernelFor(const std::string &rhs, int leaves, ir::ArrayTable &arrays)
{
    std::string src = "array OUT[64];\n";
    for (int i = 0; i < leaves; ++i)
        src += "array V" + std::to_string(i) + "[64];\n";
    src += "for i = 0..64 { OUT[i] = " + rhs + "; }";
    return ir::parseKernel(src, "prop", arrays);
}

/** Random flat sum/product: V0 op V1 op ... (one set level). */
std::string
flatRhs(int leaves, Rng &rng)
{
    const char *op = rng.nextBool(0.5) ? " + " : " * ";
    std::string rhs = "V0[i]";
    for (int i = 1; i < leaves; ++i)
        rhs += op + ("V" + std::to_string(i) + "[i]");
    return rhs;
}

/** Random parenthesized expression tree over exactly @p leaves refs. */
std::string
nestedRhs(int lo, int hi, Rng &rng)
{
    if (hi - lo == 1)
        return "V" + std::to_string(lo) + "[i]";
    const int mid =
        lo + 1 +
        static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(hi - lo - 1)));
    const std::string op = rng.nextBool(0.5) ? " + " : " * ";
    return "(" + nestedRhs(lo, mid, rng) + op +
           nestedRhs(mid, hi, rng) + ")";
}

std::vector<partition::Location>
randomLocations(std::size_t count, std::int32_t nodes, Rng &rng)
{
    std::vector<partition::Location> locations(count);
    for (partition::Location &loc : locations) {
        loc.node = static_cast<noc::NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(nodes)));
        loc.source = partition::LocationSource::L2Home;
    }
    return locations;
}

/** Collect every leaf index of @p set, recursively. */
void
collectLeaves(const ir::VarSet &set, std::vector<int> &leaves)
{
    for (const ir::VarSet::Elem &elem : set.elems) {
        if (elem.isLeaf())
            leaves.push_back(elem.leaf);
        else if (elem.sub)
            collectLeaves(*elem.sub, leaves);
    }
}

/** Structural invariants every SplitResult must satisfy. */
void
checkSplitInvariants(const partition::SplitResult &result,
                     std::size_t leaf_count, noc::NodeId store_node)
{
    ASSERT_GE(result.root, 0);
    const auto &root =
        result.subs[static_cast<std::size_t>(result.root)];
    EXPECT_TRUE(root.isRoot);
    EXPECT_EQ(root.node, store_node)
        << "the final store must execute at the store node";

    // Children precede parents (emission is post-order) and each
    // subcomputation feeds exactly one parent.
    std::vector<int> child_uses(result.subs.size(), 0);
    for (std::size_t s = 0; s < result.subs.size(); ++s) {
        for (int child : result.subs[s].children) {
            ASSERT_GE(child, 0);
            ASSERT_LT(static_cast<std::size_t>(child), s)
                << "child emitted after its parent";
            ++child_uses[static_cast<std::size_t>(child)];
        }
    }
    for (std::size_t s = 0; s < result.subs.size(); ++s) {
        const int expected = static_cast<int>(s) == result.root ? 0 : 1;
        EXPECT_EQ(child_uses[s], expected)
            << "subcomputation " << s
            << " must feed exactly one merge (components never mix)";
    }

    // Leaf partition: every operand consumed exactly once, somewhere.
    std::vector<int> seen;
    for (const partition::Subcomputation &sub : result.subs)
        seen.insert(seen.end(), sub.leaves.begin(), sub.leaves.end());
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), leaf_count);
    for (std::size_t i = 0; i < leaf_count; ++i)
        EXPECT_EQ(seen[i], static_cast<int>(i));

    EXPECT_GE(result.degreeOfParallelism, 1);
    EXPECT_GE(result.plannedMovement, 0);
}

TEST(SplitterPropertyTest, FlatMstSpansDistinctNodesMinusOne)
{
    Rng rng(0xf1a7);
    noc::MeshTopology mesh(6, 6);
    partition::StatementSplitter splitter(mesh, kFetchWeight,
                                          kResultWeight);
    for (int trial = 0; trial < 200; ++trial) {
        const int leaves =
            2 + static_cast<int>(rng.nextBelow(11)); // 2..12
        ir::ArrayTable arrays;
        ir::LoopNest nest =
            kernelFor(flatRhs(leaves, rng), leaves, arrays);
        const ir::VarSet sets = ir::buildVarSets(nest.body().front());
        ASSERT_EQ(sets.depth(), 1u) << "flat rhs must stay one level";

        const auto locations = randomLocations(
            static_cast<std::size_t>(leaves), mesh.nodeCount(), rng);
        const auto store = static_cast<noc::NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(mesh.nodeCount())));

        const partition::SplitResult result =
            splitter.split(sets, locations, store);

        std::set<noc::NodeId> distinct;
        for (const partition::Location &loc : locations)
            distinct.insert(loc.node);
        distinct.insert(store);
        EXPECT_EQ(result.edges.size(), distinct.size() - 1)
            << "trial " << trial << ": Kruskal must pick exactly "
            << "|V|-1 edges";
        checkSplitInvariants(result,
                             static_cast<std::size_t>(leaves), store);
    }
}

TEST(SplitterPropertyTest, MovementNeverExceedsNaiveAllToStore)
{
    Rng rng(0xcafe);
    noc::MeshTopology mesh(8, 8);
    partition::StatementSplitter splitter(mesh, kFetchWeight,
                                          kResultWeight);
    for (int trial = 0; trial < 200; ++trial) {
        const int leaves = 2 + static_cast<int>(rng.nextBelow(11));
        const bool flat = rng.nextBool(0.5);
        ir::ArrayTable arrays;
        ir::LoopNest nest = kernelFor(
            flat ? flatRhs(leaves, rng) : nestedRhs(0, leaves, rng),
            leaves, arrays);
        const ir::VarSet sets = ir::buildVarSets(nest.body().front());

        const auto locations = randomLocations(
            static_cast<std::size_t>(leaves), mesh.nodeCount(), rng);
        const auto store = static_cast<noc::NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(mesh.nodeCount())));

        const partition::SplitResult result =
            splitter.split(sets, locations, store);

        // Equation 1's naive cost: every operand line fetched
        // straight to the store node.
        std::int64_t naive = 0;
        for (const partition::Location &loc : locations)
            naive += kFetchWeight * mesh.distance(loc.node, store);
        EXPECT_LE(result.plannedMovement, naive)
            << "trial " << trial << " (flat=" << flat
            << "): scheduled movement beat by the naive schedule";
        checkSplitInvariants(result,
                             static_cast<std::size_t>(leaves), store);
    }
}

TEST(SplitterPropertyTest, NestedSetLevelsNeverMixLeaves)
{
    Rng rng(0xbeef);
    for (int trial = 0; trial < 200; ++trial) {
        const int leaves = 2 + static_cast<int>(rng.nextBelow(11));
        ir::ArrayTable arrays;
        ir::LoopNest nest =
            kernelFor(nestedRhs(0, leaves, rng), leaves, arrays);
        const ir::VarSet sets = ir::buildVarSets(nest.body().front());

        // Every leaf operand appears at exactly one level of the
        // nested-set hierarchy — sets partition the operands.
        std::vector<int> all;
        collectLeaves(sets, all);
        std::sort(all.begin(), all.end());
        ASSERT_EQ(all.size(), static_cast<std::size_t>(leaves))
            << "trial " << trial;
        for (int i = 0; i < leaves; ++i)
            EXPECT_EQ(all[static_cast<std::size_t>(i)], i)
                << "trial " << trial
                << ": leaf missing or duplicated across levels";
        EXPECT_EQ(sets.leafCount(),
                  static_cast<std::size_t>(leaves));
        EXPECT_GE(sets.depth(), 1u);
    }
}

} // namespace
