/**
 * @file
 * Tests for the memory layer: address bit manipulation, the SNUCA /
 * cluster-mode address map (Figure 2), the set-associative cache
 * model, the memory controller, and the L2 miss predictor.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/address.h"
#include "mem/address_mapping.h"
#include "mem/cache.h"
#include "mem/memory_controller.h"
#include "mem/miss_predictor.h"
#include "noc/mesh_topology.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ndp;
using namespace ndp::mem;

// -------------------------------------------------------------- address

TEST(AddressTest, AlignmentHelpers)
{
    EXPECT_EQ(lineAlign(0x1234567), 0x1234567ull & ~63ull);
    EXPECT_EQ(pageAlign(0x12345), 0x12000ull);
    EXPECT_EQ(lineNumber(128), 2ull);
    EXPECT_EQ(pageNumber(2 * kPageSize + 17), 2ull);
}

TEST(AddressTest, BitExtraction)
{
    // Figure 2b: channel = bits 12..13, rank = 14..15, bank = 16..18.
    const Addr a = (0b101ull << 16) | (0b10ull << 14) | (0b01ull << 12);
    EXPECT_EQ(bits(a, 12, 2), 0b01ull);
    EXPECT_EQ(bits(a, 14, 2), 0b10ull);
    EXPECT_EQ(bits(a, 16, 3), 0b101ull);
}

// ----------------------------------------------------------- AddressMap

class AddressMapTest : public ::testing::Test
{
  protected:
    noc::MeshTopology mesh{6, 6};
};

TEST_F(AddressMapTest, HomeBanksSpanTheMesh)
{
    AddressMap amap(mesh, ClusterMode::Quadrant);
    std::set<noc::NodeId> seen;
    for (Addr line = 0; line < 4096; ++line)
        seen.insert(amap.homeBankNode(line * kLineSize));
    // The hash should use every bank of a 36-node mesh.
    EXPECT_EQ(seen.size(), 36u);
}

TEST_F(AddressMapTest, HomeBankStablePerLine)
{
    AddressMap amap(mesh, ClusterMode::Quadrant);
    const Addr base = 0x40000;
    for (Addr off = 0; off < kLineSize; ++off)
        EXPECT_EQ(amap.homeBankNode(base + off), amap.homeBankNode(base));
}

TEST_F(AddressMapTest, Snc4ConfinesBankToPageQuadrant)
{
    AddressMap amap(mesh, ClusterMode::SNC4);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.next() % (1ull << 30);
        const noc::QuadrantId q = amap.pageQuadrant(a);
        EXPECT_EQ(mesh.quadrantOf(amap.homeBankNode(a)), q);
        EXPECT_EQ(amap.memoryControllerNode(a),
                  mesh.memoryControllerOfQuadrant(q));
    }
}

TEST_F(AddressMapTest, QuadrantModeMcMatchesHomeBankQuadrant)
{
    AddressMap amap(mesh, ClusterMode::Quadrant);
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.next() % (1ull << 30);
        EXPECT_EQ(amap.memoryControllerNode(a),
                  mesh.memoryControllerOfQuadrant(
                      mesh.quadrantOf(amap.homeBankNode(a))));
    }
}

TEST_F(AddressMapTest, AllToAllUsesChannelBits)
{
    AddressMap amap(mesh, ClusterMode::AllToAll);
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.next() % (1ull << 30);
        const std::uint32_t channel = amap.dramCoord(a).channel;
        EXPECT_EQ(amap.memoryControllerNode(a),
                  mesh.memoryControllerNodes()[channel]);
    }
}

TEST_F(AddressMapTest, DramCoordMatchesFigure2b)
{
    AddressMap amap(mesh, ClusterMode::AllToAll);
    const Addr a =
        (0b110ull << 16) | (0b01ull << 14) | (0b10ull << 12) | 0x7ff;
    const DramCoord coord = amap.dramCoord(a);
    EXPECT_EQ(coord.channel, 0b10u);
    EXPECT_EQ(coord.rank, 0b01u);
    EXPECT_EQ(coord.bank, 0b110u);
}

TEST_F(AddressMapTest, PageMcOverrideRedirectsOnlyMappedPages)
{
    AddressMap amap(mesh, ClusterMode::Quadrant);
    const Addr a = 5 * kPageSize + 100;
    const Addr b = 9 * kPageSize + 100;
    const noc::NodeId before_b = amap.memoryControllerNode(b);

    amap.setPageMcOverride({{pageNumber(a), 3u}});
    EXPECT_TRUE(amap.hasPageMcOverride());
    EXPECT_EQ(amap.memoryControllerNode(a),
              mesh.memoryControllerNodes()[3]);
    EXPECT_EQ(amap.memoryControllerNode(b), before_b);

    amap.setPageMcOverride({});
    EXPECT_FALSE(amap.hasPageMcOverride());
}

// -------------------------------------------------------- SetAssocCache

TEST(CacheTest, HitAfterAccess)
{
    SetAssocCache cache(1024, 2);
    EXPECT_FALSE(cache.access(0x100)); // cold miss, allocates
    EXPECT_TRUE(cache.access(0x100));
    EXPECT_TRUE(cache.access(0x13f)); // same line
    EXPECT_EQ(cache.stats().hits, 2);
    EXPECT_EQ(cache.stats().misses, 1);
}

TEST(CacheTest, ContainsIsNonAllocating)
{
    SetAssocCache cache(1024, 2);
    EXPECT_FALSE(cache.contains(0x100));
    EXPECT_FALSE(cache.contains(0x100)); // still not allocated
    cache.access(0x100);
    EXPECT_TRUE(cache.contains(0x100));
    EXPECT_EQ(cache.stats().accesses(), 1); // contains doesn't count
}

TEST(CacheTest, LruEvictionOrder)
{
    // Direct construction: 2 ways, 1 set => capacity 2 lines.
    SetAssocCache cache(2 * kLineSize, 2);
    ASSERT_EQ(cache.setCount(), 1u);
    cache.access(0 * kLineSize);
    cache.access(1 * kLineSize);
    cache.access(0 * kLineSize); // refresh line 0
    cache.access(2 * kLineSize); // evicts line 1 (LRU)
    EXPECT_TRUE(cache.contains(0 * kLineSize));
    EXPECT_FALSE(cache.contains(1 * kLineSize));
    EXPECT_TRUE(cache.contains(2 * kLineSize));
}

TEST(CacheTest, DirectMappedConflicts)
{
    SetAssocCache cache(4 * kLineSize, 1); // 4 sets, 1 way
    const Addr a = 0;
    const Addr b = 4 * kLineSize; // same set as a
    cache.access(a);
    cache.access(b);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
}

TEST(CacheTest, InvalidateAndFlush)
{
    SetAssocCache cache(1024, 2);
    cache.access(0x100);
    cache.invalidate(0x100);
    EXPECT_FALSE(cache.contains(0x100));
    cache.access(0x100);
    cache.access(0x200);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x100));
    EXPECT_FALSE(cache.contains(0x200));
    // Stats survive a flush; resetStats clears them.
    EXPECT_GT(cache.stats().accesses(), 0);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses(), 0);
}

TEST(CacheTest, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache(0, 1), FatalError);
    EXPECT_THROW(SetAssocCache(100, 1), FatalError); // not line multiple
    EXPECT_THROW(SetAssocCache(1024, 0), FatalError);
}

/** Property: hit rate never decreases when capacity grows. */
class CacheCapacityTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheCapacityTest, BiggerCacheNeverHurtsOnLruFriendlyStreams)
{
    const std::uint32_t ways = GetParam();
    SetAssocCache small(4 * 1024, ways);
    SetAssocCache big(16 * 1024, ways);
    Rng rng(31);
    // Looping reference stream with locality.
    for (int round = 0; round < 4; ++round) {
        for (Addr line = 0; line < 128; ++line) {
            const Addr a = line * kLineSize;
            small.access(a);
            big.access(a);
        }
    }
    EXPECT_GE(big.stats().hitRate(), small.stats().hitRate());
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheCapacityTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(CacheStatsTest, HitRate)
{
    CacheStats stats;
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.75);
    stats.reset();
    EXPECT_EQ(stats.accesses(), 0);
}

// ----------------------------------------------------- MemoryController

TEST(MemoryControllerTest, FlatModeLatencies)
{
    MemoryControllerParams params;
    MemoryController mc(0, MemoryMode::Flat, params);
    DramCoord coord{0, 0, 0};
    const std::int64_t mcdram =
        mc.serviceLatency(0x1000, MemoryKind::Mcdram, coord);
    // Different bank to avoid the conflict penalty polluting the check.
    DramCoord coord2{0, 0, 1};
    const std::int64_t ddr =
        mc.serviceLatency(0x2000, MemoryKind::Ddr, coord2);
    EXPECT_LT(mcdram, ddr);
    EXPECT_EQ(mc.servicedCount(), 2);
}

TEST(MemoryControllerTest, BankConflictPenalty)
{
    MemoryControllerParams params;
    MemoryController mc(0, MemoryMode::Flat, params);
    DramCoord coord{0, 1, 3};
    const std::int64_t first =
        mc.serviceLatency(0x1000, MemoryKind::Ddr, coord);
    const std::int64_t second =
        mc.serviceLatency(0x2000, MemoryKind::Ddr, coord);
    EXPECT_EQ(second, first + params.bankConflictPenalty);
}

TEST(MemoryControllerTest, QueuePressureRaisesLatency)
{
    MemoryControllerParams params;
    MemoryController quiet(0, MemoryMode::Flat, params);
    MemoryController busy(0, MemoryMode::Flat, params);
    for (int i = 0; i < 4096; ++i)
        busy.recordAccess();
    DramCoord coord{0, 0, 0};
    EXPECT_GT(busy.serviceLatency(0x1000, MemoryKind::Ddr, coord),
              quiet.serviceLatency(0x1000, MemoryKind::Ddr, coord));
}

TEST(MemoryControllerTest, CacheModeSideCacheHits)
{
    MemoryControllerParams params;
    MemoryController mc(0, MemoryMode::Cache, params);
    ASSERT_NE(mc.sideCacheStats(), nullptr);
    DramCoord coord{0, 0, 0};
    const std::int64_t miss =
        mc.serviceLatency(0x5000, MemoryKind::Ddr, coord);
    const std::int64_t hit =
        mc.serviceLatency(0x5000, MemoryKind::Ddr, coord);
    EXPECT_LT(hit, miss); // second access hits MCDRAM-side cache
    EXPECT_EQ(mc.sideCacheStats()->hits, 1);
}

TEST(MemoryControllerTest, FlatModeHasNoSideCache)
{
    MemoryController mc(0, MemoryMode::Flat, {});
    EXPECT_EQ(mc.sideCacheStats(), nullptr);
}

TEST(MemoryControllerTest, HybridBypassesForMcdramData)
{
    MemoryControllerParams params;
    MemoryController mc(0, MemoryMode::Hybrid, params);
    DramCoord coord{0, 0, 0};
    // MCDRAM-flat data bypasses the side cache in hybrid mode.
    mc.serviceLatency(0x9000, MemoryKind::Mcdram, coord);
    EXPECT_EQ(mc.sideCacheStats()->accesses(), 0);
    mc.serviceLatency(0xa000, MemoryKind::Ddr, coord);
    EXPECT_EQ(mc.sideCacheStats()->accesses(), 1);
}

TEST(MemoryControllerTest, ResetClearsState)
{
    MemoryController mc(0, MemoryMode::Cache, {});
    mc.recordAccess();
    DramCoord coord{0, 0, 0};
    mc.serviceLatency(0x1000, MemoryKind::Ddr, coord);
    mc.reset();
    EXPECT_EQ(mc.recordedLoad(), 0);
    EXPECT_EQ(mc.servicedCount(), 0);
    EXPECT_EQ(mc.sideCacheStats()->accesses(), 0);
}

// -------------------------------------------------------- MissPredictor

TEST(MissPredictorTest, LearnsStableBehaviour)
{
    MissPredictor predictor(256);
    const Addr hot = 0x1000;
    for (int i = 0; i < 16; ++i)
        predictor.update(hot, true);
    EXPECT_TRUE(predictor.predictHit(hot));
    for (int i = 0; i < 16; ++i)
        predictor.update(hot, false);
    EXPECT_FALSE(predictor.predictHit(hot));
}

TEST(MissPredictorTest, AccuracyOnPerfectlyStableStream)
{
    MissPredictor predictor(256);
    for (int i = 0; i < 1000; ++i)
        predictor.update(0x40 * (i % 8), true);
    // After the first few training updates everything predicts hit.
    EXPECT_GT(predictor.accuracy(), 0.95);
    EXPECT_EQ(predictor.predictions(), 1000);
}

TEST(MissPredictorTest, AccuracyDegradesOnAlternation)
{
    MissPredictor predictor(64);
    bool flip = false;
    for (int i = 0; i < 1000; ++i) {
        predictor.update(0x2000, flip);
        flip = !flip;
    }
    EXPECT_LT(predictor.accuracy(), 0.75);
}

TEST(MissPredictorTest, ResetClears)
{
    MissPredictor predictor(64);
    predictor.update(0x100, false);
    predictor.reset();
    EXPECT_EQ(predictor.predictions(), 0);
    // Back to the weak-miss initial state (first touches usually miss).
    EXPECT_FALSE(predictor.predictHit(0x100));
}

TEST(MissPredictorTest, RequiresPowerOfTwoTable)
{
    EXPECT_THROW(MissPredictor(100), FatalError);
    EXPECT_NO_THROW(MissPredictor(128));
}

TEST(ModeNamesTest, ToStringCoverage)
{
    EXPECT_STREQ(toString(ClusterMode::AllToAll), "all-to-all");
    EXPECT_STREQ(toString(ClusterMode::Quadrant), "quadrant");
    EXPECT_STREQ(toString(ClusterMode::SNC4), "snc-4");
    EXPECT_STREQ(toString(MemoryMode::Flat), "flat");
    EXPECT_STREQ(toString(MemoryMode::Cache), "cache");
    EXPECT_STREQ(toString(MemoryMode::Hybrid), "hybrid");
}

} // namespace
