/**
 * @file
 * Mutation tests for verify::PlanVerifier: plan each corruption as a
 * healthy baseline, apply exactly one targeted mutation to the plan
 * or its provenance, and assert the verifier reports the intended
 * rule. Together with verify_property_test (healthy plans verify
 * clean), this pins both directions: no false negatives on the
 * corruptions below, no false positives on real planner output.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "verify/plan_verifier.h"

namespace {

using namespace ndp;
using namespace ndp::partition;

/** A plan plus a mutable copy of everything the verifier consumes. */
struct BuiltPlan
{
    sim::ExecutionPlan plan;
    verify::PlanProvenance prov;
};

bool
hasRule(const verify::Report &report, const std::string &rule)
{
    for (const verify::Diagnostic &d : report.diagnostics()) {
        if (d.rule == rule)
            return true;
    }
    return false;
}

bool
hasRulePrefix(const verify::Report &report, const std::string &prefix)
{
    for (const verify::Diagnostic &d : report.diagnostics()) {
        if (d.rule.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

std::string
rulesOf(const verify::Report &report)
{
    std::string all;
    for (const verify::Diagnostic &d : report.diagnostics())
        all += d.rule + " ";
    return all;
}

class PlanMutationTest : public ::testing::Test
{
  protected:
    PlanMutationTest()
        : system(config)
    {
    }

    /** The workhorse nest: 4-operand splits plus an S1 -> S2 flow
     *  dependence, enough to exercise every rule family. */
    ir::LoopNest
    parseDefault()
    {
        return ir::parseKernel(R"(
            array A[256] bytes 64; array B[256] bytes 64;
            array C[256] bytes 64; array D[256] bytes 64;
            array E[256] bytes 64;
            for i = 0..256 {
              S1: D[i] = B[i] + C[i] + E[i] + A[i];
              S2: A[i] = D[i] * E[i] + B[i];
            })",
                               "mutation", arrays);
    }

    BuiltPlan
    build(const ir::LoopNest &nest, PartitionOptions opts)
    {
        opts.verifyLevel = verify::VerifyLevel::Full;
        baseline::DefaultPlacement placement(system, arrays);
        Partitioner partitioner(system, arrays, opts);
        BuiltPlan built;
        built.plan =
            partitioner.plan(nest, placement.assignIterations(nest));
        const auto &prov = partitioner.report().provenance;
        EXPECT_NE(prov, nullptr);
        built.prov = *prov;
        return built;
    }

    verify::Report
    verify(const ir::LoopNest &nest, const BuiltPlan &built)
    {
        const verify::PlanVerifier verifier(system, arrays);
        return verifier.verify(nest, built.plan, built.prov);
    }

    /** Index of the first record matching @p pred; -1 when none. */
    template <typename Pred>
    std::ptrdiff_t
    findRecord(const BuiltPlan &built, Pred pred)
    {
        for (std::size_t i = 0; i < built.prov.instances.size(); ++i) {
            if (pred(built.prov.instances[i]))
                return static_cast<std::ptrdiff_t>(i);
        }
        return -1;
    }

    std::ptrdiff_t
    findSplit(const BuiltPlan &built)
    {
        return findRecord(built, [](const verify::SplitRecord &r) {
            return r.wasSplit && !r.split.edges.empty();
        });
    }

    sim::ManycoreConfig config;
    sim::ManycoreSystem system;
    ir::ArrayTable arrays;
};

TEST_F(PlanMutationTest, HealthyBaselineVerifiesClean)
{
    const ir::LoopNest nest = parseDefault();
    const BuiltPlan built = build(nest, {});
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(report.clean()) << report.renderTable();
    EXPECT_GT(report.counts().plansVerified, 0);
}

// ---------------------------------------------------------------- R1

TEST_F(PlanMutationTest, DroppedMstEdgeIsNotSpanning)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at = findSplit(built);
    ASSERT_GE(at, 0) << "nest produced no split instance";
    built.prov.instances[static_cast<std::size_t>(at)]
        .split.edges.pop_back();
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R1.not-spanning")) << rulesOf(report);
}

TEST_F(PlanMutationTest, CorruptedEdgeWeightIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at = findSplit(built);
    ASSERT_GE(at, 0);
    built.prov.instances[static_cast<std::size_t>(at)]
        .split.edges.front()
        .weight += 1;
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R1.edge-weight")) << rulesOf(report);
}

// ---------------------------------------------------------------- R2

TEST_F(PlanMutationTest, InflatedClaimedMovementIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at = findSplit(built);
    ASSERT_GE(at, 0);
    built.prov.instances[static_cast<std::size_t>(at)]
        .claimedMovement += 5;
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R2.cost-mismatch")) << rulesOf(report);
}

TEST_F(PlanMutationTest, StructuralDivergenceFromReferenceIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at = findSplit(built);
    ASSERT_GE(at, 0);
    built.prov.instances[static_cast<std::size_t>(at)]
        .split.subs.front()
        .opCost += 3;
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R2.split-mismatch")) << rulesOf(report);
}

TEST_F(PlanMutationTest, UnprofitableKeptSplitIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at = findSplit(built);
    ASSERT_GE(at, 0);
    verify::SplitRecord &rec =
        built.prov.instances[static_cast<std::size_t>(at)];
    rec.defaultMovement = rec.claimedMovement; // claims no saving
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R2.not-profitable")) << rulesOf(report);
}

// ---------------------------------------------------------------- R3

TEST_F(PlanMutationTest, RemovedChildDependenceIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at =
        findRecord(built, [](const verify::SplitRecord &r) {
            if (!r.wasSplit)
                return false;
            for (const Subcomputation &sub : r.split.subs) {
                if (!sub.children.empty())
                    return true;
            }
            return false;
        });
    ASSERT_GE(at, 0) << "no split with a merge subcomputation";
    const verify::SplitRecord &rec =
        built.prov.instances[static_cast<std::size_t>(at)];
    for (std::size_t s = 0; s < rec.split.subs.size(); ++s) {
        if (rec.split.subs[s].children.empty())
            continue;
        sim::Task &parent =
            built.plan.tasks[static_cast<std::size_t>(rec.firstTask) + s];
        ASSERT_FALSE(parent.deps.empty());
        parent.deps.erase(parent.deps.begin());
        break;
    }
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R3.sync-missing")) << rulesOf(report);
}

TEST_F(PlanMutationTest, SelfDependenceIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    sim::Task &task = built.plan.tasks.front();
    task.deps.push_back(task.id);
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R3.dep-order")) << rulesOf(report);
}

TEST_F(PlanMutationTest, MissingRootWriteIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const verify::SplitRecord &rec = built.prov.instances.front();
    built.plan.tasks[static_cast<std::size_t>(rec.rootTask)]
        .write.reset();
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R3.root-write")) << rulesOf(report);
}

TEST_F(PlanMutationTest, DroppedFlowDependenceIsARace)
{
    // All-unsplit plan (prohibitive split overhead): S2 reads the D[i]
    // S1 wrote, so dropping S2's dependences leaves a cross-task race.
    const ir::LoopNest nest = parseDefault();
    PartitionOptions opts;
    opts.overheadSafetyFactor = 1e9;
    BuiltPlan built = build(nest, opts);
    const std::ptrdiff_t at =
        findRecord(built, [](const verify::SplitRecord &r) {
            return !r.wasSplit && r.statementIndex == 1;
        });
    ASSERT_GE(at, 0);
    const verify::SplitRecord &rec =
        built.prov.instances[static_cast<std::size_t>(at)];
    sim::Task &reader =
        built.plan.tasks[static_cast<std::size_t>(rec.firstTask)];
    ASSERT_FALSE(reader.deps.empty())
        << "S2 should depend on S1's write";
    reader.deps.clear();
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R3.conflict-unordered"))
        << rulesOf(report);
}

TEST_F(PlanMutationTest, BrokenTaskTilingIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    built.prov.instances.front().taskCount += 1;
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R3.coverage")) << rulesOf(report);
}

// ---------------------------------------------------------------- R4

TEST_F(PlanMutationTest, RehomedOperandLocationIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at =
        findRecord(built, [](const verify::SplitRecord &r) {
            if (!r.wasSplit)
                return false;
            for (const Location &loc : r.locations) {
                if (loc.source != LocationSource::L1Copy)
                    return true;
            }
            return false;
        });
    ASSERT_GE(at, 0);
    verify::SplitRecord &rec =
        built.prov.instances[static_cast<std::size_t>(at)];
    for (Location &loc : rec.locations) {
        if (loc.source != LocationSource::L1Copy) {
            loc.node = (loc.node + 1) % system.mesh().nodeCount();
            break;
        }
    }
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R4.home-mismatch")) << rulesOf(report);
}

TEST_F(PlanMutationTest, RehomedReuseCopyIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    const std::ptrdiff_t at =
        findRecord(built, [](const verify::SplitRecord &r) {
            if (!r.wasSplit)
                return false;
            for (const Location &loc : r.locations) {
                if (loc.source == LocationSource::L1Copy)
                    return true;
            }
            return false;
        });
    ASSERT_GE(at, 0) << "nest planned no L1-copy reuse";
    verify::SplitRecord &rec =
        built.prov.instances[static_cast<std::size_t>(at)];
    for (Location &loc : rec.locations) {
        if (loc.source == LocationSource::L1Copy) {
            loc.node = (loc.node + 1) % system.mesh().nodeCount();
            break;
        }
    }
    const verify::Report report = verify(nest, built);
    // Depending on where the line also lives, the mutation is either a
    // fetch the window never planned or a non-minimal copy pick.
    EXPECT_TRUE(hasRulePrefix(report, "R4.reuse")) << rulesOf(report);
}

// ---------------------------------------------------------------- R5

TEST_F(PlanMutationTest, FaultEpochMismatchIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    BuiltPlan built = build(nest, {});
    built.prov.faultEpoch += 1;
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R5.epoch-mismatch")) << rulesOf(report);
}

class PlanMutationFaultTest : public ::testing::Test
{
  protected:
    PlanMutationFaultTest()
    {
        config.faults.killNode(deadNode);
        system = std::make_unique<sim::ManycoreSystem>(config);
    }

    static constexpr noc::NodeId deadNode = 8; // interior, non-corner

    sim::ManycoreConfig config;
    std::unique_ptr<sim::ManycoreSystem> system;
    ir::ArrayTable arrays;
};

TEST_F(PlanMutationFaultTest, TaskMovedToDeadNodeIsCaught)
{
    const ir::LoopNest nest = ir::parseKernel(R"(
        array A[256] bytes 64; array B[256] bytes 64;
        array C[256] bytes 64; array D[256] bytes 64;
        for i = 0..256 { A[i] = B[i] + C[i] + D[i]; })",
                                              "faulted", arrays);
    PartitionOptions opts;
    opts.verifyLevel = verify::VerifyLevel::Full;
    baseline::DefaultPlacement placement(*system, arrays);
    Partitioner partitioner(*system, arrays, opts);
    BuiltPlan built;
    built.plan =
        partitioner.plan(nest, placement.assignIterations(nest));
    ASSERT_NE(partitioner.report().provenance, nullptr);
    built.prov = *partitioner.report().provenance;

    const verify::PlanVerifier verifier(*system, arrays);
    ASSERT_TRUE(verifier.verify(nest, built.plan, built.prov).clean());

    // Move one task onto the dead tile (record and task together, so
    // the scheduler-mirror checks stay silent and the liveness rule is
    // the one that objects).
    bool moved = false;
    for (verify::SplitRecord &rec : built.prov.instances) {
        if (!rec.wasSplit) {
            rec.defaultNode = deadNode;
            built.plan.tasks[static_cast<std::size_t>(rec.firstTask)]
                .node = deadNode;
            moved = true;
            break;
        }
    }
    if (!moved) {
        for (verify::SplitRecord &rec : built.prov.instances) {
            if (rec.wasSplit) {
                rec.split.subs.front().node = deadNode;
                built.plan
                    .tasks[static_cast<std::size_t>(rec.firstTask)]
                    .node = deadNode;
                moved = true;
                break;
            }
        }
    }
    ASSERT_TRUE(moved);
    const verify::Report report =
        verifier.verify(nest, built.plan, built.prov);
    EXPECT_TRUE(hasRule(report, "R5.task-on-dead")) << rulesOf(report);
}

TEST_F(PlanMutationFaultTest, OperandLocatedOnDeadNodeIsCaught)
{
    const ir::LoopNest nest = ir::parseKernel(R"(
        array A[256] bytes 64; array B[256] bytes 64;
        array C[256] bytes 64; array D[256] bytes 64;
        array E[256] bytes 64;
        for i = 0..256 { A[i] = B[i] + C[i] + D[i] + E[i]; })",
                                              "faulted2", arrays);
    PartitionOptions opts;
    opts.verifyLevel = verify::VerifyLevel::Full;
    baseline::DefaultPlacement placement(*system, arrays);
    Partitioner partitioner(*system, arrays, opts);
    BuiltPlan built;
    built.plan =
        partitioner.plan(nest, placement.assignIterations(nest));
    ASSERT_NE(partitioner.report().provenance, nullptr);
    built.prov = *partitioner.report().provenance;

    bool mutated = false;
    for (verify::SplitRecord &rec : built.prov.instances) {
        if (rec.wasSplit && !rec.locations.empty()) {
            rec.locations.front().node = deadNode;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    const verify::PlanVerifier verifier(*system, arrays);
    const verify::Report report =
        verifier.verify(nest, built.plan, built.prov);
    EXPECT_TRUE(hasRule(report, "R5.reuse-on-dead")) << rulesOf(report);
}

// ---------------------------------------------------------------- R6

TEST_F(PlanMutationTest, CorruptedCacheReplayIsCaught)
{
    const ir::LoopNest nest = parseDefault();
    PartitionOptions opts;
    opts.loadBalance = false; // the memoized path (cache hits require it)
    opts.memoizeSplits = true;
    BuiltPlan built = build(nest, opts);
    const std::ptrdiff_t at =
        findRecord(built, [](const verify::SplitRecord &r) {
            return r.wasSplit && r.fromCache;
        });
    ASSERT_GE(at, 0) << "no split was served from the plan cache";
    verify::SplitRecord &rec =
        built.prov.instances[static_cast<std::size_t>(at)];
    rec.split.plannedMovement += 1;
    rec.claimedMovement += 1; // keep R2's claim check silent
    const verify::Report report = verify(nest, built);
    EXPECT_TRUE(hasRule(report, "R6.replay-divergence"))
        << rulesOf(report);
}

} // namespace
