/**
 * @file
 * Randomized property tests for the nest-level parallelism axis:
 * for any synthetic multi-nest application, an ExperimentRunner that
 * fans loop nests out on a thread pool must reproduce the serial
 * runner exactly — the same per-nest variable2node window history
 * (PartitionReport::reuseMapHash digests every insertion, in order),
 * the same planned/default Equation-1 movement, and the same app-level
 * aggregates. Deterministically seeded, so failures reproduce.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/experiment.h"
#include "ir/parser.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;

/**
 * A random application: 2..4 nests, each with its own arrays (plus
 * earlier nests' arrays in scope for cross-nest reuse of names) and
 * 1..3 statements whose operands are drawn with replacement, so
 * windows see genuine cross-statement reuse and the variable2node map
 * has work to do.
 */
workloads::Workload
randomWorkload(int trial, Rng &rng)
{
    workloads::Workload w;
    w.name = "prop" + std::to_string(trial);
    const int nest_count = 2 + static_cast<int>(rng.nextBelow(3));
    int next_array = 0;
    for (int n = 0; n < nest_count; ++n) {
        std::vector<std::string> names;
        std::string src;
        const int array_count = 3 + static_cast<int>(rng.nextBelow(4));
        for (int a = 0; a < array_count; ++a) {
            names.push_back("A" + std::to_string(next_array++));
            src += "array " + names.back() + "[64];\n";
        }
        const int stmts = 1 + static_cast<int>(rng.nextBelow(3));
        src += "for i = 0..48 {\n";
        for (int s = 0; s < stmts; ++s) {
            const std::string &out =
                names[static_cast<std::size_t>(s) % names.size()];
            const int leaves = 2 + static_cast<int>(rng.nextBelow(4));
            std::string rhs;
            for (int l = 0; l < leaves; ++l) {
                if (l > 0)
                    rhs += rng.nextBool(0.5) ? " + " : " * ";
                rhs += names[rng.nextBelow(names.size())] + "[i]";
            }
            src += "  S" + std::to_string(s + 1) + ": " + out +
                   "[i] = " + rhs + ";\n";
        }
        src += "}";
        w.nests.push_back(ir::parseKernel(
            src, w.name + "/n" + std::to_string(n), w.arrays));
    }
    return w;
}

TEST(NestParallelPropertyTest, PooledRunAppMatchesSerialExactly)
{
    Rng rng(0x5eed);
    driver::ExperimentConfig config;
    const driver::ExperimentRunner serial(config);
    for (int trial = 0; trial < 12; ++trial) {
        const workloads::Workload app = randomWorkload(trial, rng);
        support::ThreadPool pool(
            static_cast<std::size_t>(1 + trial % 8));
        const driver::ExperimentRunner pooled(config, &pool);

        const driver::AppResult s = serial.runApp(app);
        const driver::AppResult p = pooled.runApp(app);

        ASSERT_EQ(s.nests.size(), app.nests.size()) << "trial " << trial;
        ASSERT_EQ(p.nests.size(), s.nests.size()) << "trial " << trial;

        std::int64_t s_planned = 0, p_planned = 0;
        std::int64_t s_default = 0, p_default = 0;
        for (std::size_t n = 0; n < s.nests.size(); ++n) {
            const partition::PartitionReport &sr = s.nests[n].report;
            const partition::PartitionReport &pr = p.nests[n].report;
            // The variable2node window state evolved identically:
            // equal digests mean the same (line, node) insertions in
            // the same order in every window of the chosen plan.
            EXPECT_EQ(sr.reuseMapHash, pr.reuseMapHash)
                << "trial " << trial << " nest " << n;
            EXPECT_EQ(sr.reuseCopiesPlanned, pr.reuseCopiesPlanned)
                << "trial " << trial << " nest " << n;
            EXPECT_EQ(sr.chosenWindowSize, pr.chosenWindowSize)
                << "trial " << trial << " nest " << n;
            EXPECT_EQ(sr.plannedMovement, pr.plannedMovement)
                << "trial " << trial << " nest " << n;
            EXPECT_EQ(sr.defaultMovement, pr.defaultMovement)
                << "trial " << trial << " nest " << n;
            s_planned += sr.plannedMovement;
            p_planned += pr.plannedMovement;
            s_default += sr.defaultMovement;
            p_default += pr.defaultMovement;
        }
        // Total Equation-1 movement agrees, nest-parallel or not.
        EXPECT_EQ(s_planned, p_planned) << "trial " << trial;
        EXPECT_EQ(s_default, p_default) << "trial " << trial;

        // And the merged app-level aggregates.
        EXPECT_EQ(s.defaultMakespan, p.defaultMakespan)
            << "trial " << trial;
        EXPECT_EQ(s.optimizedMakespan, p.optimizedMakespan)
            << "trial " << trial;
        EXPECT_EQ(s.movementReductionPct.count(),
                  p.movementReductionPct.count())
            << "trial " << trial;
        EXPECT_EQ(s.movementReductionPct.sum(),
                  p.movementReductionPct.sum())
            << "trial " << trial;
        EXPECT_EQ(s.predictorAccuracy, p.predictorAccuracy)
            << "trial " << trial;
    }
}

TEST(NestParallelPropertyTest, ReuseDigestSeesWindowHistory)
{
    // Sanity on the observability hook itself: a reuse-exploiting run
    // of a reuse-heavy kernel must record insertions, and disabling
    // the variable2node map must change the recorded history.
    Rng rng(0xd1ce);
    const workloads::Workload app = randomWorkload(999, rng);

    driver::ExperimentConfig with_reuse;
    driver::ExperimentConfig without_reuse;
    without_reuse.partition.exploitReuse = false;

    const driver::AppResult a =
        driver::ExperimentRunner(with_reuse).runApp(app);
    const driver::AppResult b =
        driver::ExperimentRunner(without_reuse).runApp(app);

    std::int64_t with_copies = 0, without_copies = 0;
    for (const driver::NestResult &nr : a.nests)
        with_copies += nr.report.reuseCopiesPlanned;
    for (const driver::NestResult &nr : b.nests)
        without_copies += nr.report.reuseCopiesPlanned;
    EXPECT_GT(with_copies, 0)
        << "reuse-aware planning recorded no variable2node insertions";
    EXPECT_EQ(without_copies, 0)
        << "reuse-agnostic planning must not touch variable2node";
}

} // namespace
