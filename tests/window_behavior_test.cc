/**
 * @file
 * Behavioural tests for the window machinery of Section 4.4: window
 * boundaries scope the variable2node map (Figure 12's lost-reuse
 * scenario), the L1-pollution capacity model, the reuse-awareness
 * knob, and the profitability guard's observable effects.
 */

#include <gtest/gtest.h>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "sim/engine.h"

namespace {

using namespace ndp;
using namespace ndp::partition;

class WindowBehaviorTest : public ::testing::Test
{
  protected:
    WindowBehaviorTest()
        : system(config)
    {
    }

    /** Two statements per iteration sharing operand C (Figure 11). */
    ir::LoopNest
    reuseNest()
    {
        return ir::parseKernel(R"(
            array A[256] bytes 64; array B[256] bytes 64;
            array C[256] bytes 64; array D[256] bytes 64;
            array E[256] bytes 64; array X[256] bytes 64;
            array Y[256] bytes 64;
            for i = 0..256 {
              S1: A[i] = B[i] + C[i] + D[i] + E[i];
              S2: X[i] = Y[i] + C[i];
            })",
                               "reuse", arrays);
    }

    std::vector<noc::NodeId>
    defaults(const ir::LoopNest &nest)
    {
        baseline::DefaultPlacement placement(system, arrays);
        return placement.assignIterations(nest);
    }

    std::int64_t
    plannedMovement(const ir::LoopNest &nest, PartitionOptions options)
    {
        Partitioner partitioner(system, arrays, options);
        (void)partitioner.plan(nest, defaults(nest));
        return partitioner.report().plannedMovement;
    }

    sim::ManycoreConfig config;
    sim::ManycoreSystem system;
    ir::ArrayTable arrays;
};

TEST_F(WindowBehaviorTest, WindowOfTwoCapturesFigure11Reuse)
{
    // With both statements in one window the planner may reuse C(i)'s
    // L1 copy; with windows of one statement it cannot. Disable the
    // profitability guard so the raw movement totals compare the pure
    // mechanism (Figure 11's 15 -> 13 link example).
    const ir::LoopNest nest = reuseNest();
    PartitionOptions w1;
    w1.fixedWindowSize = 1;
    w1.overheadSafetyFactor = 0.0;
    PartitionOptions w2;
    w2.fixedWindowSize = 2;
    w2.overheadSafetyFactor = 0.0;
    // The copy-preferring locator is greedy, not globally optimal, so
    // the reuse-aware plan may trade a handful of flit-hops on some
    // statements; it must stay within 1% of the window-1 plan and
    // typically beats it.
    const std::int64_t m1 = plannedMovement(nest, w1);
    const std::int64_t m2 = plannedMovement(nest, w2);
    EXPECT_LE(m2, m1 + m1 / 100);
}

TEST_F(WindowBehaviorTest, WindowBoundaryForgetsCopies)
{
    // Figure 12c: when the statement that fetched the datum lands in a
    // *previous* window, the later reader cannot use the copy. A
    // window of 2 pairs (S1,S2) together; a window of 3 shifts the
    // pairing so every other S2 is separated from its S1.
    const ir::LoopNest nest = reuseNest();
    PartitionOptions paired;
    paired.fixedWindowSize = 2;
    paired.overheadSafetyFactor = 0.0;
    PartitionOptions shifted;
    shifted.fixedWindowSize = 3;
    shifted.overheadSafetyFactor = 0.0;
    EXPECT_LE(plannedMovement(nest, paired),
              plannedMovement(nest, shifted));
}

TEST_F(WindowBehaviorTest, PollutionCapacityLimitsReuse)
{
    // With a 1-line trust budget per node, almost every planned copy
    // is forgotten before reuse: movement must not beat the untrusted
    // plan by the reuse margin anymore.
    const ir::LoopNest nest = reuseNest();
    PartitionOptions roomy;
    roomy.fixedWindowSize = 2;
    roomy.overheadSafetyFactor = 0.0;
    roomy.reuseCapacityLines = 64;
    PartitionOptions tight = roomy;
    tight.reuseCapacityLines = 1;
    const std::int64_t roomy_m = plannedMovement(nest, roomy);
    const std::int64_t tight_m = plannedMovement(nest, tight);
    EXPECT_LE(roomy_m, tight_m + tight_m / 100);
}

TEST_F(WindowBehaviorTest, ReuseAgnosticEqualsNoMapEntries)
{
    const ir::LoopNest nest = reuseNest();
    PartitionOptions agnostic;
    agnostic.fixedWindowSize = 2;
    agnostic.overheadSafetyFactor = 0.0;
    agnostic.exploitReuse = false;
    PartitionOptions starved;
    starved.fixedWindowSize = 2;
    starved.overheadSafetyFactor = 0.0;
    starved.reuseCapacityLines = 1; // map exists but holds ~nothing
    // Reuse-agnostic and a starved map must plan essentially the same
    // movement (within the greedy locator's noise).
    const std::int64_t agnostic_m = plannedMovement(nest, agnostic);
    const std::int64_t starved_m = plannedMovement(nest, starved);
    EXPECT_NEAR(static_cast<double>(agnostic_m),
                static_cast<double>(starved_m),
                static_cast<double>(starved_m) / 100.0);
}

TEST_F(WindowBehaviorTest, GuardDisabledSplitsEverythingAnalyzable)
{
    const ir::LoopNest nest = reuseNest();
    PartitionOptions no_guard;
    no_guard.overheadSafetyFactor = 0.0;
    Partitioner aggressive(system, arrays, no_guard);
    (void)aggressive.plan(nest, defaults(nest));
    // Even with the overhead guard off, statements whose split cannot
    // improve movement at all stay default; they must be a small
    // minority here.
    EXPECT_GE(aggressive.report().statementsSplit, 450);
    EXPECT_LE(aggressive.report().statementsKeptDefault, 62);
}

TEST_F(WindowBehaviorTest, GuardedPlanNeverPlansMoreMovement)
{
    // The guard only ever replaces a split by the default placement,
    // so total planned movement can only grow toward the default — but
    // must stay <= the pure default movement.
    const ir::LoopNest nest = reuseNest();
    Partitioner guarded(system, arrays, PartitionOptions{});
    (void)guarded.plan(nest, defaults(nest));
    const auto &report = guarded.report();
    EXPECT_LE(report.plannedMovement, report.defaultMovement);
}

TEST_F(WindowBehaviorTest, WindowSweepReportsAllSizes)
{
    const ir::LoopNest nest = reuseNest();
    PartitionOptions sweep;
    sweep.maxWindowSize = 5;
    Partitioner partitioner(system, arrays, sweep);
    (void)partitioner.plan(nest, defaults(nest));
    EXPECT_EQ(partitioner.report().movementPerWindowSize.size(), 5u);
    EXPECT_LE(partitioner.report().chosenWindowSize, 5);
    EXPECT_GE(partitioner.report().chosenWindowSize, 1);
}

} // namespace
