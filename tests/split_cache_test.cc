/**
 * @file
 * Split-plan memoization tests. The cache's contract is invisibility:
 * a Partitioner with memoizeSplits on must produce byte-identical
 * results to one with it off — same per-nest reuse-map digests, same
 * Equation-1 movement, same app aggregates — for randomized multi-nest
 * apps across reuse on/off, window sizes 1/4/16, and pool sizes 1 and
 * 8 (load balancing off: balanced splits bypass the cache by design).
 * Unit tests pin the counters: hits happen on a periodic nest, and
 * never when the load balancer is on; plus direct SplitPlanCache
 * key/collision/clear semantics.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/experiment.h"
#include "ir/parser.h"
#include "partition/split_plan_cache.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;

/**
 * A random application, same shape as the nest-parallel property
 * tests: 2..4 nests with overlapping operand draws so windows see
 * real reuse and split signatures actually recur.
 */
workloads::Workload
randomWorkload(int trial, Rng &rng)
{
    workloads::Workload w;
    w.name = "cacheprop" + std::to_string(trial);
    const int nest_count = 2 + static_cast<int>(rng.nextBelow(3));
    int next_array = 0;
    for (int n = 0; n < nest_count; ++n) {
        std::vector<std::string> names;
        std::string src;
        const int array_count = 3 + static_cast<int>(rng.nextBelow(4));
        for (int a = 0; a < array_count; ++a) {
            names.push_back("A" + std::to_string(next_array++));
            src += "array " + names.back() + "[64];\n";
        }
        const int stmts = 1 + static_cast<int>(rng.nextBelow(3));
        src += "for i = 0..48 {\n";
        for (int s = 0; s < stmts; ++s) {
            const std::string &out =
                names[static_cast<std::size_t>(s) % names.size()];
            const int leaves = 2 + static_cast<int>(rng.nextBelow(4));
            std::string rhs;
            for (int l = 0; l < leaves; ++l) {
                if (l > 0)
                    rhs += rng.nextBool(0.5) ? " + " : " * ";
                rhs += names[rng.nextBelow(names.size())] + "[i]";
            }
            src += "  S" + std::to_string(s + 1) + ": " + out +
                   "[i] = " + rhs + ";\n";
        }
        src += "}";
        w.nests.push_back(ir::parseKernel(
            src, w.name + "/n" + std::to_string(n), w.arrays));
    }
    return w;
}

/** Every determinism-relevant field of two AppResults must agree. */
void
expectIdenticalResults(const driver::AppResult &a,
                       const driver::AppResult &b,
                       const std::string &label)
{
    ASSERT_EQ(a.nests.size(), b.nests.size()) << label;
    for (std::size_t n = 0; n < a.nests.size(); ++n) {
        const partition::PartitionReport &ar = a.nests[n].report;
        const partition::PartitionReport &br = b.nests[n].report;
        EXPECT_EQ(ar.reuseMapHash, br.reuseMapHash)
            << label << " nest " << n;
        EXPECT_EQ(ar.reuseCopiesPlanned, br.reuseCopiesPlanned)
            << label << " nest " << n;
        EXPECT_EQ(ar.chosenWindowSize, br.chosenWindowSize)
            << label << " nest " << n;
        EXPECT_EQ(ar.plannedMovement, br.plannedMovement)
            << label << " nest " << n;
        EXPECT_EQ(ar.defaultMovement, br.defaultMovement)
            << label << " nest " << n;
        EXPECT_EQ(ar.statementsSplit, br.statementsSplit)
            << label << " nest " << n;
        EXPECT_EQ(ar.statementsKeptDefault, br.statementsKeptDefault)
            << label << " nest " << n;
        EXPECT_EQ(ar.offloadedSubcomputations,
                  br.offloadedSubcomputations)
            << label << " nest " << n;
        EXPECT_EQ(ar.movementPerWindowSize, br.movementPerWindowSize)
            << label << " nest " << n;
        EXPECT_EQ(a.nests[n].optimizedRun.makespanCycles,
                  b.nests[n].optimizedRun.makespanCycles)
            << label << " nest " << n;
        // The cache must not disturb the locate path either: the miss
        // predictor sees the same queries in the same order.
        EXPECT_EQ(a.nests[n].predictorPredictions,
                  b.nests[n].predictorPredictions)
            << label << " nest " << n;
        EXPECT_EQ(a.nests[n].predictorCorrect,
                  b.nests[n].predictorCorrect)
            << label << " nest " << n;
    }
    EXPECT_EQ(a.defaultMakespan, b.defaultMakespan) << label;
    EXPECT_EQ(a.optimizedMakespan, b.optimizedMakespan) << label;
    EXPECT_EQ(a.defaultEnergy, b.defaultEnergy) << label;
    EXPECT_EQ(a.optimizedEnergy, b.optimizedEnergy) << label;
    EXPECT_EQ(a.movementReductionPct.count(),
              b.movementReductionPct.count())
        << label;
    EXPECT_EQ(a.movementReductionPct.sum(), b.movementReductionPct.sum())
        << label;
    EXPECT_EQ(a.degreeOfParallelism.sum(), b.degreeOfParallelism.sum())
        << label;
    EXPECT_EQ(a.syncsPerStatement.sum(), b.syncsPerStatement.sum())
        << label;
    EXPECT_EQ(a.predictorAccuracy, b.predictorAccuracy) << label;
}

TEST(SplitCacheEquivalenceTest, CacheOnMatchesCacheOffExactly)
{
    Rng rng(0xcac4e);
    const std::int32_t window_sizes[] = {1, 4, 16};
    int trial = 0;
    for (const bool reuse : {true, false}) {
        for (const std::int32_t w : window_sizes) {
            const workloads::Workload app = randomWorkload(trial, rng);

            driver::ExperimentConfig config;
            config.partition.loadBalance = false;
            config.partition.exploitReuse = reuse;
            config.partition.fixedWindowSize = w;

            driver::ExperimentConfig cached = config;
            cached.partition.memoizeSplits = true;
            driver::ExperimentConfig uncached = config;
            uncached.partition.memoizeSplits = false;

            const std::string label = "reuse=" +
                                      std::to_string(reuse) +
                                      " w=" + std::to_string(w);

            // Serial (pool of 1 would still thread; use no pool) and
            // an 8-thread pool on both modes: four runs, one result.
            const driver::AppResult on_serial =
                driver::ExperimentRunner(cached).runApp(app);
            const driver::AppResult off_serial =
                driver::ExperimentRunner(uncached).runApp(app);
            expectIdenticalResults(on_serial, off_serial,
                                   label + " serial");

            support::ThreadPool pool(8);
            const driver::AppResult on_pooled =
                driver::ExperimentRunner(cached, &pool).runApp(app);
            const driver::AppResult off_pooled =
                driver::ExperimentRunner(uncached, &pool).runApp(app);
            expectIdenticalResults(on_pooled, off_pooled,
                                   label + " pooled");
            expectIdenticalResults(on_serial, on_pooled,
                                   label + " serial-vs-pooled");

            // The cache-on runs actually exercised the cache.
            EXPECT_GT(on_serial.compile.plansMemoized, 0) << label;
            EXPECT_EQ(off_serial.compile.plansMemoized, 0) << label;
            ++trial;
        }
    }
}

TEST(SplitCacheCounterTest, PeriodicNestHitsTheCache)
{
    workloads::WorkloadFactory factory(256);
    const workloads::Workload app = factory.build("water");

    driver::ExperimentConfig config;
    config.partition.loadBalance = false;
    const driver::AppResult r =
        driver::ExperimentRunner(config).runApp(app);

    // Affine accesses + periodic SNUCA banking: most instances replay.
    EXPECT_GT(r.compile.plansMemoized, 0);
    EXPECT_GT(r.compile.hitRate(), 0.5)
        << "periodic nest should mostly hit ("
        << r.compile.plansMemoized << " hits / "
        << r.compile.plansComputed << " computes)";
    EXPECT_EQ(r.compile.cacheBypassed, 0);
    EXPECT_EQ(r.compile.splitsRequested,
              r.compile.plansComputed + r.compile.plansMemoized);
}

TEST(SplitCacheCounterTest, LoadBalancedSplitsNeverUseTheCache)
{
    workloads::WorkloadFactory factory(256);
    const workloads::Workload app = factory.build("water");

    driver::ExperimentConfig config;
    config.partition.loadBalance = true; // mutates trial state
    const driver::AppResult r =
        driver::ExperimentRunner(config).runApp(app);

    EXPECT_EQ(r.compile.plansMemoized, 0);
    EXPECT_EQ(r.compile.plansComputed, 0);
    EXPECT_GT(r.compile.cacheBypassed, 0);
    EXPECT_EQ(r.compile.splitsRequested, r.compile.cacheBypassed);
}

// ------------------------------------------------- SplitPlanCache unit

partition::SplitResult
markerPlan(std::int64_t movement)
{
    partition::SplitResult plan;
    plan.plannedMovement = movement;
    return plan;
}

TEST(SplitPlanCacheTest, KeyCoversStatementStoreAndLocations)
{
    partition::SplitPlanCache cache;
    const std::vector<partition::Location> locs = {
        {3, partition::LocationSource::L2Home},
        {7, partition::LocationSource::MemCtrl},
    };

    EXPECT_EQ(cache.lookup(0, 5, locs), nullptr);
    cache.insert(markerPlan(11));
    ASSERT_NE(cache.lookup(0, 5, locs), nullptr);
    EXPECT_EQ(cache.lookup(0, 5, locs)->plannedMovement, 11);

    // Any key component changing must miss: statement index...
    EXPECT_EQ(cache.lookup(1, 5, locs), nullptr);
    cache.insert(markerPlan(22));
    // ...store node...
    EXPECT_EQ(cache.lookup(0, 6, locs), nullptr);
    cache.insert(markerPlan(33));
    // ...a location's node...
    std::vector<partition::Location> moved = locs;
    moved[0].node = 4;
    EXPECT_EQ(cache.lookup(0, 5, moved), nullptr);
    cache.insert(markerPlan(44));
    // ...or a location's source, node unchanged (an L1 reuse copy
    // splits differently than an L2-home fetch from the same node).
    std::vector<partition::Location> resourced = locs;
    resourced[0].source = partition::LocationSource::L1Copy;
    EXPECT_EQ(cache.lookup(0, 5, resourced), nullptr);
    cache.insert(markerPlan(55));

    // All five entries coexist and resolve to their own plans.
    EXPECT_EQ(cache.size(), 5u);
    EXPECT_EQ(cache.lookup(0, 5, locs)->plannedMovement, 11);
    EXPECT_EQ(cache.lookup(1, 5, locs)->plannedMovement, 22);
    EXPECT_EQ(cache.lookup(0, 6, locs)->plannedMovement, 33);
    EXPECT_EQ(cache.lookup(0, 5, moved)->plannedMovement, 44);
    EXPECT_EQ(cache.lookup(0, 5, resourced)->plannedMovement, 55);
}

TEST(SplitPlanCacheTest, ClearDropsEntriesButKeepsCounters)
{
    partition::SplitPlanCache cache;
    const std::vector<partition::Location> locs = {
        {1, partition::LocationSource::L2Home}};

    EXPECT_EQ(cache.lookup(0, 0, locs), nullptr);
    cache.insert(markerPlan(1));
    ASSERT_NE(cache.lookup(0, 0, locs), nullptr);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(0, 0, locs), nullptr);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 2);
}

} // namespace
