/**
 * @file
 * Tests for the partition layer building blocks: the variable2node
 * map, data location (GetNode), the load balancer, the MST-based
 * statement splitter (including MST-weight optimality against brute
 * force and the paper's worked examples), and the synchronisation
 * graph's transitive reduction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "ir/nested_sets.h"
#include "support/disjoint_set.h"
#include "ir/parser.h"
#include "partition/data_locator.h"
#include "partition/load_balancer.h"
#include "partition/splitter.h"
#include "partition/sync_graph.h"
#include "sim/manycore.h"
#include "support/rng.h"

namespace {

using namespace ndp;
using namespace ndp::partition;

// ---------------------------------------------------- VariableToNodeMap

TEST(VariableToNodeMapTest, RecordsAndDeduplicates)
{
    VariableToNodeMap map;
    map.add(0x100, 3);
    map.add(0x100, 3); // duplicate
    map.add(0x110, 5); // same line as 0x100
    ASSERT_EQ(map.nodesFor(0x100).size(), 2u);
    EXPECT_EQ(map.nodesFor(0x100)[0], 3);
    EXPECT_EQ(map.nodesFor(0x100)[1], 5);
    EXPECT_TRUE(map.nodesFor(0x4000).empty());
    map.clear();
    EXPECT_TRUE(map.nodesFor(0x100).empty());
}

TEST(VariableToNodeMapTest, CapacityModelsL1Pollution)
{
    VariableToNodeMap map(/*per_node_capacity=*/2);
    map.add(0 * mem::kLineSize, 7);
    map.add(1 * mem::kLineSize, 7);
    map.add(2 * mem::kLineSize, 7); // evicts line 0 from node 7
    EXPECT_TRUE(map.nodesFor(0).empty());
    EXPECT_FALSE(map.nodesFor(1 * mem::kLineSize).empty());
    EXPECT_FALSE(map.nodesFor(2 * mem::kLineSize).empty());
}

// ----------------------------------------------------------- DataLocator

class DataLocatorTest : public ::testing::Test
{
  protected:
    sim::ManycoreConfig config;
    sim::ManycoreSystem system{config};
};

TEST_F(DataLocatorTest, DefaultsToHomeBank)
{
    DataLocator locator(system);
    VariableToNodeMap empty;
    const mem::Addr addr = 0x123400;
    const Location loc = locator.locate(addr, empty, 0);
    EXPECT_EQ(loc.node, system.addressMap().homeBankNode(addr));
}

TEST_F(DataLocatorTest, PrefersNearestL1Copy)
{
    DataLocator locator(system);
    VariableToNodeMap map;
    const mem::Addr addr = 0x777000;
    const noc::NodeId near = system.mesh().nodeAt({1, 1});
    const noc::NodeId far = system.mesh().nodeAt({5, 5});
    map.add(addr, far);
    map.add(addr, near);
    const Location loc =
        locator.locate(addr, map, system.mesh().nodeAt({0, 0}));
    EXPECT_EQ(loc.source, LocationSource::L1Copy);
    EXPECT_EQ(loc.node, near);
}

TEST_F(DataLocatorTest, PredictedMissTagsMemCtrlSource)
{
    // Train the predictor to predict misses for this line.
    const mem::Addr addr = 0x9990c0;
    for (int i = 0; i < 8; ++i)
        system.missPredictor().update(addr, false);
    DataLocator locator(system);
    const Location loc = locator.locateHome(addr);
    EXPECT_EQ(loc.source, LocationSource::MemCtrl);
    // The node stays on the fill path (home bank; see DESIGN.md).
    EXPECT_EQ(loc.node, system.addressMap().homeBankNode(addr));
}

TEST_F(DataLocatorTest, OracleIgnoresPredictor)
{
    const mem::Addr addr = 0x55500;
    for (int i = 0; i < 8; ++i)
        system.missPredictor().update(addr, false);
    DataLocator oracle(system, /*oracle=*/true);
    EXPECT_EQ(oracle.locateHome(addr).source, LocationSource::L2Home);
}

// ----------------------------------------------------------LoadBalancer

TEST(LoadBalancerTest, FirstAssignmentsAccepted)
{
    LoadBalancer balancer(4);
    EXPECT_TRUE(balancer.accepts(0, 10));
    balancer.add(0, 10);
    // Node 0 now has load; an idle node is always preferable but node
    // 1 (still empty) accepts too.
    EXPECT_TRUE(balancer.accepts(1, 10));
}

TEST(LoadBalancerTest, TenPercentRule)
{
    LoadBalancer balancer(3, 0.10);
    balancer.add(0, 100);
    balancer.add(1, 100);
    // Node 2 taking 111 would exceed 1.1 * 100.
    EXPECT_FALSE(balancer.accepts(2, 111));
    EXPECT_TRUE(balancer.accepts(2, 110));
}

TEST(LoadBalancerTest, SecondAssignmentToLoadedNodeVetoed)
{
    LoadBalancer balancer(4, 0.10);
    balancer.add(2, 50);
    // All other nodes idle: node 2 must not take more work yet.
    EXPECT_FALSE(balancer.accepts(2, 1));
    EXPECT_TRUE(balancer.accepts(0, 1));
}

TEST(LoadBalancerTest, LoadsAndImbalance)
{
    LoadBalancer balancer(3);
    balancer.add(0, 30);
    balancer.add(1, 10);
    EXPECT_EQ(balancer.load(0), 30);
    EXPECT_EQ(balancer.maxLoad(), 30);
    EXPECT_EQ(balancer.totalLoad(), 40);
    EXPECT_DOUBLE_EQ(balancer.imbalance(), 3.0);
    balancer.reset();
    EXPECT_EQ(balancer.totalLoad(), 0);
    EXPECT_DOUBLE_EQ(balancer.imbalance(), 1.0);
}

// ------------------------------------------------------------- splitter

/** Fixture building statements with chosen operand locations. */
class SplitterTest : public ::testing::Test
{
  protected:
    SplitterTest()
        : mesh(6, 6), splitter(mesh)
    {
    }

    /** Build a flat sum statement with @p n operands. */
    ir::VarSet
    flatSum(int n)
    {
        std::string src;
        std::string rhs;
        src += "array OUT[8];\n";
        for (int i = 0; i < n; ++i) {
            src += "array V" + std::to_string(i) + "[8];\n";
            if (i > 0)
                rhs += " + ";
            rhs += "V" + std::to_string(i) + "[i]";
        }
        src += "for i = 0..8 { OUT[i] = " + rhs + "; }";
        arrays = ir::ArrayTable();
        nest = std::make_unique<ir::LoopNest>(
            ir::parseKernel(src, "t", arrays));
        return ir::buildVarSets(nest->body().front());
    }

    static std::vector<Location>
    at(std::initializer_list<noc::NodeId> nodes)
    {
        std::vector<Location> locations;
        for (noc::NodeId n : nodes) {
            Location loc;
            loc.node = n;
            loc.source = LocationSource::L2Home;
            locations.push_back(loc);
        }
        return locations;
    }

    /** Verify structural invariants every split must satisfy. */
    void
    checkInvariants(const SplitResult &result, std::size_t leaf_count,
                    noc::NodeId store_node)
    {
        ASSERT_GE(result.root, 0);
        const auto &root =
            result.subs[static_cast<std::size_t>(result.root)];
        EXPECT_TRUE(root.isRoot);
        EXPECT_EQ(root.node, store_node);

        // Children precede parents; every leaf consumed exactly once.
        std::set<int> leaves_seen;
        std::set<int> children_seen;
        for (std::size_t s = 0; s < result.subs.size(); ++s) {
            const Subcomputation &sub = result.subs[s];
            for (int leaf : sub.leaves)
                EXPECT_TRUE(leaves_seen.insert(leaf).second)
                    << "leaf " << leaf << " consumed twice";
            for (int child : sub.children) {
                EXPECT_LT(static_cast<std::size_t>(child), s)
                    << "child after parent";
                EXPECT_TRUE(children_seen.insert(child).second)
                    << "subresult consumed twice";
            }
        }
        EXPECT_EQ(leaves_seen.size(), leaf_count);
        // Every non-root sub is consumed by exactly one parent.
        for (std::size_t s = 0; s < result.subs.size(); ++s) {
            if (static_cast<int>(s) == result.root)
                EXPECT_EQ(children_seen.count(static_cast<int>(s)), 0u);
            else
                EXPECT_EQ(children_seen.count(static_cast<int>(s)), 1u);
        }
        EXPECT_GE(result.degreeOfParallelism, 1);
        EXPECT_GE(result.plannedMovement, 0);
    }

    noc::MeshTopology mesh;
    StatementSplitter splitter;
    ir::ArrayTable arrays;
    std::unique_ptr<ir::LoopNest> nest;
};

TEST_F(SplitterTest, AllOperandsColocatedCostZeroMovementToStore)
{
    const ir::VarSet sets = flatSum(3);
    const noc::NodeId where = mesh.nodeAt({2, 2});
    SplitResult result =
        splitter.split(sets, at({where, where, where}), where);
    checkInvariants(result, 3, where);
    EXPECT_EQ(result.plannedMovement, 0);
    EXPECT_EQ(result.subs.size(), 1u); // just the root merge
}

TEST_F(SplitterTest, PaperStyleSingleStatement)
{
    // Mirrors Figure 3/9: B and E share a node cluster, C and D
    // another; the split must merge locally and forward results.
    const ir::VarSet sets = flatSum(4); // B, C, D, E
    const noc::NodeId nB = mesh.nodeAt({1, 1});
    const noc::NodeId nC = mesh.nodeAt({4, 3});
    const noc::NodeId nD = mesh.nodeAt({4, 4});
    const noc::NodeId nE = mesh.nodeAt({1, 1}); // with B
    const noc::NodeId nA = mesh.nodeAt({2, 3}); // store
    SplitResult result =
        splitter.split(sets, at({nB, nC, nD, nE}), nA);
    checkInvariants(result, 4, nA);

    // B+E must merge at their shared node.
    bool be_merge = false;
    for (const Subcomputation &sub : result.subs) {
        if (sub.node == nB && sub.leaves.size() == 2)
            be_merge = true;
    }
    EXPECT_TRUE(be_merge);

    // The default (fetch everything to nA) moves, per element-weighted
    // Equation 1, strictly more than the MST schedule.
    const std::int64_t fetch_weight = 8;
    std::int64_t default_movement = 0;
    for (noc::NodeId n : {nB, nC, nD, nE})
        default_movement += fetch_weight * mesh.distance(n, nA);
    EXPECT_LT(result.plannedMovement, default_movement);
}

TEST_F(SplitterTest, LoneLeafBecomesForwardingSub)
{
    const ir::VarSet sets = flatSum(2);
    const noc::NodeId n0 = mesh.nodeAt({0, 0});
    const noc::NodeId n1 = mesh.nodeAt({5, 5});
    const noc::NodeId store = mesh.nodeAt({0, 5});
    SplitResult result = splitter.split(sets, at({n0, n1}), store);
    checkInvariants(result, 2, store);
    // Each remote lone operand is read where it lives and forwarded as
    // a value (resultWeight), not pulled as a full line.
    for (const Subcomputation &sub : result.subs) {
        if (!sub.isRoot) {
            EXPECT_EQ(sub.leaves.size(), 1u);
            EXPECT_TRUE(sub.ops.empty());
        }
    }
    const std::int64_t expected =
        mesh.distance(n0, store) + mesh.distance(n1, store);
    // Movement is at most one element per operand along MST edges
    // (tree paths may route through intermediate vertices).
    EXPECT_LE(result.plannedMovement,
              2 * (mesh.distance(n0, n1) + mesh.distance(n1, store)));
    EXPECT_GT(result.plannedMovement, 0);
    (void)expected;
}

TEST_F(SplitterTest, ParenthesesSplitInnermostFirst)
{
    // x = a * (b + c): the (b + c) set is processed first and joins
    // the outer MulLike level as one component (Section 4.2).
    arrays = ir::ArrayTable();
    ir::LoopNest local = ir::parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array x[8];
        for i = 0..8 { x[i] = a[i] * (b[i] + c[i]); })",
                                         "t", arrays);
    const ir::VarSet sets = ir::buildVarSets(local.body().front());
    const noc::NodeId na = mesh.nodeAt({0, 0});
    const noc::NodeId nb = mesh.nodeAt({5, 0});
    const noc::NodeId nc = mesh.nodeAt({5, 1});
    const noc::NodeId store = mesh.nodeAt({2, 2});
    SplitResult result = splitter.split(sets, at({na, nb, nc}), store);
    // b + c must merge inside the b/c cluster (possibly as a local
    // leaf plus a forwarded value), not at a's node or the store.
    bool bc_merge_near = false;
    for (const Subcomputation &sub : result.subs) {
        if (!sub.ops.empty() && !sub.isRoot &&
            (sub.node == nb || sub.node == nc) &&
            sub.leaves.size() + sub.children.size() == 2)
            bc_merge_near = true;
    }
    EXPECT_TRUE(bc_merge_near);
}

TEST_F(SplitterTest, LoadBalancerShiftsOverloadedMerges)
{
    const ir::VarSet sets = flatSum(2);
    const noc::NodeId n0 = mesh.nodeAt({1, 1});
    const noc::NodeId n1 = mesh.nodeAt({1, 2});
    const noc::NodeId store = mesh.nodeAt({4, 4});

    // Overload n1 heavily so merges there are vetoed.
    LoadBalancer balancer(mesh.nodeCount(), 0.10);
    for (noc::NodeId n = 0; n < mesh.nodeCount(); ++n) {
        if (n != n1)
            balancer.add(n, 100);
    }
    balancer.add(n1, 100000);

    SplitResult balanced =
        splitter.split(sets, at({n0, n1}), store, &balancer);
    for (const Subcomputation &sub : balanced.subs)
        EXPECT_TRUE(sub.isRoot || sub.opCost == 0 || sub.node != n1)
            << "compute merged on the overloaded node";
}

TEST_F(SplitterTest, DegreeOfParallelismCountsIndependentSubs)
{
    // Two distant operand clusters merging toward a central store.
    const ir::VarSet sets = flatSum(4);
    SplitResult result = splitter.split(
        sets,
        at({mesh.nodeAt({0, 0}), mesh.nodeAt({0, 1}),
            mesh.nodeAt({5, 5}), mesh.nodeAt({5, 4})}),
        mesh.nodeAt({2, 2}));
    // Each cluster merges locally and independently.
    EXPECT_GE(result.degreeOfParallelism, 2);
}

/** Property: MST total weight matches a brute-force minimum. */
class MstOptimalityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MstOptimalityTest, KruskalMatchesBruteForce)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    noc::MeshTopology mesh(6, 6);

    // Random distinct vertices (4..6 of them).
    const int n = 4 + static_cast<int>(rng.nextBelow(3));
    std::set<noc::NodeId> vertex_set;
    while (static_cast<int>(vertex_set.size()) < n) {
        vertex_set.insert(static_cast<noc::NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(mesh.nodeCount()))));
    }
    std::vector<noc::NodeId> vertices(vertex_set.begin(),
                                      vertex_set.end());

    // Brute force over spanning trees via Prüfer-free enumeration:
    // for small n, enumerate all edge subsets of size n-1.
    struct Edge
    {
        int a, b;
        std::int32_t w;
    };
    std::vector<Edge> edges;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            edges.push_back(
                {i, j, mesh.distance(vertices[static_cast<std::size_t>(i)],
                                     vertices[static_cast<std::size_t>(j)])});
        }
    }
    std::int64_t best = INT64_MAX;
    const int m = static_cast<int>(edges.size());
    for (int mask = 0; mask < (1 << m); ++mask) {
        if (__builtin_popcount(static_cast<unsigned>(mask)) != n - 1)
            continue;
        ndp::DisjointSet ds(static_cast<std::size_t>(n));
        std::int64_t w = 0;
        for (int e = 0; e < m; ++e) {
            if (mask & (1 << e)) {
                ds.unite(static_cast<std::size_t>(edges[e].a),
                         static_cast<std::size_t>(edges[e].b));
                w += edges[e].w;
            }
        }
        if (ds.setCount() == 1)
            best = std::min(best, w);
    }

    // Kruskal via the splitter: use a flat statement whose operands sit
    // at vertices[1..]; the store is vertices[0]. The MST edge list the
    // splitter reports must have the brute-force weight.
    std::string src = "array OUT[8];\n";
    std::string rhs;
    for (int i = 1; i < n; ++i) {
        src += "array V" + std::to_string(i) + "[8];\n";
        if (i > 1)
            rhs += " + ";
        rhs += "V" + std::to_string(i) + "[i]";
    }
    src += "for i = 0..8 { OUT[i] = " + rhs + "; }";
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(src, "t", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());

    std::vector<Location> locations;
    for (int i = 1; i < n; ++i) {
        Location loc;
        loc.node = vertices[static_cast<std::size_t>(i)];
        locations.push_back(loc);
    }
    StatementSplitter splitter(mesh);
    SplitResult result =
        splitter.split(sets, locations, vertices[0]);

    std::int64_t kruskal_weight = 0;
    for (const MstEdge &e : result.edges)
        kruskal_weight += e.weight;
    EXPECT_EQ(kruskal_weight, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstOptimalityTest,
                         ::testing::Range(1, 17));

// ------------------------------------------------------------ SyncGraph

TEST(SyncGraphTest, ArcAndReachability)
{
    SyncGraph graph;
    for (int i = 0; i < 4; ++i)
        graph.addNode();
    graph.addArc(0, 1);
    graph.addArc(1, 2);
    EXPECT_TRUE(graph.reachable(0, 2));
    EXPECT_FALSE(graph.reachable(2, 0));
    EXPECT_EQ(graph.arcCount(), 2u);
    graph.addArc(0, 1); // duplicate ignored
    EXPECT_EQ(graph.arcCount(), 2u);
}

TEST(SyncGraphTest, PaperChainExample)
{
    // Chain sub1 -> sub2 -> ... -> subr plus a direct sub1 -> subr arc:
    // the direct arc is redundant (Section 4.5).
    SyncGraph graph;
    const int r = 5;
    for (int i = 0; i < r; ++i)
        graph.addNode();
    for (int i = 0; i + 1 < r; ++i)
        graph.addArc(i, i + 1);
    graph.addArc(0, r - 1); // redundant
    EXPECT_TRUE(graph.impliedByOthers(0, r - 1));
    const std::size_t removed = graph.transitiveReduce();
    EXPECT_EQ(removed, 1u);
    EXPECT_TRUE(graph.reachable(0, r - 1)); // ordering preserved
    EXPECT_EQ(graph.arcCount(), static_cast<std::size_t>(r - 1));
}

TEST(SyncGraphTest, NonRedundantArcsSurvive)
{
    SyncGraph graph;
    for (int i = 0; i < 3; ++i)
        graph.addNode();
    graph.addArc(0, 1);
    graph.addArc(0, 2);
    EXPECT_EQ(graph.transitiveReduce(), 0u);
    EXPECT_EQ(graph.arcCount(), 2u);
}

TEST(SyncGraphTest, SelfArcRejected)
{
    SyncGraph graph;
    graph.addNode();
    EXPECT_THROW(graph.addArc(0, 0), PanicError);
}

/** Property: reduction preserves the reachability relation. */
class SyncGraphPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SyncGraphPropertyTest, ReductionPreservesReachability)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 77);
    SyncGraph graph;
    const int n = 10;
    for (int i = 0; i < n; ++i)
        graph.addNode();
    // Random DAG: arcs only forward.
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            if (rng.nextBool(0.3))
                graph.addArc(i, j);
        }
    }
    bool before[10][10];
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            before[i][j] = graph.reachable(i, j);
    graph.transitiveReduce();
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            EXPECT_EQ(graph.reachable(i, j), before[i][j])
                << i << "->" << j;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncGraphPropertyTest,
                         ::testing::Range(1, 13));

} // namespace
