/**
 * @file
 * Tests for the 12 synthetic applications: buildability, structural
 * expectations (indirection, analyzability ranges mirroring Table 1's
 * ordering, operator mixes mirroring Table 3), and determinism.
 */

#include <gtest/gtest.h>

#include "ir/dependence.h"
#include "support/error.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;
using namespace ndp::workloads;

double
appAnalyzability(const Workload &w)
{
    double weighted = 0.0;
    std::int64_t weight = 0;
    for (const ir::LoopNest &nest : w.nests) {
        const std::int64_t instances =
            nest.iterationCount() *
            static_cast<std::int64_t>(nest.body().size());
        weighted +=
            ir::analyzableFraction(nest) * static_cast<double>(instances);
        weight += instances;
    }
    return weighted / static_cast<double>(weight);
}

TEST(WorkloadFactoryTest, ListsTwelveApps)
{
    const auto &names = WorkloadFactory::appNames();
    EXPECT_EQ(names.size(), 12u);
    EXPECT_EQ(names.front(), "barnes");
    EXPECT_EQ(names.back(), "minixyce");
}

TEST(WorkloadFactoryTest, UnknownAppRejected)
{
    WorkloadFactory factory(1024);
    EXPECT_THROW(factory.build("spec2006"), FatalError);
}

TEST(WorkloadFactoryTest, ScaleTooSmallRejected)
{
    EXPECT_THROW(WorkloadFactory(16), FatalError);
}

/** Every app must build and be structurally sound. */
class WorkloadBuildTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadBuildTest, BuildsWithSoundStructure)
{
    WorkloadFactory factory(1024);
    const Workload w = factory.build(GetParam());
    EXPECT_EQ(w.name, GetParam());
    EXPECT_FALSE(w.nests.empty());
    EXPECT_GT(w.statementInstances(), 0);
    EXPECT_FALSE(w.mcdramArrays.empty());
    for (const ir::ArrayId id : w.mcdramArrays) {
        EXPECT_GE(id, 0);
        EXPECT_LT(static_cast<std::size_t>(id), w.arrays.size());
    }
    for (const ir::LoopNest &nest : w.nests) {
        EXPECT_GT(nest.iterationCount(), 0);
        EXPECT_FALSE(nest.body().empty());
        EXPECT_GE(nest.timingTrips, nest.inspectorTrips);
        // Index data must be installed for every indirect subscript.
        for (const ir::Statement &stmt : nest.body()) {
            for (const ir::ArrayRef *ref : stmt.reads()) {
                for (const ir::Subscript &sub : ref->subscripts) {
                    if (sub.isIndirect()) {
                        EXPECT_TRUE(w.arrays.hasIndexData(sub.indirect))
                            << "no index data in " << nest.name();
                    }
                }
            }
            for (const ir::Subscript &sub : stmt.lhs().subscripts) {
                if (sub.isIndirect()) {
                    EXPECT_TRUE(w.arrays.hasIndexData(sub.indirect));
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, WorkloadBuildTest,
    ::testing::ValuesIn(WorkloadFactory::appNames()));

TEST(WorkloadTest, AnalyzabilityOrderingMatchesTable1)
{
    // Table 1: Cholesky is the most analyzable, Barnes the least.
    WorkloadFactory factory(1024);
    const double barnes = appAnalyzability(factory.build("barnes"));
    const double cholesky = appAnalyzability(factory.build("cholesky"));
    const double minimd = appAnalyzability(factory.build("minimd"));
    EXPECT_LT(barnes, cholesky);
    EXPECT_LT(minimd, cholesky);
    EXPECT_GT(barnes, 0.4); // still mostly analyzable
    EXPECT_DOUBLE_EQ(cholesky, 1.0);
}

TEST(WorkloadTest, RadixUsesShiftAndLogicalOps)
{
    // Table 3: radix has the largest "others" share.
    WorkloadFactory factory(1024);
    const Workload radix = factory.build("radix");
    std::int64_t counts[3] = {0, 0, 0};
    for (const ir::LoopNest &nest : radix.nests) {
        for (const ir::Statement &stmt : nest.body())
            stmt.countOps(counts);
    }
    EXPECT_GT(counts[static_cast<int>(ir::OpCategory::Other)], 0);
}

TEST(WorkloadTest, DenseAppsUseEightByteElements)
{
    WorkloadFactory factory(1024);
    const Workload lu = factory.build("lu");
    const ir::ArrayId a = lu.arrays.find("A");
    ASSERT_NE(a, ir::kInvalidArray);
    EXPECT_EQ(lu.arrays.info(a).elementSize, 8u);
    const Workload barnes = factory.build("barnes");
    const ir::ArrayId px = barnes.arrays.find("PX");
    EXPECT_EQ(barnes.arrays.info(px).elementSize, 64u);
}

TEST(WorkloadTest, DeterministicAcrossBuilds)
{
    WorkloadFactory f1(1024, 7), f2(1024, 7);
    const Workload a = f1.build("minimd");
    const Workload b = f2.build("minimd");
    const ir::ArrayId nl_a = a.arrays.find("NL1");
    const ir::ArrayId nl_b = b.arrays.find("NL1");
    for (std::int64_t i = 0; i < 64; ++i)
        EXPECT_EQ(a.arrays.indexValue(nl_a, i),
                  b.arrays.indexValue(nl_b, i));
}

TEST(WorkloadTest, SeedChangesIndexData)
{
    WorkloadFactory f1(1024, 7), f2(1024, 8);
    const Workload a = f1.build("minimd");
    const Workload b = f2.build("minimd");
    int diff = 0;
    const ir::ArrayId nl_a = a.arrays.find("NL1");
    const ir::ArrayId nl_b = b.arrays.find("NL1");
    for (std::int64_t i = 0; i < 256; ++i) {
        if (a.arrays.indexValue(nl_a, i) != b.arrays.indexValue(nl_b, i))
            ++diff;
    }
    EXPECT_GT(diff, 16);
}

TEST(WorkloadTest, GuardedStatementsOnlyWhereExpected)
{
    WorkloadFactory factory(1024);
    const Workload raytrace = factory.build("raytrace");
    bool has_guard = false;
    for (const ir::LoopNest &nest : raytrace.nests) {
        for (const ir::Statement &stmt : nest.body())
            has_guard = has_guard || stmt.hasGuard();
    }
    EXPECT_TRUE(has_guard);
}

TEST(WorkloadTest, InspectorAppsDeclareTimingLoops)
{
    WorkloadFactory factory(1024);
    for (const std::string &app :
         {std::string("barnes"), std::string("fmm"),
          std::string("minimd")}) {
        const Workload w = factory.build(app);
        bool has_inspector = false;
        for (const ir::LoopNest &nest : w.nests)
            has_inspector = has_inspector || nest.inspectorTrips > 0;
        EXPECT_TRUE(has_inspector) << app;
    }
}

} // namespace
