/**
 * @file
 * support::ThreadPool unit tests: submission-order result collection,
 * exception propagation through futures, queue draining on
 * destruction, and the NDP_BENCH_THREADS knob parsing in
 * driver::SweepRunner::defaultThreads().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "driver/sweep.h"
#include "support/thread_pool.h"

namespace {

using namespace ndp;

TEST(ThreadPoolTest, ResultsCollectInSubmissionOrder)
{
    for (std::size_t threads : {1u, 2u, 8u}) {
        support::ThreadPool pool(threads);
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 200; ++i)
            futures.push_back(pool.submit([i]() { return i * i; }));
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
                      i * i)
                << "threads=" << threads;
    }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne)
{
    support::ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    EXPECT_EQ(pool.submit([]() { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    support::ThreadPool pool(2);
    auto ok = pool.submit([]() { return 1; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    // Submit far more tasks than workers and destroy the pool without
    // collecting: every task must still run exactly once.
    std::atomic<int> ran{0};
    {
        support::ThreadPool pool(4);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran]() {
                ran.fetch_add(1, std::memory_order_relaxed);
                return 0;
            });
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, MoveOnlyResultsWork)
{
    support::ThreadPool pool(2);
    auto future = pool.submit([]() {
        auto p = std::make_unique<int>(7);
        return p;
    });
    EXPECT_EQ(*future.get(), 7);
}

TEST(SweepRunnerTest, DefaultThreadsHonorsEnvKnob)
{
    ::setenv("NDP_BENCH_THREADS", "3", 1);
    EXPECT_EQ(driver::SweepRunner::defaultThreads(), 3);
    EXPECT_EQ(driver::SweepRunner(0).threads(), 3);
    // Explicit constructor argument beats the env knob.
    EXPECT_EQ(driver::SweepRunner(5).threads(), 5);

    // Garbage and non-positive values fall back to the hardware.
    ::setenv("NDP_BENCH_THREADS", "0", 1);
    EXPECT_GE(driver::SweepRunner::defaultThreads(), 1);
    ::setenv("NDP_BENCH_THREADS", "banana", 1);
    EXPECT_GE(driver::SweepRunner::defaultThreads(), 1);
    ::unsetenv("NDP_BENCH_THREADS");
    EXPECT_GE(driver::SweepRunner::defaultThreads(), 1);
}

TEST(SweepRunnerTest, MapOrderedReturnsIndexedResults)
{
    driver::SweepRunner runner(4);
    const std::vector<int> out = runner.mapOrdered<int>(
        50, [](std::size_t i, support::ThreadPool &) {
            return static_cast<int>(i) * 3;
        });
    ASSERT_EQ(out.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
    EXPECT_EQ(runner.stats().cells, 50u);
    EXPECT_EQ(runner.stats().threads, 4);
}

TEST(ThreadPoolTest, NestedSubmissionWithHelpingWaitCompletes)
{
    // A task that submits sub-tasks to its own pool and waits for them
    // must complete even on a single-worker pool: waitHelping drains
    // the queue on the waiting thread instead of blocking. This is the
    // deadlock-freedom contract behind sharing one pool between the
    // sweep level and the nest level.
    for (std::size_t threads : {1u, 2u, 4u}) {
        support::ThreadPool pool(threads);
        auto outer = pool.submit([&pool]() {
            std::vector<std::future<int>> inner;
            for (int i = 0; i < 16; ++i)
                inner.push_back(pool.submit([i]() { return i + 1; }));
            int sum = 0;
            for (std::future<int> &f : inner) {
                pool.waitHelping(f);
                sum += f.get();
            }
            return sum;
        });
        pool.waitHelping(outer);
        EXPECT_EQ(outer.get(), 136) << "threads=" << threads;
    }
}

TEST(ThreadPoolTest, WaitHelpingSurvivesThrowingTasks)
{
    // A task that throws while executed *by the helping waiter* must
    // not unwind through waitHelping (packaged_task captures the
    // exception into the future), must not deadlock the waiter, and
    // must not lose any task queued behind it.
    for (std::size_t threads : {1u, 4u}) {
        support::ThreadPool pool(threads);
        std::atomic<int> survivors{0};
        auto outer = pool.submit([&pool, &survivors]() {
            auto bad = pool.submit([]() -> int {
                throw std::runtime_error("inner task failed");
            });
            std::vector<std::future<int>> rest;
            for (int i = 0; i < 32; ++i)
                rest.push_back(pool.submit([&survivors, i]() {
                    survivors.fetch_add(1,
                                        std::memory_order_relaxed);
                    return i;
                }));
            pool.waitHelping(bad); // must return, not throw
            int sum = 0;
            for (std::future<int> &f : rest) {
                pool.waitHelping(f);
                sum += f.get();
            }
            EXPECT_THROW(bad.get(), std::runtime_error);
            return sum;
        });
        pool.waitHelping(outer);
        EXPECT_EQ(outer.get(), 496) << "threads=" << threads;
        EXPECT_EQ(survivors.load(), 32) << "threads=" << threads;
    }
}

TEST(ThreadPoolTest, ExceptionInsideHelpingTaskReachesCollector)
{
    // The nested rethrow path: an outer task helping-waits on a
    // throwing inner task and propagates via inner.get(); the
    // exception must surface from the *outer* future on the collector
    // thread, and tasks queued behind the outer one must still run.
    support::ThreadPool pool(1);
    auto outer = pool.submit([&pool]() {
        auto inner = pool.submit(
            []() -> int { throw std::logic_error("boom"); });
        pool.waitHelping(inner);
        return inner.get(); // rethrows the inner exception
    });
    auto after = pool.submit([]() { return 5; });
    pool.waitHelping(outer);
    EXPECT_THROW(outer.get(), std::logic_error);
    EXPECT_EQ(after.get(), 5); // queued task was not lost
}

TEST(ThreadPoolTest, TryRunOneReportsQueueState)
{
    support::ThreadPool pool(1);
    // Occupy the single worker so a queued probe task stays queued.
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    std::atomic<bool> started{false};
    auto blocker = pool.submit([gate, &started]() {
        started.store(true, std::memory_order_release);
        gate.wait();
        return 0;
    });
    // Wait until the blocker occupies the worker: if it were still
    // queued, waitHelping below could steal it onto this thread and
    // block on the gate we only release afterwards.
    while (!started.load(std::memory_order_acquire))
        std::this_thread::yield();
    auto probe = pool.submit([]() { return 7; });
    // The main thread can steal and run the queued probe itself.
    pool.waitHelping(probe);
    EXPECT_EQ(probe.get(), 7);
    EXPECT_FALSE(pool.tryRunOne()); // nothing left queued
    release.set_value();
    EXPECT_EQ(blocker.get(), 0);
}

} // namespace
