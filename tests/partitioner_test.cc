/**
 * @file
 * Integration tests for the full partitioner (Algorithm 1): plan
 * structure, dependence safety, window behaviour, fallback handling
 * of unanalyzable statements, determinism, and the paper's worked
 * multi-statement scenarios.
 */

#include <gtest/gtest.h>

#include <set>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "support/error.h"

namespace {

using namespace ndp;
using namespace ndp::partition;

class PartitionerTest : public ::testing::Test
{
  protected:
    PartitionerTest()
        : system(config)
    {
    }

    /** Parse a nest and produce a default assignment for it. */
    ir::LoopNest
    parse(const std::string &src, const ir::ParamMap &params = {})
    {
        return ir::parseKernel(src, "test", arrays, params);
    }

    std::vector<noc::NodeId>
    defaults(const ir::LoopNest &nest)
    {
        baseline::DefaultPlacement placement(system, arrays);
        return placement.assignIterations(nest);
    }

    /** Checks every structural invariant a plan must satisfy. */
    void
    checkPlanInvariants(const sim::ExecutionPlan &plan,
                        const ir::LoopNest &nest)
    {
        const auto stmt_count =
            static_cast<std::int64_t>(nest.body().size());
        const std::int64_t expected_instances =
            nest.iterationCount() * stmt_count;
        EXPECT_EQ(static_cast<std::int64_t>(plan.instances.size()),
                  expected_instances);

        std::set<std::pair<std::int64_t, std::int32_t>> with_write;
        for (std::size_t t = 0; t < plan.tasks.size(); ++t) {
            const sim::Task &task = plan.tasks[t];
            EXPECT_EQ(task.id, static_cast<sim::TaskId>(t));
            EXPECT_GE(task.node, 0);
            EXPECT_LT(task.node, system.mesh().nodeCount());
            for (sim::TaskId dep : task.deps) {
                EXPECT_GE(dep, 0);
                EXPECT_LT(dep, task.id) << "dep must precede task";
            }
            if (task.write) {
                with_write.emplace(task.iterationNumber,
                                   task.statementIndex);
            }
        }
        // Every statement instance stores its result exactly once.
        EXPECT_EQ(static_cast<std::int64_t>(with_write.size()),
                  expected_instances);
    }

    sim::ManycoreConfig config;
    sim::ManycoreSystem system;
    ir::ArrayTable arrays;
};

TEST_F(PartitionerTest, PlanCoversAllInstances)
{
    ir::LoopNest nest = parse(R"(
        array A[256] bytes 64; array B[256] bytes 64;
        array C[256] bytes 64; array D[256] bytes 64;
        array E[256] bytes 64;
        for i = 0..256 {
          S1: A[i] = B[i] + C[i] + D[i] + E[i];
          S2: D[i] = C[i] * E[i];
        })");
    Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(nest, defaults(nest));
    checkPlanInvariants(plan, nest);
    EXPECT_GE(plan.tasks.size(), plan.instances.size());
}

TEST_F(PartitionerTest, RootTaskWritesAtStoreNode)
{
    ir::LoopNest nest = parse(R"(
        array A[64] bytes 64; array B[64] bytes 64;
        array C[64] bytes 64; array D[64] bytes 64;
        for i = 0..64 { A[i] = B[i] + C[i] + D[i]; })");
    Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(nest, defaults(nest));
    for (const sim::Task &task : plan.tasks) {
        if (task.write && task.isSubcomputation) {
            // A re-mapped writer sits at the output's home node
            // (Section 4.3: the result is stored where it lives).
            EXPECT_EQ(task.node,
                      system.addressMap().homeBankNode(
                          task.write->addr));
        }
    }
}

TEST_F(PartitionerTest, FlowDependenceOrdersTasks)
{
    ir::LoopNest nest = parse(R"(
        array A[64] bytes 64; array B[64] bytes 64;
        array C[64] bytes 64; array G[64] bytes 64;
        for i = 0..64 {
          S1: A[i] = B[i] + C[i];
          S2: G[i] = A[i] + B[i];
        })");
    Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(nest, defaults(nest));
    checkPlanInvariants(plan, nest);

    // For every iteration: the S2 task consuming A[i] must depend
    // (transitively) on S1's writer of A[i].
    std::vector<sim::TaskId> writer_of_s1(64, sim::kInvalidTask);
    for (const sim::Task &task : plan.tasks) {
        if (task.statementIndex == 0 && task.write)
            writer_of_s1[static_cast<std::size_t>(
                task.iterationNumber)] = task.id;
    }
    // Transitive reachability over deps.
    auto reaches = [&](sim::TaskId from, sim::TaskId to) {
        std::vector<sim::TaskId> stack{to};
        std::set<sim::TaskId> seen;
        while (!stack.empty()) {
            const sim::TaskId cur = stack.back();
            stack.pop_back();
            if (cur == from)
                return true;
            for (sim::TaskId d :
                 plan.tasks[static_cast<std::size_t>(cur)].deps) {
                if (seen.insert(d).second)
                    stack.push_back(d);
            }
        }
        return false;
    };
    int checked = 0;
    for (const sim::Task &task : plan.tasks) {
        if (task.statementIndex == 1 && task.write) {
            const sim::TaskId writer = writer_of_s1[
                static_cast<std::size_t>(task.iterationNumber)];
            ASSERT_NE(writer, sim::kInvalidTask);
            EXPECT_TRUE(reaches(writer, task.id))
                << "S2 iteration " << task.iterationNumber
                << " does not wait for S1's store";
            ++checked;
        }
    }
    EXPECT_EQ(checked, 64);
}

TEST_F(PartitionerTest, UnanalyzableStatementsStayOnDefaultNodes)
{
    ir::LoopNest nest = parse(R"(
        array X[64] bytes 64; array Y[64] bytes 64;
        array Z[64] bytes 64;
        for i = 0..64 { Z[i] = X[Y[i]] + Z[i]; })");
    // No inspector: the indirect statement cannot be split.
    std::vector<std::int64_t> idx(64);
    for (int i = 0; i < 64; ++i)
        idx[static_cast<std::size_t>(i)] = (i * 7) % 64;
    arrays.setIndexData(arrays.find("Y"), idx);

    const auto nodes = defaults(nest);
    Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(nest, nodes);
    checkPlanInvariants(plan, nest);
    EXPECT_EQ(partitioner.report().statementsSplit, 0);
    for (const sim::Task &task : plan.tasks) {
        EXPECT_EQ(task.node,
                  nodes[static_cast<std::size_t>(task.iterationNumber)]);
        EXPECT_FALSE(task.isSubcomputation);
    }
}

TEST_F(PartitionerTest, InspectorEnablesSplittingIndirectStatements)
{
    ir::LoopNest nest = parse(R"(
        array X[64] bytes 64; array Y[64] bytes 64;
        array Z[64] bytes 64; array W[64] bytes 64;
        array V[64] bytes 64;
        for i = 0..64 { Z[i] = X[Y[i]] + W[i] + V[i] + Z[i]; })");
    nest.timingTrips = 4;
    nest.inspectorTrips = 1;
    std::vector<std::int64_t> idx(64);
    for (int i = 0; i < 64; ++i)
        idx[static_cast<std::size_t>(i)] = (i * 13) % 64;
    arrays.setIndexData(arrays.find("Y"), idx);

    Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(nest, defaults(nest));
    checkPlanInvariants(plan, nest);
    EXPECT_GT(partitioner.report().statementsSplit, 0);
}

TEST_F(PartitionerTest, OracleSplitsWithoutInspector)
{
    ir::LoopNest nest = parse(R"(
        array X[64] bytes 64; array Y[64] bytes 64;
        array Z[64] bytes 64; array W[64] bytes 64;
        array V[64] bytes 64;
        for i = 0..64 { Z[i] = X[Y[i]] + W[i] + V[i] + Z[i]; })");
    std::vector<std::int64_t> idx(64);
    for (int i = 0; i < 64; ++i)
        idx[static_cast<std::size_t>(i)] = (i * 13) % 64;
    arrays.setIndexData(arrays.find("Y"), idx);

    PartitionOptions options;
    options.oracle = true;
    Partitioner partitioner(system, arrays, options);
    const auto plan = partitioner.plan(nest, defaults(nest));
    EXPECT_GT(partitioner.report().statementsSplit, 0);
}

TEST_F(PartitionerTest, FixedWindowSizeIsRespected)
{
    ir::LoopNest nest = parse(R"(
        array A[128] bytes 64; array B[128] bytes 64;
        array C[128] bytes 64;
        for i = 0..128 { A[i] = B[i] + C[i]; })");
    const auto nodes = defaults(nest);
    for (std::int32_t w : {1, 3, 8}) {
        PartitionOptions options;
        options.fixedWindowSize = w;
        Partitioner partitioner(system, arrays, options);
        const auto plan = partitioner.plan(nest, nodes);
        EXPECT_EQ(plan.windowSize, w);
        EXPECT_EQ(partitioner.report().chosenWindowSize, w);
        EXPECT_EQ(partitioner.report().movementPerWindowSize.size(),
                  1u);
    }
}

TEST_F(PartitionerTest, AdaptiveWindowPicksMinimumMovement)
{
    ir::LoopNest nest = parse(R"(
        array A[128] bytes 64; array B[128] bytes 64;
        array C[128] bytes 64; array X[128] bytes 64;
        array Y[128] bytes 64;
        for i = 0..128 {
          S1: A[i] = B[i] + C[i];
          S2: X[i] = Y[i] + C[i];
        })");
    Partitioner partitioner(system, arrays);
    (void)partitioner.plan(nest, defaults(nest));
    const auto &report = partitioner.report();
    ASSERT_EQ(report.movementPerWindowSize.size(), 8u);
    const std::int64_t chosen = report.movementPerWindowSize
        [static_cast<std::size_t>(report.chosenWindowSize - 1)];
    for (std::int64_t movement : report.movementPerWindowSize)
        EXPECT_LE(chosen, movement);
    EXPECT_EQ(report.plannedMovement, chosen);
}

TEST_F(PartitionerTest, ReuseAwareNeverMovesMoreThanReuseAgnostic)
{
    ir::LoopNest nest = parse(R"(
        array A[128] bytes 64; array B[128] bytes 64;
        array C[128] bytes 64; array X[128] bytes 64;
        array Y[128] bytes 64;
        for i = 0..128 {
          S1: A[i] = B[i] + C[i] + Y[i];
          S2: X[i] = Y[i] + C[i] + B[i];
        })");
    const auto nodes = defaults(nest);
    PartitionOptions aware;
    Partitioner with_reuse(system, arrays, aware);
    (void)with_reuse.plan(nest, nodes);

    PartitionOptions agnostic;
    agnostic.exploitReuse = false;
    Partitioner without_reuse(system, arrays, agnostic);
    (void)without_reuse.plan(nest, nodes);

    EXPECT_LE(with_reuse.report().plannedMovement,
              without_reuse.report().plannedMovement);
}

TEST_F(PartitionerTest, DeterministicPlans)
{
    ir::LoopNest nest = parse(R"(
        array A[64] bytes 64; array B[64] bytes 64;
        array C[64] bytes 64; array D[64] bytes 64;
        for i = 0..64 { A[i] = B[i] + C[i] + D[i]; })");
    const auto nodes = defaults(nest);
    Partitioner p1(system, arrays);
    Partitioner p2(system, arrays);
    const auto plan1 = p1.plan(nest, nodes);
    const auto plan2 = p2.plan(nest, nodes);
    ASSERT_EQ(plan1.tasks.size(), plan2.tasks.size());
    for (std::size_t t = 0; t < plan1.tasks.size(); ++t) {
        EXPECT_EQ(plan1.tasks[t].node, plan2.tasks[t].node);
        EXPECT_EQ(plan1.tasks[t].deps, plan2.tasks[t].deps);
    }
}

TEST_F(PartitionerTest, GuardReadsAttachToRootTask)
{
    ir::LoopNest nest = parse(R"(
        array A[64] bytes 64; array B[64] bytes 64;
        array C[64] bytes 64; array D[64] bytes 64;
        array H[64] bytes 64;
        for i = 0..64 { S1: if (H[i]) A[i] = B[i] + C[i] + D[i]; })");
    Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(nest, defaults(nest));
    // Wherever S1 was split, the guard operand H[i] is read by the
    // task that also stores (the duplicated conditional evaluates with
    // the final merge).
    const ir::ArrayId h = arrays.find("H");
    for (const sim::Task &task : plan.tasks) {
        bool reads_h = false;
        for (const sim::MemAccess &read : task.reads)
            reads_h = reads_h || read.array == h;
        if (reads_h && task.isSubcomputation) {
            EXPECT_TRUE(task.write.has_value());
        }
    }
    checkPlanInvariants(plan, nest);
}

TEST_F(PartitionerTest, RejectsMismatchedAssignment)
{
    ir::LoopNest nest = parse(R"(
        array A[16]; array B[16];
        for i = 0..16 { A[i] = B[i]; })");
    Partitioner partitioner(system, arrays);
    std::vector<noc::NodeId> wrong_size(3, 0);
    EXPECT_THROW(partitioner.plan(nest, wrong_size), FatalError);
}

TEST_F(PartitionerTest, MovementReductionReportedAgainstDefault)
{
    ir::LoopNest nest = parse(R"(
        array A[256] bytes 64; array B[256] bytes 64;
        array C[256] bytes 64; array D[256] bytes 64;
        array E[256] bytes 64;
        for i = 0..256 { A[i] = B[i] + C[i] + D[i] + E[i]; })");
    Partitioner partitioner(system, arrays);
    (void)partitioner.plan(nest, defaults(nest));
    const auto &report = partitioner.report();
    EXPECT_GT(report.defaultMovement, 0);
    EXPECT_LE(report.plannedMovement, report.defaultMovement);
    EXPECT_GT(report.movementReductionPct.mean(), 0.0);
}

} // namespace
