/**
 * @file
 * End-to-end integration tests: the full pipeline (workload -> default
 * placement -> partitioner -> simulation -> metrics) under the
 * configurations every bench uses. These are the "headline shape"
 * checks of EXPERIMENTS.md in executable form, at a reduced scale.
 */

#include <gtest/gtest.h>

#include "ndp/ndp.h" // umbrella header must stay self-contained
#include "driver/experiment.h"
#include "partition/codegen.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;
using namespace ndp::driver;

workloads::Workload
smallApp(const std::string &name)
{
    workloads::WorkloadFactory factory(512);
    return factory.build(name);
}

TEST(DriverTest, RunAppProducesConsistentMetrics)
{
    ExperimentRunner runner;
    const AppResult result = runner.runApp(smallApp("water"));
    EXPECT_EQ(result.app, "water");
    EXPECT_FALSE(result.nests.empty());
    EXPECT_GT(result.defaultMakespan, 0);
    EXPECT_GT(result.optimizedMakespan, 0);
    EXPECT_GT(result.defaultEnergy, 0.0);
    EXPECT_GE(result.analyzableFraction, 0.0);
    EXPECT_LE(result.analyzableFraction, 1.0);
    EXPECT_GE(result.predictorAccuracy, 0.0);
    EXPECT_LE(result.predictorAccuracy, 1.0);
    EXPECT_GT(result.movementReductionPct.count(), 0u);
}

TEST(DriverTest, PlanSelectionNeverShipsASlowdown)
{
    // With profile-guided plan selection every nest's optimized run is
    // at most the default's makespan, so the app-level reduction is
    // non-negative.
    for (const std::string &app :
         {std::string("lu"), std::string("cholesky"),
          std::string("water")}) {
        ExperimentRunner runner;
        const AppResult result = runner.runApp(smallApp(app));
        EXPECT_GE(result.execTimeReductionPct(), 0.0) << app;
        for (const NestResult &nr : result.nests) {
            EXPECT_LE(nr.optimizedRun.makespanCycles,
                      nr.defaultRun.makespanCycles)
                << app << "/" << nr.nest;
        }
    }
}

TEST(DriverTest, RawPartitionerOutputCanBeReported)
{
    ExperimentConfig config;
    config.planSelection = false;
    ExperimentRunner runner(config);
    const AppResult result = runner.runApp(smallApp("water"));
    EXPECT_GT(result.defaultMakespan, 0);
}

TEST(DriverTest, IdealNetworkBeatsOrMatchesOurs)
{
    const workloads::Workload app = smallApp("fmm");
    ExperimentRunner ours;
    ExperimentConfig ideal_cfg;
    ideal_cfg.optimizeComputation = false;
    ideal_cfg.idealNetwork = true;
    ExperimentRunner ideal(ideal_cfg);
    const double ours_pct = ours.runApp(app).execTimeReductionPct();
    const double ideal_pct = ideal.runApp(app).execTimeReductionPct();
    EXPECT_GT(ideal_pct, 0.0);
    // The zero-latency network is the upper bound on what movement
    // reduction alone can buy.
    EXPECT_LE(ours_pct, ideal_pct + 5.0);
}

TEST(DriverTest, DeterministicResults)
{
    const workloads::Workload app = smallApp("radiosity");
    ExperimentRunner runner;
    const AppResult a = runner.runApp(app);
    const AppResult b = runner.runApp(app);
    EXPECT_EQ(a.defaultMakespan, b.defaultMakespan);
    EXPECT_EQ(a.optimizedMakespan, b.optimizedMakespan);
    EXPECT_DOUBLE_EQ(a.movementReductionPct.mean(),
                     b.movementReductionPct.mean());
}

TEST(DriverTest, MetricIsolationOrdersContributions)
{
    ExperimentRunner runner;
    const IsolationResult iso =
        runner.runMetricIsolation(smallApp("water"));
    EXPECT_EQ(iso.app, "water");
    // The full approach must beat each single-metric variant's noise
    // floor, and S2 (movement) should carry most of the gain (the
    // paper's headline observation for Figure 18).
    EXPECT_GT(iso.fullApproach, 0.0);
    EXPECT_GT(iso.s2DataMovement, iso.s4Synchronization);
}

TEST(DriverTest, DataToMcRemapRuns)
{
    ExperimentConfig config;
    config.optimizeComputation = false;
    config.dataToMcRemap = true;
    config.planSelection = false;
    ExperimentRunner runner(config);
    const AppResult result = runner.runApp(smallApp("ocean"));
    EXPECT_GT(result.defaultMakespan, 0);
    EXPECT_GT(result.optimizedMakespan, 0);
}

TEST(DriverTest, ClusterAndMemoryModesAllRun)
{
    const workloads::Workload app = smallApp("fft");
    for (const mem::ClusterMode cluster :
         {mem::ClusterMode::AllToAll, mem::ClusterMode::Quadrant,
          mem::ClusterMode::SNC4}) {
        for (const mem::MemoryMode memory :
             {mem::MemoryMode::Flat, mem::MemoryMode::Cache,
              mem::MemoryMode::Hybrid}) {
            ExperimentConfig config;
            config.machine.clusterMode = cluster;
            config.machine.memoryMode = memory;
            ExperimentRunner runner(config);
            const AppResult result = runner.runApp(app);
            EXPECT_GT(result.defaultMakespan, 0)
                << toString(cluster) << "/" << toString(memory);
            EXPECT_GE(result.execTimeReductionPct(), 0.0);
        }
    }
}

TEST(DriverTest, OracleAtLeastMatchesPredictorBasedPlans)
{
    const workloads::Workload app = smallApp("radix");
    ExperimentRunner ours;
    ExperimentConfig oracle_cfg;
    oracle_cfg.partition.oracle = true;
    ExperimentRunner oracle(oracle_cfg);
    EXPECT_GE(oracle.runApp(app).execTimeReductionPct() + 1.0,
              ours.runApp(app).execTimeReductionPct());
}

TEST(DriverTest, GeomeanPctFloorsNegatives)
{
    EXPECT_GT(geomeanPct({10.0, 20.0}), 10.0);
    EXPECT_GT(geomeanPct({-5.0, 20.0}), 0.0); // clamped, not NaN
}

TEST(DriverTest, PseudoCodeGenerationOnRealPlan)
{
    // Wire codegen through a real optimized plan.
    const workloads::Workload app = smallApp("water");
    sim::ManycoreSystem system({});
    system.setMcdramArrays(app.mcdramArrays);
    sim::ExecutionEngine engine(system);
    baseline::DefaultPlacement placement(system, app.arrays);
    const ir::LoopNest &nest = app.nests.front();
    const auto nodes = placement.assignIterations(nest);
    (void)engine.run(placement.buildPlan(nest, nodes));
    partition::Partitioner partitioner(system, app.arrays);
    const auto plan = partitioner.plan(nest, nodes);
    const std::string code =
        partition::generatePseudoCode(plan, nest, app.arrays, 0, 1);
    EXPECT_NE(code.find("node "), std::string::npos);
    EXPECT_NE(code.find("="), std::string::npos);
}

} // namespace
