/**
 * @file
 * Fault-subsystem unit tests: FaultModel construction/injection
 * determinism and signatures, MeshTopology fault-aware routing,
 * liveness and bank re-homing, connectivity validation, LoadBalancer
 * dead-node exclusion, and the SplitPlanCache fault epoch.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault_model.h"
#include "noc/mesh_topology.h"
#include "partition/load_balancer.h"
#include "partition/split_plan_cache.h"
#include "support/error.h"

namespace {

using namespace ndp;
using fault::FaultModel;
using fault::FaultSpec;
using noc::MeshTopology;
using noc::NodeId;

// ------------------------------------------------------- FaultModel

TEST(FaultModelTest, DefaultModelIsHealthy)
{
    const FaultModel model;
    EXPECT_TRUE(model.empty());
    EXPECT_EQ(model.signature(), 0u);
    EXPECT_TRUE(model.deadNodes().empty());
    EXPECT_TRUE(model.degradedNodes().empty());
    EXPECT_TRUE(model.failedLinks().empty());
    EXPECT_FALSE(model.isDead(0));
    EXPECT_FALSE(model.isDegraded(0));
    EXPECT_FALSE(model.isLinkFailed(0, 1));
}

TEST(FaultModelTest, ExplicitFaultsAreQueryable)
{
    FaultModel model;
    model.killNode(5);
    model.degradeNode(7);
    model.failLink(1, 2);

    EXPECT_FALSE(model.empty());
    EXPECT_TRUE(model.isDead(5));
    EXPECT_FALSE(model.isDead(7));
    EXPECT_TRUE(model.isDegraded(7));
    EXPECT_TRUE(model.isLinkFailed(1, 2));
    // Links fail per direction: the reverse survives.
    EXPECT_FALSE(model.isLinkFailed(2, 1));
    EXPECT_EQ(model.deadNodes(), std::vector<NodeId>{5});
    EXPECT_EQ(model.degradedNodes(), std::vector<NodeId>{7});
    EXPECT_EQ(model.describe(), "1 dead, 1 degraded, 1 links failed");
}

TEST(FaultModelTest, DeadAndDegradedAreMutuallyExclusive)
{
    FaultModel model;
    model.degradeNode(3);
    EXPECT_THROW(model.killNode(3), FatalError);
    FaultModel other;
    other.killNode(3);
    EXPECT_THROW(other.degradeNode(3), FatalError);
}

TEST(FaultModelTest, DegradeFactorMustBeAtLeastOne)
{
    FaultModel model;
    model.setDegradeFactor(3.5);
    EXPECT_DOUBLE_EQ(model.degradeFactor(), 3.5);
    EXPECT_THROW(model.setDegradeFactor(0.5), FatalError);
}

TEST(FaultModelTest, InjectionIsDeterministic)
{
    FaultSpec spec;
    spec.nodeFaultRate = 0.2;
    spec.linkFaultRate = 0.1;
    spec.degradedFraction = 0.5;
    spec.seed = 0xabcdef;

    const FaultModel a = FaultModel::inject(8, 8, false, spec);
    const FaultModel b = FaultModel::inject(8, 8, false, spec);
    EXPECT_EQ(a.deadNodes(), b.deadNodes());
    EXPECT_EQ(a.degradedNodes(), b.degradedNodes());
    EXPECT_EQ(a.failedLinks(), b.failedLinks());
    EXPECT_EQ(a.signature(), b.signature());
    // At these rates on 64 nodes an empty draw would be astonishing.
    EXPECT_FALSE(a.empty());
}

TEST(FaultModelTest, DifferentSeedsDrawDifferentFaultSets)
{
    FaultSpec spec;
    spec.nodeFaultRate = 0.2;
    spec.linkFaultRate = 0.1;
    spec.seed = 1;
    const FaultModel a = FaultModel::inject(8, 8, false, spec);
    spec.seed = 2;
    const FaultModel b = FaultModel::inject(8, 8, false, spec);
    EXPECT_NE(a.signature(), b.signature());
}

TEST(FaultModelTest, InjectionNeverSelectsCornerNodes)
{
    FaultSpec spec;
    spec.nodeFaultRate = 0.95;
    spec.linkFaultRate = 0.0;
    spec.degradedFraction = 0.5;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        spec.seed = seed;
        const FaultModel model = FaultModel::inject(4, 4, false, spec);
        for (NodeId corner : {0, 3, 12, 15}) {
            EXPECT_FALSE(model.isDead(corner)) << "seed " << seed;
            EXPECT_FALSE(model.isDegraded(corner)) << "seed " << seed;
        }
    }
}

TEST(FaultModelTest, SignatureIsOrderIndependent)
{
    FaultModel a;
    a.killNode(5);
    a.killNode(9);
    a.failLink(1, 2);
    a.failLink(6, 5);

    FaultModel b;
    b.failLink(6, 5);
    b.killNode(9);
    b.failLink(1, 2);
    b.killNode(5);

    EXPECT_EQ(a.signature(), b.signature());
    EXPECT_NE(a.signature(), 0u);

    // Any component changing must change the signature.
    FaultModel c = a;
    c.killNode(10);
    EXPECT_NE(c.signature(), a.signature());
    FaultModel d = a;
    d.setDegradeFactor(4.0);
    d.degradeNode(10);
    FaultModel e = a;
    e.setDegradeFactor(8.0);
    e.degradeNode(10);
    EXPECT_NE(d.signature(), e.signature());
}

// ------------------------------------------- MeshTopology under faults

TEST(FaultMeshTest, EmptyModelReproducesHealthyMesh)
{
    const MeshTopology healthy(6, 6);
    const MeshTopology faulted(6, 6, false, FaultModel{});
    EXPECT_FALSE(faulted.hasFaults());
    EXPECT_EQ(faulted.liveNodes().size(), 36u);
    for (NodeId a = 0; a < 36; ++a) {
        EXPECT_TRUE(faulted.isLive(a));
        EXPECT_EQ(faulted.rehomeOf(a), a);
        for (NodeId b = 0; b < 36; ++b) {
            EXPECT_EQ(faulted.distance(a, b), healthy.distance(a, b));
            EXPECT_EQ(faulted.distance(a, b),
                      faulted.distanceUncached(a, b));
        }
    }
}

TEST(FaultMeshTest, DeadNodeForcesDetourAndRehomes)
{
    // 4x4 mesh, kill node 5 (coord (1,1)).
    FaultModel model;
    model.killNode(5);
    const MeshTopology mesh(4, 4, false, model);

    EXPECT_TRUE(mesh.hasFaults());
    EXPECT_FALSE(mesh.isLive(5));
    EXPECT_EQ(mesh.liveNodes().size(), 15u);
    EXPECT_EQ(std::count(mesh.liveNodes().begin(),
                         mesh.liveNodes().end(), 5),
              0);

    // 1 -> 9 routed through 5 on the healthy mesh (XY: 1,5,9); the
    // detour costs 2 extra hops either way around.
    EXPECT_EQ(mesh.distanceUncached(1, 9), 2);
    EXPECT_EQ(mesh.distance(1, 9), 4);
    const std::vector<NodeId> path = mesh.routeNodes(1, 9);
    EXPECT_EQ(std::count(path.begin(), path.end(), 5), 0);
    for (NodeId hop : path)
        EXPECT_TRUE(mesh.isLive(hop));

    // The dead bank re-homes to a nearest live node; 5's neighbours
    // 1, 4, 6, 9 are all distance 1, so the lowest id wins.
    EXPECT_EQ(mesh.rehomeOf(5), 1);
    // Live nodes keep their own bank.
    EXPECT_EQ(mesh.rehomeOf(6), 6);
}

TEST(FaultMeshTest, FailedLinkIsUnidirectional)
{
    FaultModel model;
    model.failLink(5, 6);
    const MeshTopology mesh(4, 4, false, model);

    // Forward direction detours (shortest surviving path is 3 hops),
    // the reverse link still exists.
    EXPECT_EQ(mesh.distance(5, 6), 3);
    EXPECT_EQ(mesh.distance(6, 5), 1);
    const std::vector<NodeId> path = mesh.routeNodes(5, 6);
    EXPECT_EQ(static_cast<std::int32_t>(path.size()) - 1,
              mesh.distance(5, 6));
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_FALSE(model.isLinkFailed(path[i], path[i + 1]));
}

TEST(FaultMeshTest, DeadCornerIsFatal)
{
    FaultModel model;
    model.killNode(0); // (0,0) hosts a memory controller
    EXPECT_THROW(MeshTopology(4, 4, false, model), FatalError);
    EXPECT_FALSE(
        MeshTopology::faultsLeaveMeshConnected(4, 4, false, model));
}

TEST(FaultMeshTest, DisconnectingFaultSetIsFatal)
{
    // 3x3 mesh: killing 1, 3, 5, 7 isolates the centre node 4
    // (corners 0, 2, 6, 8 stay alive).
    FaultModel model;
    model.killNode(1);
    model.killNode(3);
    model.killNode(5);
    model.killNode(7);
    EXPECT_FALSE(
        MeshTopology::faultsLeaveMeshConnected(3, 3, false, model));
    EXPECT_THROW(MeshTopology(3, 3, false, model), FatalError);
}

TEST(FaultMeshTest, ConnectivityPrecheckAcceptsSurvivableSets)
{
    EXPECT_TRUE(
        MeshTopology::faultsLeaveMeshConnected(4, 4, false, {}));
    FaultModel model;
    model.killNode(5);
    model.failLink(2, 6);
    EXPECT_TRUE(
        MeshTopology::faultsLeaveMeshConnected(4, 4, false, model));
}

TEST(FaultMeshTest, OutOfRangeFaultIdsAreRejected)
{
    FaultModel model;
    model.killNode(99);
    EXPECT_FALSE(
        MeshTopology::faultsLeaveMeshConnected(4, 4, false, model));
    EXPECT_THROW(MeshTopology(4, 4, false, model), FatalError);
}

// -------------------------------------------------------- LoadBalancer

TEST(FaultBalancerTest, UnavailableNodesAreNeverAccepted)
{
    partition::LoadBalancer balancer(4);
    EXPECT_TRUE(balancer.isAvailable(2));
    EXPECT_TRUE(balancer.accepts(2, 10));

    balancer.markUnavailable(2);
    EXPECT_FALSE(balancer.isAvailable(2));
    EXPECT_FALSE(balancer.accepts(2, 10));
    // Other nodes are unaffected.
    EXPECT_TRUE(balancer.accepts(1, 10));
    balancer.add(1, 10);
    EXPECT_EQ(balancer.load(1), 10);

    // The marking survives reset() — the node stays dead for the
    // balancer's lifetime.
    balancer.reset();
    EXPECT_EQ(balancer.load(1), 0);
    EXPECT_FALSE(balancer.isAvailable(2));
    EXPECT_FALSE(balancer.accepts(2, 1));
}

// ------------------------------------------------ SplitPlanCache epoch

partition::SplitResult
markerPlan(std::int64_t movement)
{
    partition::SplitResult plan;
    plan.plannedMovement = movement;
    return plan;
}

TEST(FaultCacheEpochTest, ChangingEpochClearsAndSeparatesKeys)
{
    partition::SplitPlanCache cache;
    const std::vector<partition::Location> locs = {
        {3, partition::LocationSource::L2Home}};

    EXPECT_EQ(cache.epoch(), 0u);
    EXPECT_EQ(cache.lookup(0, 5, locs), nullptr);
    cache.insert(markerPlan(11));
    ASSERT_NE(cache.lookup(0, 5, locs), nullptr);

    // Same epoch: no-op, entries survive.
    cache.setEpoch(0);
    EXPECT_EQ(cache.size(), 1u);
    ASSERT_NE(cache.lookup(0, 5, locs), nullptr);

    // New fault epoch: the cache empties and the same logical key
    // misses — a plan computed on the healthy mesh must never replay
    // on a faulted one.
    cache.setEpoch(0xdead'beefull);
    EXPECT_EQ(cache.epoch(), 0xdead'beefull);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(0, 5, locs), nullptr);
    cache.insert(markerPlan(22));
    ASSERT_NE(cache.lookup(0, 5, locs), nullptr);
    EXPECT_EQ(cache.lookup(0, 5, locs)->plannedMovement, 22);

    // Returning to the healthy epoch clears again (no stale replay in
    // either direction).
    cache.setEpoch(0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(0, 5, locs), nullptr);
}

} // namespace
