/**
 * @file
 * driver::FaultCampaign tests: bit-identical reports across thread
 * counts {1, 2, 8}, zero-fault equivalence of the healthy reference
 * with a plain ExperimentRunner, deterministic per-trial seed
 * derivation, bounded-and-counted retry/abandon accounting, and
 * config validation.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/fault_campaign.h"
#include "ir/parser.h"
#include "support/error.h"

namespace {

using namespace ndp;

/** A small two-nest app so campaigns stay cheap. */
workloads::Workload
tinyApp()
{
    workloads::Workload w;
    w.name = "faultcamp";
    w.nests.push_back(ir::parseKernel(
        "array A[64]; array B[64]; array C[64];\n"
        "for i = 0..48 { S1: A[i] = B[i] + C[i]; }",
        "faultcamp/n0", w.arrays));
    w.nests.push_back(ir::parseKernel(
        "array D[64]; array E[64];\n"
        "for i = 0..32 { S1: D[i] = E[i] * A[i] + B[i]; }",
        "faultcamp/n1", w.arrays));
    return w;
}

driver::FaultCampaignConfig
tinyCampaignConfig()
{
    driver::FaultCampaignConfig cfg;
    cfg.nodeFaultRates = {0.05, 0.10};
    cfg.trialsPerRate = 2;
    return cfg;
}

TEST(FaultCampaignTest, ReportIsIdenticalAcrossThreadCounts)
{
    const workloads::Workload app = tinyApp();
    const driver::FaultCampaign campaign(tinyCampaignConfig());

    std::vector<std::string> reports;
    std::vector<driver::FaultCampaignResult> results;
    for (int threads : {1, 2, 8}) {
        driver::SweepRunner runner(threads);
        results.push_back(campaign.run(app, runner));
        std::ostringstream oss;
        results.back().printReport(oss);
        reports.push_back(oss.str());
    }
    EXPECT_EQ(reports[0], reports[1]) << "1 vs 2 threads";
    EXPECT_EQ(reports[0], reports[2]) << "1 vs 8 threads";

    // Not just the formatted report: the underlying numbers agree.
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[0].healthy.defaultMakespan,
                  results[i].healthy.defaultMakespan);
        EXPECT_EQ(results[0].healthy.optimizedMakespan,
                  results[i].healthy.optimizedMakespan);
        EXPECT_EQ(results[0].totalRetries, results[i].totalRetries);
        EXPECT_EQ(results[0].totalAbandoned,
                  results[i].totalAbandoned);
        ASSERT_EQ(results[0].rates.size(), results[i].rates.size());
        for (std::size_t r = 0; r < results[0].rates.size(); ++r) {
            EXPECT_EQ(results[0].rates[r].meanDefaultMakespan,
                      results[i].rates[r].meanDefaultMakespan);
            EXPECT_EQ(results[0].rates[r].meanOptimizedMakespan,
                      results[i].rates[r].meanOptimizedMakespan);
            EXPECT_EQ(results[0].rates[r].meanDefaultMovement,
                      results[i].rates[r].meanDefaultMovement);
            EXPECT_EQ(results[0].rates[r].meanOptimizedMovement,
                      results[i].rates[r].meanOptimizedMovement);
        }
    }
}

TEST(FaultCampaignTest, HealthyReferenceMatchesPlainExperiment)
{
    const workloads::Workload app = tinyApp();
    const driver::FaultCampaignConfig cfg = tinyCampaignConfig();
    const driver::FaultCampaign campaign(cfg);
    driver::SweepRunner runner(2);
    const driver::FaultCampaignResult res = campaign.run(app, runner);

    // The campaign's unit 0 runs the unmodified template config, so
    // it must be bit-identical to running the experiment directly —
    // the zero-fault path is a true no-op.
    const driver::AppResult direct =
        driver::ExperimentRunner(cfg.experiment).runApp(app);
    EXPECT_EQ(res.healthy.defaultMakespan, direct.defaultMakespan);
    EXPECT_EQ(res.healthy.optimizedMakespan,
              direct.optimizedMakespan);
    EXPECT_EQ(res.healthy.defaultL1HitRate, direct.defaultL1HitRate);
    EXPECT_EQ(res.healthy.optimizedL1HitRate,
              direct.optimizedL1HitRate);
    EXPECT_EQ(driver::appMovement(res.healthy, false),
              driver::appMovement(direct, false));
    EXPECT_EQ(driver::appMovement(res.healthy, true),
              driver::appMovement(direct, true));
}

TEST(FaultCampaignTest, TrialSeedsAreAPureFunctionOfIndices)
{
    const driver::FaultCampaign campaign(tinyCampaignConfig());
    EXPECT_EQ(campaign.trialSeed(0, 0, 0), campaign.trialSeed(0, 0, 0));
    EXPECT_NE(campaign.trialSeed(0, 0, 0), campaign.trialSeed(1, 0, 0));
    EXPECT_NE(campaign.trialSeed(0, 0, 0), campaign.trialSeed(0, 1, 0));
    EXPECT_NE(campaign.trialSeed(0, 0, 0), campaign.trialSeed(0, 0, 1));

    // A different base seed shifts the whole family.
    driver::FaultCampaignConfig other = tinyCampaignConfig();
    other.baseSeed = 0x1234;
    const driver::FaultCampaign campaign2(other);
    EXPECT_NE(campaign.trialSeed(0, 0, 0),
              campaign2.trialSeed(0, 0, 0));
}

TEST(FaultCampaignTest, RetriesAreBoundedAndCounted)
{
    // Brutal rates on a small mesh: many draws disconnect the
    // surviving graph, so drawFaultSet must retry (bounded) and
    // abandon (counted) rather than loop or silently drop trials.
    driver::FaultCampaignConfig cfg;
    cfg.experiment.machine.meshCols = 4;
    cfg.experiment.machine.meshRows = 4;
    cfg.nodeFaultRates = {0.55};
    cfg.linkFaultScale = 1.0;
    cfg.trialsPerRate = 8;
    cfg.maxRetriesPerTrial = 2;
    const driver::FaultCampaign campaign(cfg);

    int abandoned_seen = 0;
    for (std::size_t rate_idx = 0; rate_idx < 1; ++rate_idx) {
        for (int t = 0; t < cfg.trialsPerRate; ++t) {
            driver::FaultTrialResult trial;
            fault::FaultModel model;
            campaign.drawFaultSet(rate_idx, t, trial, model);
            EXPECT_LE(trial.retries, cfg.maxRetriesPerTrial + 1);
            if (trial.abandoned) {
                // Exhausted budget: every attempt was counted.
                EXPECT_EQ(trial.retries, cfg.maxRetriesPerTrial + 1);
                EXPECT_TRUE(model.empty());
                ++abandoned_seen;
            } else {
                EXPECT_FALSE(model.empty());
                EXPECT_TRUE(noc::MeshTopology::faultsLeaveMeshConnected(
                    4, 4, false, model));
            }
            // Re-drawing the same trial is deterministic.
            driver::FaultTrialResult again;
            fault::FaultModel model2;
            campaign.drawFaultSet(rate_idx, t, again, model2);
            EXPECT_EQ(trial.retries, again.retries);
            EXPECT_EQ(trial.abandoned, again.abandoned);
            EXPECT_EQ(trial.seed, again.seed);
            EXPECT_EQ(model.signature(), model2.signature());
        }
    }
    // At 55% node faults on a 4x4 mesh with a 2-retry budget, at
    // least one trial must exhaust its budget (deterministic seeds:
    // this is a fixed outcome, not flakiness).
    EXPECT_GT(abandoned_seen, 0);

    // The campaign surfaces the same accounting in its aggregates:
    // abandoned trials stay visible, never silently dropped.
    const workloads::Workload app = tinyApp();
    driver::SweepRunner runner(2);
    const driver::FaultCampaignResult res = campaign.run(app, runner);
    ASSERT_EQ(res.rates.size(), 1u);
    EXPECT_EQ(static_cast<int>(res.rates[0].trials.size()),
              cfg.trialsPerRate);
    EXPECT_EQ(res.rates[0].completedTrials() + res.rates[0].abandoned,
              cfg.trialsPerRate);
    EXPECT_EQ(res.totalAbandoned, abandoned_seen);
    EXPECT_GT(res.totalRetries, 0);
}

TEST(FaultCampaignTest, ConfigIsValidated)
{
    driver::FaultCampaignConfig faulted = tinyCampaignConfig();
    faulted.experiment.machine.faults.killNode(5);
    EXPECT_THROW(driver::FaultCampaign{faulted}, FatalError);

    driver::FaultCampaignConfig no_rates = tinyCampaignConfig();
    no_rates.nodeFaultRates.clear();
    EXPECT_THROW(driver::FaultCampaign{no_rates}, FatalError);

    driver::FaultCampaignConfig no_trials = tinyCampaignConfig();
    no_trials.trialsPerRate = 0;
    EXPECT_THROW(driver::FaultCampaign{no_trials}, FatalError);
}

} // namespace
