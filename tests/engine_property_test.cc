/**
 * @file
 * Property tests for the execution engine over randomly generated task
 * DAGs: structural invariants that must hold for *any* plan —
 * makespan bounds, monotonicity under the Figure-18 knobs, and full
 * determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.h"
#include "support/rng.h"

namespace {

using namespace ndp;
using namespace ndp::sim;

/** Random DAG plan: forward-only deps, random nodes/reads/costs. */
ExecutionPlan
randomPlan(std::uint64_t seed, int tasks, int node_count)
{
    Rng rng(seed);
    ExecutionPlan plan;
    for (int t = 0; t < tasks; ++t) {
        Task task;
        task.id = t;
        task.node = static_cast<noc::NodeId>(
            rng.nextBelow(static_cast<std::uint64_t>(node_count)));
        task.computeCost = 1 + static_cast<std::int64_t>(
                                   rng.nextBelow(6));
        task.statementIndex = 0;
        task.iterationNumber = t;
        const int n_reads = static_cast<int>(rng.nextBelow(4));
        for (int r = 0; r < n_reads; ++r) {
            task.reads.push_back(
                {static_cast<mem::Addr>(0x10000 +
                                        64 * rng.nextBelow(512)),
                 64, 0});
        }
        if (rng.nextBool(0.5)) {
            task.write = MemAccess{
                static_cast<mem::Addr>(0x80000 + 64 * t), 64, 0};
        }
        // Up to 2 random backward deps.
        for (int d = 0; d < 2 && t > 0; ++d) {
            if (rng.nextBool(0.35)) {
                const auto dep = static_cast<TaskId>(
                    rng.nextBelow(static_cast<std::uint64_t>(t)));
                if (std::find(task.deps.begin(), task.deps.end(),
                              dep) == task.deps.end())
                    task.deps.push_back(dep);
            }
        }
        plan.tasks.push_back(std::move(task));
    }
    return plan;
}

class EnginePropertyTest : public ::testing::TestWithParam<int>
{
  protected:
    ManycoreConfig config;
};

TEST_P(EnginePropertyTest, MakespanBounds)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    const ExecutionPlan plan = randomPlan(
        static_cast<std::uint64_t>(GetParam()), 120,
        system.mesh().nodeCount());
    const SimResult result = engine.run(plan);

    // Makespan can never beat perfect parallelisation of the busy work
    // and never exceed fully serial execution plus all waits.
    const std::int64_t nodes = system.mesh().nodeCount();
    EXPECT_GE(result.makespanCycles,
              result.totalBusyCycles / nodes / 2)
        << "makespan below any feasible schedule";
    EXPECT_LE(result.makespanCycles,
              result.totalBusyCycles + result.syncWaitCycles + 1);
    EXPECT_EQ(result.taskCount, 120);
    EXPECT_GE(result.syncWaitCycles, 0);
    EXPECT_GE(result.dataMovementFlitHops, 0);
}

TEST_P(EnginePropertyTest, Determinism)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    const ExecutionPlan plan = randomPlan(
        static_cast<std::uint64_t>(GetParam()) * 31, 80,
        system.mesh().nodeCount());
    const SimResult a = engine.run(plan);
    const SimResult b = engine.run(plan);
    EXPECT_EQ(a.makespanCycles, b.makespanCycles);
    EXPECT_EQ(a.totalBusyCycles, b.totalBusyCycles);
    EXPECT_EQ(a.syncCount, b.syncCount);
    EXPECT_EQ(a.dataMovementFlitHops, b.dataMovementFlitHops);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST_P(EnginePropertyTest, IdealNetworkNeverSlower)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    const ExecutionPlan plan = randomPlan(
        static_cast<std::uint64_t>(GetParam()) * 77, 100,
        system.mesh().nodeCount());
    EngineOptions ideal;
    ideal.idealNetwork = true;
    const SimResult real = engine.run(plan);
    const SimResult zero = engine.run(plan, ideal);
    // Greedy list scheduling admits small Graham anomalies: shorter
    // task times can reorder the schedule slightly. Allow 2% slack.
    EXPECT_LE(zero.makespanCycles,
              real.makespanCycles + real.makespanCycles / 50 + 8);
    EXPECT_EQ(zero.networkStallCycles, 0);
}

TEST_P(EnginePropertyTest, NetworkScaleMonotonic)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    const ExecutionPlan plan = randomPlan(
        static_cast<std::uint64_t>(GetParam()) * 131, 100,
        system.mesh().nodeCount());
    EngineOptions half;
    half.networkScale = 0.5;
    EngineOptions twice;
    twice.networkScale = 2.0;
    const SimResult lo = engine.run(plan, half);
    const SimResult mid = engine.run(plan);
    const SimResult hi = engine.run(plan, twice);
    EXPECT_LE(lo.networkStallCycles, mid.networkStallCycles);
    EXPECT_LE(mid.networkStallCycles, hi.networkStallCycles);
}

TEST_P(EnginePropertyTest, SyncCountMatchesCrossNodeDeps)
{
    ManycoreSystem system(config);
    ExecutionEngine engine(system);
    const ExecutionPlan plan = randomPlan(
        static_cast<std::uint64_t>(GetParam()) * 171, 60,
        system.mesh().nodeCount());
    std::int64_t expected = 0;
    for (const Task &task : plan.tasks) {
        for (TaskId dep : task.deps) {
            if (plan.tasks[static_cast<std::size_t>(dep)].node !=
                task.node)
                ++expected;
        }
    }
    const SimResult result = engine.run(plan);
    EXPECT_EQ(result.syncCount, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest,
                         ::testing::Range(1, 11));

} // namespace
