/**
 * @file
 * Golden regression for the fault campaign's headline numbers: a
 * fixed-seed graceful-degradation campaign (16x16 mesh, 5% node
 * faults, three trials) on one representative app, compared against a
 * checked-in golden file. The campaign is deterministic end to end —
 * injection, routing, re-homing, partitioning, simulation — so the
 * tolerance only absorbs floating-point drift across toolchains; any
 * behavioural change in the fault subsystem lands far outside it.
 *
 * Regenerate after an *intentional* change with:
 *   NDP_UPDATE_GOLDEN=1 ./fault_golden_test
 * and commit the rewritten tests/golden/fault_campaign_16x16.txt.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "driver/fault_campaign.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;

#ifndef NDP_GOLDEN_DIR
#error "NDP_GOLDEN_DIR must point at tests/golden"
#endif

// Scale chosen so the optimized plan actually wins on a 16x16 mesh
// (smaller problems leave nothing for the partitioner to improve and
// the golden would pin a degenerate all-zeros row).
constexpr std::int64_t kGoldenScale = 4096;
constexpr double kTolerancePct = 0.5; // absolute, in % points

std::string
goldenPath()
{
    return std::string(NDP_GOLDEN_DIR) + "/fault_campaign_16x16.txt";
}

std::map<std::string, double>
computeHeadlines()
{
    driver::FaultCampaignConfig cfg;
    cfg.experiment.machine.meshCols = 16;
    cfg.experiment.machine.meshRows = 16;
    cfg.nodeFaultRates = {0.05};
    cfg.trialsPerRate = 3;
    const driver::FaultCampaign campaign(cfg);

    workloads::WorkloadFactory factory(kGoldenScale);
    const workloads::Workload app = factory.build("water");

    driver::SweepRunner runner(2);
    const driver::FaultCampaignResult res = campaign.run(app, runner);

    const driver::FaultRateResult &rate = res.rates.at(0);
    const double healthy_def =
        static_cast<double>(res.healthy.defaultMakespan);
    const double healthy_opt =
        static_cast<double>(res.healthy.optimizedMakespan);

    std::map<std::string, double> metrics;
    metrics["healthy_exec_reduction_pct"] =
        res.healthy.execTimeReductionPct();
    metrics["faulted_exec_reduction_pct"] = rate.meanExecReductionPct;
    metrics["default_slowdown_pct"] =
        100.0 * (rate.meanDefaultMakespan - healthy_def) / healthy_def;
    metrics["optimized_slowdown_pct"] =
        100.0 * (rate.meanOptimizedMakespan - healthy_opt) /
        healthy_opt;
    metrics["default_movement_inflation_pct"] =
        100.0 *
        (rate.meanDefaultMovement - res.healthyDefaultMovement) /
        res.healthyDefaultMovement;
    metrics["optimized_movement_inflation_pct"] =
        100.0 *
        (rate.meanOptimizedMovement - res.healthyOptimizedMovement) /
        res.healthyOptimizedMovement;
    metrics["faulted_optimized_l1_hit_pct"] =
        100.0 * rate.meanOptimizedL1HitRate;
    // Integral accounting rides along at zero tolerance in effect: a
    // half-point drift in a count is a real change.
    metrics["completed_trials"] = rate.completedTrials();
    metrics["total_retries"] = res.totalRetries;
    metrics["total_abandoned"] = res.totalAbandoned;
    return metrics;
}

std::map<std::string, double>
readGolden(const std::string &path)
{
    std::ifstream in(path);
    std::map<std::string, double> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        double value = 0.0;
        if (ls >> key >> value)
            golden[key] = value;
    }
    return golden;
}

void
writeGolden(const std::string &path,
            const std::map<std::string, double> &metrics)
{
    std::ofstream out(path);
    out << "# Fault-campaign headline: water at scale " << kGoldenScale
        << ", 16x16 mesh, 5% node faults, 3 trials, default seed.\n"
        << "# Regenerate: NDP_UPDATE_GOLDEN=1 ./fault_golden_test\n";
    out.precision(10);
    for (const auto &[key, value] : metrics)
        out << key << ' ' << value << '\n';
}

TEST(FaultGoldenTest, CampaignHeadlineMatchesGoldenFile)
{
    const std::map<std::string, double> actual = computeHeadlines();

    if (std::getenv("NDP_UPDATE_GOLDEN") != nullptr) {
        writeGolden(goldenPath(), actual);
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    const std::map<std::string, double> golden =
        readGolden(goldenPath());
    ASSERT_FALSE(golden.empty())
        << "missing or empty golden file " << goldenPath()
        << " — regenerate with NDP_UPDATE_GOLDEN=1";

    for (const auto &[key, expected] : golden) {
        const auto it = actual.find(key);
        ASSERT_NE(it, actual.end())
            << "golden metric " << key << " no longer computed";
        EXPECT_NEAR(it->second, expected, kTolerancePct)
            << key << " drifted from its golden value — if the "
            << "change is intentional, regenerate the golden file";
    }
    for (const auto &[key, value] : actual) {
        (void)value;
        EXPECT_TRUE(golden.count(key))
            << key << " is computed but absent from the golden file "
            << "— regenerate it";
    }
}

} // namespace
