/**
 * @file
 * Tests for the Figure-8-style pseudo-code generator: per-node
 * grouping, sync() annotations for cross-node producers, temporary
 * naming, offload markers, and iteration slicing.
 */

#include <gtest/gtest.h>

#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "partition/codegen.h"
#include "partition/partitioner.h"
#include "sim/engine.h"

namespace {

using namespace ndp;

class CodegenTest : public ::testing::Test
{
  protected:
    CodegenTest()
        : system(config)
    {
    }

    sim::ExecutionPlan
    planFor(const std::string &src, bool always_split = false)
    {
        nest = std::make_unique<ir::LoopNest>(
            ir::parseKernel(src, "cg", arrays));
        baseline::DefaultPlacement placement(system, arrays);
        nodes = placement.assignIterations(*nest);
        sim::ExecutionEngine engine(system);
        (void)engine.run(placement.buildPlan(*nest, nodes));
        partition::PartitionOptions options;
        if (always_split) {
            // Paper-literal Algorithm 1: split whenever movement
            // improves, no overhead guard.
            options.overheadSafetyFactor = 0.0;
        }
        partition::Partitioner partitioner(system, arrays, options);
        return partitioner.plan(*nest, nodes);
    }

    sim::ManycoreConfig config;
    sim::ManycoreSystem system;
    ir::ArrayTable arrays;
    std::unique_ptr<ir::LoopNest> nest;
    std::vector<noc::NodeId> nodes;
};

TEST_F(CodegenTest, SplitStatementShowsSyncsAndOffloads)
{
    const auto plan = planFor(R"(
        array A[64] bytes 64; array B[64] bytes 64;
        array C[64] bytes 64; array D[64] bytes 64;
        array E[64] bytes 64;
        for i = 0..64 { A[i] = B[i] + C[i] + D[i] + E[i]; })",
                              /*always_split=*/true);
    // Whether iteration 0 specifically splits depends on the guard;
    // scan the whole schedule for the split markers.
    const std::string code =
        partition::generatePseudoCode(plan, *nest, arrays, 0, 63);
    EXPECT_NE(code.find("node "), std::string::npos);
    EXPECT_NE(code.find("sync(t"), std::string::npos);
    EXPECT_NE(code.find("// offloaded"), std::string::npos);
    EXPECT_NE(code.find("A[0] ="), std::string::npos);
    // Operand names resolve through the array table.
    EXPECT_NE(code.find("B[0]"), std::string::npos);
}

TEST_F(CodegenTest, IterationSliceRespected)
{
    const auto plan = planFor(R"(
        array A[64] bytes 64; array B[64] bytes 64;
        array C[64] bytes 64;
        for i = 0..64 { A[i] = B[i] + C[i]; })");
    const std::string first =
        partition::generatePseudoCode(plan, *nest, arrays, 0, 0);
    EXPECT_NE(first.find("A[0]"), std::string::npos);
    EXPECT_EQ(first.find("A[5]"), std::string::npos);
    const std::string later =
        partition::generatePseudoCode(plan, *nest, arrays, 5, 5);
    EXPECT_NE(later.find("A[5]"), std::string::npos);
    EXPECT_EQ(later.find("A[0] ="), std::string::npos);
}

TEST_F(CodegenTest, HeaderNamesPlanAndWindow)
{
    const auto plan = planFor(R"(
        array A[32] bytes 64; array B[32] bytes 64;
        for i = 0..32 { A[i] = B[i]; })");
    const std::string code =
        partition::generatePseudoCode(plan, *nest, arrays, 0, 0);
    EXPECT_NE(code.find("// cg, window size"), std::string::npos);
}

TEST_F(CodegenTest, DefaultTasksRenderWithoutSyncs)
{
    // An unanalyzable statement stays whole on its default node: the
    // rendered program has no sync() lines and no offload markers.
    nest = std::make_unique<ir::LoopNest>(ir::parseKernel(R"(
        array X[32] bytes 64; array Y[32] bytes 64;
        array Z[32] bytes 64;
        for i = 0..32 { Z[i] = X[Y[i]] + Z[i]; })",
                                                          "cg", arrays));
    std::vector<std::int64_t> idx(32);
    for (int i = 0; i < 32; ++i)
        idx[static_cast<std::size_t>(i)] = (i * 5) % 32;
    arrays.setIndexData(arrays.find("Y"), idx);

    baseline::DefaultPlacement placement(system, arrays);
    nodes = placement.assignIterations(*nest);
    sim::ExecutionEngine engine(system);
    (void)engine.run(placement.buildPlan(*nest, nodes));
    partition::Partitioner partitioner(system, arrays);
    const auto plan = partitioner.plan(*nest, nodes);

    const std::string code =
        partition::generatePseudoCode(plan, *nest, arrays, 0, 0);
    EXPECT_NE(code.find("Z[0] ="), std::string::npos);
    EXPECT_EQ(code.find("// offloaded"), std::string::npos);
}

} // namespace
