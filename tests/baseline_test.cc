/**
 * @file
 * Tests for the baseline layer: the profile-guided default placement
 * (Section 6.1's strong baseline) and the data-to-MC page mapping of
 * Figure 23.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "baseline/data_to_mc.h"
#include "baseline/default_placement.h"
#include "ir/parser.h"
#include "support/error.h"

namespace {

using namespace ndp;
using namespace ndp::baseline;

class BaselineTest : public ::testing::Test
{
  protected:
    BaselineTest()
        : system(config)
    {
    }

    ir::LoopNest
    parse(const std::string &src)
    {
        return ir::parseKernel(src, "test", arrays);
    }

    sim::ManycoreConfig config;
    sim::ManycoreSystem system;
    ir::ArrayTable arrays;
};

TEST_F(BaselineTest, AssignsEveryIteration)
{
    ir::LoopNest nest = parse(R"(
        array A[360] bytes 64; array B[360] bytes 64;
        for i = 0..360 { A[i] = B[i]; })");
    DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    ASSERT_EQ(static_cast<std::int64_t>(nodes.size()),
              nest.iterationCount());
    for (noc::NodeId n : nodes) {
        EXPECT_GE(n, 0);
        EXPECT_LT(n, system.mesh().nodeCount());
    }
}

TEST_F(BaselineTest, ChunksAreContiguousAndBalanced)
{
    ir::LoopNest nest = parse(R"(
        array A[720] bytes 64; array B[720] bytes 64;
        for i = 0..720 { A[i] = B[i]; })");
    DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);

    std::map<noc::NodeId, std::int64_t> per_node;
    for (noc::NodeId n : nodes)
        ++per_node[n];
    // Capacity-constrained assignment keeps loads near-equal.
    std::int64_t max_load = 0, min_load = INT64_MAX;
    for (const auto &[node, load] : per_node) {
        max_load = std::max(max_load, load);
        min_load = std::min(min_load, load);
    }
    EXPECT_LE(max_load, 2 * min_load);
    EXPECT_GE(static_cast<int>(per_node.size()), 18); // uses the mesh
}

TEST_F(BaselineTest, BuildPlanCoversAllStatementInstances)
{
    ir::LoopNest nest = parse(R"(
        array A[72] bytes 64; array B[72] bytes 64;
        array C[72] bytes 64;
        for i = 0..72 {
          S1: A[i] = B[i] + C[i];
          S2: C[i] = A[i] * B[i];
        })");
    DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    const auto plan = placement.buildPlan(nest, nodes);
    EXPECT_EQ(plan.tasks.size(), 144u);
    EXPECT_EQ(plan.instances.size(), 144u);
    for (const sim::Task &task : plan.tasks) {
        EXPECT_TRUE(task.write.has_value());
        EXPECT_FALSE(task.isSubcomputation);
        EXPECT_EQ(task.node,
                  nodes[static_cast<std::size_t>(task.iterationNumber)]);
        for (sim::TaskId dep : task.deps)
            EXPECT_LT(dep, task.id);
    }
}

TEST_F(BaselineTest, CrossNodeFlowDependencesPreserved)
{
    // A[i] written at iteration i and read at iteration i+1: when the
    // two iterations land on different nodes, the plan must order them.
    ir::LoopNest nest = parse(R"(
        array A[144] bytes 64; array B[144] bytes 64;
        for i = 1..144 { A[i] = A[i-1] + B[i]; })");
    DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    const auto plan = placement.buildPlan(nest, nodes);
    bool found_cross_dep = false;
    for (const sim::Task &task : plan.tasks) {
        for (sim::TaskId dep : task.deps) {
            if (plan.tasks[static_cast<std::size_t>(dep)].node !=
                task.node)
                found_cross_dep = true;
        }
    }
    EXPECT_TRUE(found_cross_dep);
}

TEST_F(BaselineTest, RejectsMismatchedAssignment)
{
    ir::LoopNest nest = parse(R"(
        array A[16]; array B[16];
        for i = 0..16 { A[i] = B[i]; })");
    DefaultPlacement placement(system, arrays);
    EXPECT_THROW(placement.buildPlan(nest, {0, 1, 2}), FatalError);
}

TEST_F(BaselineTest, ProfilePrefersLocalityCheapNodes)
{
    // One chunk per node; the chosen node for a chunk should be no
    // worse (in profiled cost terms) than letting one node take all.
    ir::LoopNest nest = parse(R"(
        array A[72] bytes 64; array B[72] bytes 64;
        for i = 0..72 { A[i] = B[i]; })");
    DefaultPlacementOptions options;
    options.chunkIterations = 2;
    DefaultPlacement placement(system, arrays, options);
    const auto nodes = placement.assignIterations(nest);
    // 36 chunks over 36 nodes: each node exactly one chunk.
    std::map<noc::NodeId, int> count;
    for (std::size_t k = 0; k < nodes.size(); k += 2)
        ++count[nodes[k]];
    for (const auto &[node, c] : count)
        EXPECT_EQ(c, 1);
}

// ------------------------------------------------------------ dataToMc

TEST_F(BaselineTest, PageToMcReturnsValidControllers)
{
    ir::LoopNest nest = parse(R"(
        array A[360] bytes 64; array B[360] bytes 64;
        for i = 0..360 { A[i] = B[i]; })");
    DefaultPlacement placement(system, arrays);
    const auto nodes = placement.assignIterations(nest);
    const auto mapping =
        profilePageToMc(system, arrays, nest, nodes);
    EXPECT_FALSE(mapping.empty());
    for (const auto &[page, mc] : mapping)
        EXPECT_LT(mc, 4u);
    // Every touched page is mapped.
    const ir::ArrayId a = arrays.find("A");
    const mem::Addr first_page =
        mem::pageNumber(arrays.info(a).base);
    EXPECT_TRUE(mapping.count(first_page) > 0);
}

TEST_F(BaselineTest, PageVotesFollowAccessingCores)
{
    // All iterations forced onto one corner-adjacent node: every page
    // must map to that node's nearest MC.
    ir::LoopNest nest = parse(R"(
        array Q[64] bytes 64; array R[64] bytes 64;
        for i = 0..64 { Q[i] = R[i]; })");
    const noc::NodeId corner_ish = system.mesh().nodeAt({1, 0});
    const std::vector<noc::NodeId> nodes(
        static_cast<std::size_t>(nest.iterationCount()), corner_ish);
    const auto mapping =
        profilePageToMc(system, arrays, nest, nodes);
    const auto &mcs = system.mesh().memoryControllerNodes();
    std::uint32_t expected = 0;
    for (std::uint32_t m = 1; m < mcs.size(); ++m) {
        if (system.mesh().distance(corner_ish, mcs[m]) <
            system.mesh().distance(corner_ish, mcs[expected]))
            expected = m;
    }
    for (const auto &[page, mc] : mapping)
        EXPECT_EQ(mc, expected);
}

} // namespace
