/**
 * @file
 * Golden regression test for the reproduction's headline numbers: the
 * Figure 13 (data-movement reduction), Figure 14 (subcomputation
 * parallelism), Figure 17 (execution-time reduction), and Figure 24
 * (energy reduction) metrics of three representative apps at the small
 * bench scale (NDP_BENCH_SCALE=256 equivalent), compared against a
 * checked-in golden file with a small tolerance. The pipeline is
 * deterministic, so the tolerance only absorbs floating-point drift
 * across toolchains (reassociation, FMA contraction) — a behavioural
 * change in the locator, splitter, balancer, or engine lands far
 * outside it and fails loudly instead of silently regressing the
 * reproduction.
 *
 * Regenerate after an *intentional* metrics change with:
 *   NDP_UPDATE_GOLDEN=1 ./golden_regression_test
 * and commit the rewritten tests/golden/headline_scale256.txt.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.h"
#include "workloads/workload.h"

namespace {

using namespace ndp;

#ifndef NDP_GOLDEN_DIR
#error "NDP_GOLDEN_DIR must point at tests/golden"
#endif

constexpr std::int64_t kGoldenScale = 256;
constexpr double kTolerancePct = 0.5; // absolute, in % points

const std::vector<std::string> &
goldenApps()
{
    static const std::vector<std::string> apps = {"water", "lu",
                                                  "fft"};
    return apps;
}

std::string
goldenPath()
{
    return std::string(NDP_GOLDEN_DIR) + "/headline_scale256.txt";
}

/** key ("app/metric") -> headline value, computed live. */
std::map<std::string, double>
computeHeadlines()
{
    workloads::WorkloadFactory factory(kGoldenScale);
    std::vector<workloads::Workload> apps;
    for (const std::string &name : goldenApps())
        apps.push_back(factory.build(name));

    driver::SweepRunner runner;
    const auto grid =
        runner.runGrid(apps, {driver::ExperimentConfig{}});

    std::map<std::string, double> metrics;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const driver::AppResult &r = grid[a][0].result;
        metrics[r.app + "/fig13_avg_movement_reduction_pct"] =
            r.movementReductionPct.mean();
        metrics[r.app + "/fig13_max_movement_reduction_pct"] =
            r.movementReductionPct.max();
        metrics[r.app + "/fig14_avg_dop"] =
            r.degreeOfParallelism.mean();
        metrics[r.app + "/fig14_max_dop"] =
            r.degreeOfParallelism.max();
        metrics[r.app + "/fig17_exec_time_reduction_pct"] =
            r.execTimeReductionPct();
        metrics[r.app + "/fig24_energy_reduction_pct"] =
            r.energyReductionPct();
    }
    return metrics;
}

std::map<std::string, double>
readGolden(const std::string &path)
{
    std::ifstream in(path);
    std::map<std::string, double> golden;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        double value = 0.0;
        if (ls >> key >> value)
            golden[key] = value;
    }
    return golden;
}

void
writeGolden(const std::string &path,
            const std::map<std::string, double> &metrics)
{
    std::ofstream out(path);
    out << "# Headline metrics at scale " << kGoldenScale
        << " (apps: water, lu, fft).\n"
        << "# Regenerate: NDP_UPDATE_GOLDEN=1 "
           "./golden_regression_test\n";
    out.precision(10);
    for (const auto &[key, value] : metrics)
        out << key << ' ' << value << '\n';
}

TEST(GoldenRegressionTest, HeadlineMetricsMatchGoldenFile)
{
    const std::map<std::string, double> actual = computeHeadlines();

    if (std::getenv("NDP_UPDATE_GOLDEN") != nullptr) {
        writeGolden(goldenPath(), actual);
        GTEST_SKIP() << "golden file regenerated at " << goldenPath();
    }

    const std::map<std::string, double> golden =
        readGolden(goldenPath());
    ASSERT_FALSE(golden.empty())
        << "missing or empty golden file " << goldenPath()
        << " — regenerate with NDP_UPDATE_GOLDEN=1";

    for (const auto &[key, expected] : golden) {
        const auto it = actual.find(key);
        ASSERT_NE(it, actual.end())
            << "golden metric " << key << " no longer computed";
        EXPECT_NEAR(it->second, expected, kTolerancePct)
            << key << " drifted from its golden value — if the "
            << "change is intentional, regenerate the golden file";
    }
    // And nothing new silently missing from the golden file.
    for (const auto &[key, value] : actual) {
        (void)value;
        EXPECT_TRUE(golden.count(key))
            << key << " is computed but absent from the golden file "
            << "— regenerate it";
    }
}

} // namespace
