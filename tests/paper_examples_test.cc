/**
 * @file
 * Executable versions of the paper's worked examples (Sections 3 and
 * 5): the single-statement MST split of Figures 3/9, the parenthesised
 * statement of Figure 10, the multi-statement reuse of Figure 11, and
 * the window-size trade-off of Figure 12. Node placements are chosen
 * on our mesh, so the absolute link counts differ from the figures,
 * but every *relation* the paper derives is asserted.
 */

#include <gtest/gtest.h>

#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "partition/data_locator.h"
#include "partition/splitter.h"
#include "support/error.h"

namespace {

using namespace ndp;
using namespace ndp::partition;

constexpr std::int64_t kFetchWeight = 8;

class PaperExamplesTest : public ::testing::Test
{
  protected:
    PaperExamplesTest()
        : mesh(6, 6), splitter(mesh, kFetchWeight, 1)
    {
    }

    static Location
    loc(noc::NodeId node,
        LocationSource source = LocationSource::L2Home)
    {
        Location l;
        l.node = node;
        l.source = source;
        return l;
    }

    /** Default cost: fetch every operand line to the store node. */
    std::int64_t
    defaultMovement(const std::vector<Location> &locations,
                    noc::NodeId store)
    {
        std::int64_t total = 0;
        for (const Location &l : locations)
            total += kFetchWeight * mesh.distance(l.node, store);
        return total;
    }

    noc::MeshTopology mesh;
    StatementSplitter splitter;
};

TEST_F(PaperExamplesTest, Figure9SingleStatement)
{
    // A(i) = B(i) + C(i) + D(i) + E(i): B/E near each other, C/D near
    // each other, both clusters away from A. The paper reduces 13
    // default movements to 8 by merging B+E at n_B and C+D at n_D.
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[8]; array B[8]; array C[8]; array D[8]; array E[8];
        for i = 0..8 { A[i] = B[i] + C[i] + D[i] + E[i]; })",
                                        "fig9", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());

    const noc::NodeId nB = mesh.nodeAt({0, 1});
    const noc::NodeId nE = mesh.nodeAt({0, 0});
    const noc::NodeId nC = mesh.nodeAt({5, 1});
    const noc::NodeId nD = mesh.nodeAt({5, 0});
    const noc::NodeId nA = mesh.nodeAt({2, 3});

    const std::vector<Location> locations = {loc(nB), loc(nC), loc(nD),
                                             loc(nE)};
    SplitResult split = splitter.split(sets, locations, nA);

    // The split must beat the fetch-everything default.
    EXPECT_LT(split.plannedMovement, defaultMovement(locations, nA));
    // B/E and C/D each merge inside their cluster.
    int cluster_merges = 0;
    for (const Subcomputation &sub : split.subs) {
        const bool in_be = sub.node == nB || sub.node == nE;
        const bool in_cd = sub.node == nC || sub.node == nD;
        if (!sub.isRoot && !sub.ops.empty() && (in_be || in_cd))
            ++cluster_merges;
    }
    EXPECT_GE(cluster_merges, 2);
    // The two cluster merges are independent: parallelism >= 2.
    EXPECT_GE(split.degreeOfParallelism, 2);
    // Final result materialises at n_A.
    EXPECT_EQ(split.subs[static_cast<std::size_t>(split.root)].node,
              nA);
}

TEST_F(PaperExamplesTest, Figure10Parentheses)
{
    // A(i) = B(i) * (C(i) + D(i) + E(i)): the level-based scheme must
    // first build an MST over {C, D, E} and then attach B and the
    // store as outer components (13 -> 9 in the paper).
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[8]; array B[8]; array C[8]; array D[8]; array E[8];
        for i = 0..8 { A[i] = B[i] * (C[i] + D[i] + E[i]); })",
                                        "fig10", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());

    const noc::NodeId nB = mesh.nodeAt({1, 3});
    const noc::NodeId nC = mesh.nodeAt({4, 0});
    const noc::NodeId nD = mesh.nodeAt({5, 0});
    const noc::NodeId nE = mesh.nodeAt({5, 1});
    const noc::NodeId nA = mesh.nodeAt({1, 4});

    const std::vector<Location> locations = {loc(nB), loc(nC), loc(nD),
                                             loc(nE)};
    SplitResult split = splitter.split(sets, locations, nA);

    EXPECT_LT(split.plannedMovement, defaultMovement(locations, nA));
    // The C+D+E sum must complete inside its cluster before the
    // multiplication by B: find the sub holding two AddLike merges.
    bool cde_merged_in_cluster = false;
    for (const Subcomputation &sub : split.subs) {
        const bool in_cluster =
            sub.node == nC || sub.node == nD || sub.node == nE;
        if (in_cluster && sub.ops.size() >= 1 && !sub.isRoot)
            cde_merged_in_cluster = true;
        // No multiplication may be scheduled inside the C/D/E set's
        // own merges (correctness of the level order): Mul appears
        // only in subs that consume the cluster's result.
        if (in_cluster && !sub.children.empty())
            continue;
    }
    EXPECT_TRUE(cde_merged_in_cluster);
}

TEST_F(PaperExamplesTest, Figure11MultiStatementReuse)
{
    // S1: A = B + C + D + E;  S2: X = Y + C.
    // After S1 is split, C(i) lives in the L1 of the node that merged
    // C+D; building S2's locations through the variable2node map must
    // reduce S2's movement versus ignoring the reuse.
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array A[8]; array B[8]; array C[8]; array D[8]; array E[8];
        array X[8]; array Y[8];
        for i = 0..8 {
          S1: A[i] = B[i] + C[i] + D[i] + E[i];
          S2: X[i] = Y[i] + C[i];
        })",
                                        "fig11", arrays);
    const ir::VarSet s1 = ir::buildVarSets(nest.body()[0]);
    const ir::VarSet s2 = ir::buildVarSets(nest.body()[1]);

    const noc::NodeId nB = mesh.nodeAt({0, 0});
    const noc::NodeId nC = mesh.nodeAt({5, 5});
    const noc::NodeId nD = mesh.nodeAt({5, 4});
    const noc::NodeId nE = mesh.nodeAt({0, 1});
    const noc::NodeId nA = mesh.nodeAt({2, 2});
    const noc::NodeId nY = mesh.nodeAt({4, 4});
    const noc::NodeId nX = mesh.nodeAt({4, 3});

    SplitResult split1 = splitter.split(
        s1, {loc(nB), loc(nC), loc(nD), loc(nE)}, nA);

    // Record where S1's subcomputations fetched C(i) (leaf 1).
    VariableToNodeMap varmap;
    noc::NodeId c_holder = noc::kInvalidNode;
    for (const Subcomputation &sub : split1.subs) {
        for (int leaf : sub.leaves) {
            if (leaf == 1) {
                c_holder = sub.node;
                varmap.add(0x1000, sub.node); // C(i)'s line key
            }
        }
    }
    ASSERT_NE(c_holder, noc::kInvalidNode);
    // The merge node for C is inside the C/D cluster.
    EXPECT_TRUE(c_holder == nC || c_holder == nD);

    // S2 with reuse: C located at the L1 copy.
    SplitResult with_reuse =
        splitter.split(s2, {loc(nY), loc(c_holder,
                                         LocationSource::L1Copy)},
                       nX);
    // S2 without reuse: C fetched from its home.
    SplitResult without_reuse =
        splitter.split(s2, {loc(nY), loc(nC)}, nX);
    EXPECT_LE(with_reuse.plannedMovement,
              without_reuse.plannedMovement);
}

TEST_F(PaperExamplesTest, Figure12WindowGrouping)
{
    // The essence of Figure 12: grouping the reader of C(i+1) into the
    // same window as the statement that fetched it captures the reuse;
    // separating them loses it. Modelled directly with the
    // variable2node map's window scoping.
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array X[8]; array Y[8]; array C[8];
        for i = 0..8 { X[i] = Y[i] + C[i]; })",
                                        "fig12", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());

    const noc::NodeId nY = mesh.nodeAt({1, 1});
    const noc::NodeId nC = mesh.nodeAt({5, 5});
    const noc::NodeId holder = mesh.nodeAt({2, 1}); // C's L1 copy
    const noc::NodeId nX = mesh.nodeAt({0, 2});

    // Same window: the copy is visible.
    const SplitResult same_window = splitter.split(
        sets, {loc(nY), loc(holder, LocationSource::L1Copy)}, nX);
    // Next window: the map was cleared; C resolves to its far home.
    const SplitResult next_window =
        splitter.split(sets, {loc(nY), loc(nC)}, nX);
    EXPECT_LT(same_window.plannedMovement,
              next_window.plannedMovement);
}

TEST_F(PaperExamplesTest, LevelOrderNeverReassociatesAcrossPriority)
{
    // x = a * (b + c) + d * (e + f + g): the nested sets keep the two
    // products separate; no merge may combine a leaf of (b,c) with a
    // leaf of (e,f,g) before their products are formed.
    ir::ArrayTable arrays;
    ir::LoopNest nest = ir::parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array d[8];
        array e[8]; array f[8]; array g[8]; array x[8];
        for i = 0..8 {
          x[i] = a[i] * (b[i] + c[i]) + d[i] * (e[i] + f[i] + g[i]);
        })",
                                        "levels", arrays);
    const ir::VarSet sets = ir::buildVarSets(nest.body().front());
    // Leaves in reads() order: a=0 b=1 c=2 d=3 e=4 f=5 g=6.
    std::vector<Location> locations;
    for (int i = 0; i < 7; ++i)
        locations.push_back(loc(static_cast<noc::NodeId>(i * 5 % 36)));
    const SplitResult split =
        splitter.split(sets, locations, mesh.nodeAt({3, 3}));

    for (const Subcomputation &sub : split.subs) {
        bool has_bc = false, has_efg = false;
        for (int leaf : sub.leaves) {
            has_bc = has_bc || leaf == 1 || leaf == 2;
            has_efg = has_efg || (leaf >= 4 && leaf <= 6);
        }
        // A single merge may touch both groups only through completed
        // sub-results (children), never by mixing raw leaves.
        EXPECT_FALSE(has_bc && has_efg)
            << "leaves from different priority levels merged raw";
    }
}

} // namespace
