/**
 * @file
 * Unit and property tests for the support layer: disjoint sets,
 * deterministic RNG, statistics helpers, and the table printer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/disjoint_set.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace ndp;

// ---------------------------------------------------------- DisjointSet

TEST(DisjointSetTest, StartsAsSingletons)
{
    DisjointSet ds(5);
    EXPECT_EQ(ds.size(), 5u);
    EXPECT_EQ(ds.setCount(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(ds.find(i), i);
}

TEST(DisjointSetTest, UniteMergesAndReportsChange)
{
    DisjointSet ds(4);
    EXPECT_TRUE(ds.unite(0, 1));
    EXPECT_FALSE(ds.unite(0, 1)); // already merged
    EXPECT_TRUE(ds.connected(0, 1));
    EXPECT_FALSE(ds.connected(0, 2));
    EXPECT_EQ(ds.setCount(), 3u);
}

TEST(DisjointSetTest, TransitiveConnectivity)
{
    DisjointSet ds(6);
    ds.unite(0, 1);
    ds.unite(1, 2);
    ds.unite(3, 4);
    EXPECT_TRUE(ds.connected(0, 2));
    EXPECT_TRUE(ds.connected(3, 4));
    EXPECT_FALSE(ds.connected(2, 3));
    ds.unite(2, 3);
    EXPECT_TRUE(ds.connected(0, 4));
    EXPECT_EQ(ds.setCount(), 2u);
}

TEST(DisjointSetTest, AddElementGrows)
{
    DisjointSet ds(2);
    const std::size_t idx = ds.addElement();
    EXPECT_EQ(idx, 2u);
    EXPECT_EQ(ds.size(), 3u);
    EXPECT_FALSE(ds.connected(0, idx));
    ds.unite(0, idx);
    EXPECT_TRUE(ds.connected(0, idx));
}

TEST(DisjointSetTest, FindOutOfRangePanics)
{
    DisjointSet ds(3);
    EXPECT_THROW(ds.find(3), PanicError);
}

/** Property: after uniting a random spanning set, everything connects. */
class DisjointSetPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DisjointSetPropertyTest, RandomUnionsMatchReferencePartition)
{
    const int seed = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    const std::size_t n = 32;
    DisjointSet ds(n);
    // Reference partition via label propagation.
    std::vector<std::size_t> label(n);
    std::iota(label.begin(), label.end(), 0);
    auto relabel = [&](std::size_t from, std::size_t to) {
        for (auto &l : label) {
            if (l == from)
                l = to;
        }
    };
    for (int k = 0; k < 40; ++k) {
        const auto a = static_cast<std::size_t>(rng.nextBelow(n));
        const auto b = static_cast<std::size_t>(rng.nextBelow(n));
        if (a == b)
            continue;
        const bool merged = ds.unite(a, b);
        EXPECT_EQ(merged, label[a] != label[b]);
        relabel(label[a], label[b]);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            EXPECT_EQ(ds.connected(i, j), label[i] == label[j])
                << i << " vs " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointSetPropertyTest,
                         ::testing::Range(1, 9));

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.05);
}

TEST(RngTest, BernoulliRoughlyCalibrated)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, AccumulatorBasics)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(2.0);
    acc.add(4.0);
    acc.add(9.0);
    EXPECT_EQ(acc.count(), 3u);
    EXPECT_DOUBLE_EQ(acc.sum(), 15.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
}

TEST(StatsTest, AccumulatorMerge)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(3.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);

    Accumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 3u);
}

TEST(StatsTest, AccumulatorReset)
{
    Accumulator acc;
    acc.add(5.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(StatsTest, GeometricMean)
{
    const std::vector<double> values = {2.0, 8.0};
    EXPECT_NEAR(geometricMean(values), 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    // Values below the floor are clamped, not rejected.
    const std::vector<double> with_zero = {0.0, 4.0};
    EXPECT_GT(geometricMean(with_zero, 1.0), 0.0);
}

TEST(StatsTest, ArithmeticMean)
{
    const std::vector<double> values = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(arithmeticMean(values), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(StatsTest, PercentReduction)
{
    EXPECT_DOUBLE_EQ(percentReduction(100.0, 80.0), 20.0);
    EXPECT_DOUBLE_EQ(percentReduction(100.0, 120.0), -20.0);
    EXPECT_DOUBLE_EQ(percentReduction(0.0, 10.0), 0.0);
}

TEST(StatsTest, SafeRatio)
{
    EXPECT_DOUBLE_EQ(safeRatio(6.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(safeRatio(6.0, 0.0), 0.0);
}

// ---------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(12LL);
    t.row().cell("b").cell(3.5, 1);
    const std::string out = t.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.5"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, RejectsTooManyCells)
{
    Table t({"only"});
    t.row().cell("x");
    EXPECT_THROW(t.cell("y"), FatalError);
}

TEST(TableTest, RejectsCellBeforeRow)
{
    Table t({"a"});
    EXPECT_THROW(t.cell("x"), FatalError);
}

TEST(TableTest, NumericFormatting)
{
    Table t({"v"});
    t.row().cell(3.14159, 3);
    EXPECT_NE(t.toString().find("3.142"), std::string::npos);
}

// ---------------------------------------------------------------- error

TEST(ErrorTest, CheckMacroThrowsPanic)
{
    EXPECT_THROW(NDP_CHECK(false, "boom"), PanicError);
    EXPECT_NO_THROW(NDP_CHECK(true, "fine"));
}

TEST(ErrorTest, RequireMacroThrowsFatal)
{
    EXPECT_THROW(NDP_REQUIRE(false, "bad input"), FatalError);
    EXPECT_NO_THROW(NDP_REQUIRE(true, "ok"));
}

TEST(ErrorTest, MessagesPropagate)
{
    try {
        fatal("specific message");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("specific message"),
                  std::string::npos);
    }
}

} // namespace
