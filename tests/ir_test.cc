/**
 * @file
 * Tests for the compiler IR: affine expressions, arrays, expression
 * trees, the kernel parser, the paper's nested variable sets
 * (Section 4.2), reference resolution, and dependence analysis.
 */

#include <gtest/gtest.h>

#include "ir/dependence.h"
#include "ir/instance.h"
#include "ir/nested_sets.h"
#include "ir/parser.h"
#include "support/error.h"

namespace {

using namespace ndp;
using namespace ndp::ir;

// ----------------------------------------------------------- AffineExpr

TEST(AffineExprTest, EvaluateConstantsAndTerms)
{
    EXPECT_EQ(AffineExpr::constant(7).evaluate({}), 7);
    AffineExpr e = AffineExpr::term(0, 2); // 2*i
    e.addTerm(1, -1);                      // -j
    e.addConstant(5);
    EXPECT_EQ(e.evaluate({3, 4}), 2 * 3 - 4 + 5);
}

TEST(AffineExprTest, AdditionAndScaling)
{
    const AffineExpr a = AffineExpr::term(0) + AffineExpr::constant(1);
    const AffineExpr b = a * 3;
    EXPECT_EQ(b.evaluate({2}), 9);
    const AffineExpr c = a + b; // 4i + 4
    EXPECT_EQ(c.evaluate({1}), 8);
}

TEST(AffineExprTest, ZeroCoefficientsVanish)
{
    AffineExpr e = AffineExpr::term(0, 2);
    e.addTerm(0, -2);
    EXPECT_TRUE(e.isConstant());
    EXPECT_EQ(e.coefficient(0), 0);
}

TEST(AffineExprTest, Equality)
{
    AffineExpr a = AffineExpr::term(0);
    a.addConstant(1);
    AffineExpr b = AffineExpr::constant(1);
    b.addTerm(0, 1);
    EXPECT_TRUE(a == b);
}

TEST(AffineExprTest, ToStringReadable)
{
    AffineExpr e = AffineExpr::term(0, 2);
    e.addConstant(-1);
    EXPECT_EQ(e.toString({"i"}), "2*i-1");
    EXPECT_EQ(AffineExpr::constant(0).toString({}), "0");
    EXPECT_EQ(AffineExpr::term(0).toString({"i"}), "i");
}

// ------------------------------------------------------------ArrayTable

TEST(ArrayTableTest, CreateAndLookup)
{
    ArrayTable arrays;
    const ArrayId a = arrays.create("A", {128});
    const ArrayId b = arrays.create("B", {16, 8});
    EXPECT_EQ(arrays.find("A"), a);
    EXPECT_EQ(arrays.find("B"), b);
    EXPECT_EQ(arrays.find("missing"), kInvalidArray);
    EXPECT_EQ(arrays.info(b).elementCount(), 128);
    EXPECT_EQ(arrays.size(), 2u);
}

TEST(ArrayTableTest, RejectsBadArrays)
{
    ArrayTable arrays;
    arrays.create("A", {8});
    EXPECT_THROW(arrays.create("A", {8}), FatalError);   // duplicate
    EXPECT_THROW(arrays.create("B", {}), FatalError);    // no extents
    EXPECT_THROW(arrays.create("C", {0}), FatalError);   // empty extent
    EXPECT_THROW(arrays.create("", {4}), FatalError);    // no name
}

TEST(ArrayTableTest, ArraysNeverSharePages)
{
    ArrayTable arrays;
    const ArrayId a = arrays.create("A", {3}); // tiny
    const ArrayId b = arrays.create("B", {3});
    const mem::Addr a_last =
        arrays.info(a).base + arrays.info(a).sizeBytes() - 1;
    EXPECT_LT(mem::pageNumber(a_last),
              mem::pageNumber(arrays.info(b).base));
}

TEST(ArrayTableTest, BasesAreLineStaggeredAcrossArrays)
{
    ArrayTable arrays;
    std::set<mem::Addr> offsets;
    for (int i = 0; i < 6; ++i) {
        const ArrayId id =
            arrays.create("A" + std::to_string(i), {64});
        offsets.insert(arrays.info(id).base % mem::kPageSize);
    }
    // Not all arrays may start at the same in-page offset (set-conflict
    // avoidance).
    EXPECT_GT(offsets.size(), 1u);
}

TEST(ArrayTableTest, ElementAddressing)
{
    ArrayTable arrays;
    arrays.setDefaultElementSize(8);
    const ArrayId m = arrays.create("M", {4, 5});
    const mem::Addr base = arrays.info(m).base;
    EXPECT_EQ(arrays.flatIndex(m, {2, 3}), 2 * 5 + 3);
    EXPECT_EQ(arrays.elementAddr(m, {2, 3}), base + (2 * 5 + 3) * 8);
    // Out-of-range indices wrap (synthetic index tables stay in range).
    EXPECT_EQ(arrays.flatIndex(m, {6, 3}), arrays.flatIndex(m, {2, 3}));
    EXPECT_EQ(arrays.flatIndex(m, {-1, 0}), arrays.flatIndex(m, {3, 0}));
}

TEST(ArrayTableTest, DefaultElementSizeApplies)
{
    ArrayTable arrays;
    arrays.setDefaultElementSize(64);
    const ArrayId a = arrays.create("A", {4});
    EXPECT_EQ(arrays.info(a).elementSize, 64u);
    const ArrayId b = arrays.create("B", {4}, 16);
    EXPECT_EQ(arrays.info(b).elementSize, 16u);
}

TEST(ArrayTableTest, IndexData)
{
    ArrayTable arrays;
    const ArrayId idx = arrays.create("IDX", {4});
    EXPECT_FALSE(arrays.hasIndexData(idx));
    arrays.setIndexData(idx, {3, 1, 2, 0});
    EXPECT_TRUE(arrays.hasIndexData(idx));
    EXPECT_EQ(arrays.indexValue(idx, 0), 3);
    EXPECT_EQ(arrays.indexValue(idx, 3), 0);
    // Size mismatch rejected.
    EXPECT_THROW(arrays.setIndexData(idx, {1, 2}), FatalError);
}

// ------------------------------------------------------------ Expr tree

TEST(ExprTest, CollectRefsLeftToRight)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8]; array C[8]; array D[8];
        for i = 0..8 { A[i] = B[i] + C[i] * D[i]; })",
                                "t", arrays);
    const Statement &stmt = nest.body().front();
    ASSERT_EQ(stmt.reads().size(), 3u);
    EXPECT_EQ(stmt.reads()[0]->array, arrays.find("B"));
    EXPECT_EQ(stmt.reads()[1]->array, arrays.find("C"));
    EXPECT_EQ(stmt.reads()[2]->array, arrays.find("D"));
}

TEST(ExprTest, CountOpsByCategory)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array d[8]; array x[8];
        for i = 0..8 { x[i] = a[i] + b[i] * c[i] - (d[i] >> 2); })",
                                "t", arrays);
    std::int64_t counts[3] = {0, 0, 0};
    nest.body().front().countOps(counts);
    EXPECT_EQ(counts[static_cast<int>(OpCategory::AddSub)], 2);
    EXPECT_EQ(counts[static_cast<int>(OpCategory::MulDiv)], 1);
    EXPECT_EQ(counts[static_cast<int>(OpCategory::Other)], 1);
}

TEST(ExprTest, OpCostDivisionTenX)
{
    // Section 4.5 footnote: division is 10x add/mul.
    EXPECT_EQ(opCost(OpKind::Div), 10);
    EXPECT_EQ(opCost(OpKind::Add), 1);
    EXPECT_EQ(opCost(OpKind::Mul), 1);
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array x[8];
        for i = 0..8 { x[i] = a[i] / b[i] + a[i]; })",
                                "t", arrays);
    EXPECT_EQ(nest.body().front().totalOpCost(), 11);
}

TEST(ExprTest, ToStringPreservesStructure)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array x[8];
        for i = 0..8 { x[i] = a[i] * (b[i] + c[i]); })",
                                "t", arrays);
    const std::string text =
        nest.body().front().toString(arrays, nest.loopNames());
    EXPECT_NE(text.find("a[i] * (b[i] + c[i])"), std::string::npos);
}

TEST(ExprTest, CloneIsDeep)
{
    ExprPtr c = Expr::constant(2.5);
    ExprPtr clone = c->clone();
    EXPECT_EQ(clone->asConstant(), 2.5);
    EXPECT_NE(c.get(), clone.get());
}

// --------------------------------------------------------------- Parser

TEST(ParserTest, ParsesMultiStatementLoop)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[N]; array B[N]; array C[N]; array X[N]; array Y[N];
        for i = 0..N {
          S1: A[i] = B[i] + C[i];
          S2: X[i] = Y[i] + C[i];
        })",
                                "two", arrays, {{"N", 64}});
    EXPECT_EQ(nest.name(), "two");
    EXPECT_EQ(nest.loops().size(), 1u);
    EXPECT_EQ(nest.iterationCount(), 64);
    ASSERT_EQ(nest.body().size(), 2u);
    EXPECT_EQ(nest.body()[0].label(), "S1");
    EXPECT_EQ(nest.body()[1].label(), "S2");
}

TEST(ParserTest, AutoLabelsWhenOmitted)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8];
        for i = 0..8 { A[i] = B[i]; B[i] = A[i]; })",
                                "t", arrays);
    EXPECT_EQ(nest.body()[0].label(), "S1");
    EXPECT_EQ(nest.body()[1].label(), "S2");
}

TEST(ParserTest, TwoDimensionalNest)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[M][M]; array B[M][M];
        for i = 1..M-1 { for j = 1..M-1 {
          A[i][j] = B[i-1][j] + B[i+1][j] + B[i][j-1] + B[i][j+1];
        } })",
                                "stencil", arrays, {{"M", 10}});
    EXPECT_EQ(nest.loops().size(), 2u);
    EXPECT_EQ(nest.iterationCount(), 64);
    const Statement &stmt = nest.body().front();
    EXPECT_EQ(stmt.reads().size(), 4u);
    // Subscript B[i-1][j]: first dim affine with coeff 1, const -1.
    const Subscript &s = stmt.reads()[0]->subscripts[0];
    EXPECT_EQ(s.affine.coefficient(0), 1);
    EXPECT_EQ(s.affine.constantPart(), -1);
}

TEST(ParserTest, IndirectSubscripts)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array X[32]; array Y[32]; array Z[32];
        for i = 0..32 { Z[i] = X[Y[i]]; })",
                                "gather", arrays);
    const ArrayRef &ref = *nest.body().front().reads()[0];
    ASSERT_EQ(ref.subscripts.size(), 1u);
    EXPECT_TRUE(ref.subscripts[0].isIndirect());
    EXPECT_EQ(ref.subscripts[0].indirect, arrays.find("Y"));
    EXPECT_FALSE(ref.isAnalyzable());
    EXPECT_TRUE(nest.body().front().lhs().isAnalyzable());
}

TEST(ParserTest, GuardedStatement)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8]; array H[8];
        for i = 0..8 { S1: if (H[i]) A[i] = B[i]; })",
                                "guard", arrays);
    const Statement &stmt = nest.body().front();
    EXPECT_TRUE(stmt.hasGuard());
    // Guard reads come after RHS reads.
    ASSERT_EQ(stmt.reads().size(), 2u);
    EXPECT_EQ(stmt.rhsReadCount(), 1u);
    EXPECT_EQ(stmt.reads()[1]->array, arrays.find("H"));
}

TEST(ParserTest, PrecedenceAndParentheses)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array x[8];
        for i = 0..8 {
          S1: x[i] = a[i] + b[i] * c[i];
          S2: x[i] = (a[i] + b[i]) * c[i];
        })",
                                "prec", arrays);
    // S1 top-level op is +, S2 is *.
    EXPECT_EQ(nest.body()[0].rhs().op(), OpKind::Add);
    EXPECT_EQ(nest.body()[1].rhs().op(), OpKind::Mul);
}

TEST(ParserTest, MinMaxAndBitwise)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array x[8];
        for i = 0..8 {
          S1: x[i] = min(a[i], b[i]) + max(a[i], b[i]);
          S2: x[i] = (a[i] >> 2) & b[i] | a[i] ^ b[i];
        })",
                                "ops", arrays);
    std::int64_t counts[3] = {0, 0, 0};
    nest.body()[1].countOps(counts);
    EXPECT_EQ(counts[static_cast<int>(OpCategory::Other)], 4);
}

TEST(ParserTest, StepLoops)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[64]; array B[64];
        for i = 0..64 step 4 { A[i] = B[i]; })",
                                "strided", arrays);
    EXPECT_EQ(nest.iterationCount(), 16);
    EXPECT_EQ(nest.iterationAt(2)[0], 8);
}

TEST(ParserTest, CommentsAndByteSuffix)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        // a comment
        array A[8] bytes 16;  # another comment
        array B[8];
        for i = 0..8 { A[i] = B[i]; })",
                                "c", arrays);
    EXPECT_EQ(arrays.info(arrays.find("A")).elementSize, 16u);
    EXPECT_EQ(nest.body().size(), 1u);
}

TEST(ParserTest, SizeExpressions)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[2*N+1];
        for i = 0..N/2 { A[i] = A[i+1]; })",
                                "sz", arrays, {{"N", 10}});
    EXPECT_EQ(arrays.info(arrays.find("A")).extents[0], 21);
    EXPECT_EQ(nest.iterationCount(), 5);
}

TEST(ParserTest, ErrorDiagnostics)
{
    ArrayTable arrays;
    const ParamMap params = {{"N", 8}};
    // Unknown array.
    EXPECT_THROW(parseKernel("for i = 0..N { A[i] = A[i]; }", "e",
                             arrays, params),
                 FatalError);
    // Wrong subscript count.
    EXPECT_THROW(parseKernel(R"(
        array A[4][4];
        for i = 0..4 { A[i] = A[i]; })",
                             "e2", arrays, params),
                 FatalError);
    // Unknown parameter.
    ArrayTable arrays2;
    EXPECT_THROW(parseKernel("array A[Q]; for i = 0..4 { A[i] = A[i]; }",
                             "e3", arrays2, params),
                 FatalError);
    // Missing semicolon.
    ArrayTable arrays3;
    EXPECT_THROW(parseKernel(R"(
        array A[4];
        for i = 0..4 { A[i] = A[i] })",
                             "e4", arrays3, params),
                 FatalError);
    // Empty loop range.
    ArrayTable arrays4;
    EXPECT_THROW(parseKernel(R"(
        array A[4];
        for i = 4..4 { A[i] = A[i]; })",
                             "e5", arrays4, params),
                 FatalError);
    // Non-affine subscript.
    ArrayTable arrays5;
    EXPECT_THROW(parseKernel(R"(
        array A[16];
        for i = 0..4 { for j = 0..4 { A[i*j] = A[i]; } })",
                             "e6", arrays5, params),
                 FatalError);
}

TEST(ParserTest, ErrorMentionsLine)
{
    ArrayTable arrays;
    try {
        parseKernel("array A[4];\nfor i = 0..4 { A[i] = ; }", "e",
                    arrays);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

// ------------------------------------------------------------- LoopNest

TEST(LoopNestTest, IterationEnumerationLexicographic)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[2][3];
        for i = 0..2 { for j = 0..3 { A[i][j] = A[i][j]; } })",
                                "t", arrays);
    std::vector<IterationVector> iters;
    nest.forEachIteration(
        [&](const IterationVector &iv) { iters.push_back(iv); });
    ASSERT_EQ(iters.size(), 6u);
    EXPECT_EQ(iters[0], (IterationVector{0, 0}));
    EXPECT_EQ(iters[1], (IterationVector{0, 1}));
    EXPECT_EQ(iters[5], (IterationVector{1, 2}));
    for (std::int64_t k = 0; k < 6; ++k)
        EXPECT_EQ(nest.iterationAt(k), iters[static_cast<std::size_t>(k)]);
}

TEST(LoopNestTest, ToStringShowsStructure)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[4]; array B[4];
        for i = 0..4 { S1: A[i] = B[i]; })",
                                "t", arrays);
    const std::string text = nest.toString(arrays);
    EXPECT_NE(text.find("for i = 0..4"), std::string::npos);
    EXPECT_NE(text.find("S1: A[i] = B[i]"), std::string::npos);
}

// ------------------------------------------------------ Nested variable sets

TEST(NestedSetsTest, FlatSumIsOneLevel)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8]; array C[8]; array D[8]; array E[8];
        for i = 0..8 { A[i] = B[i] + C[i] + D[i] + E[i]; })",
                                "t", arrays);
    const VarSet sets = buildVarSets(nest.body().front());
    EXPECT_EQ(sets.cls, OpClass::AddLike);
    EXPECT_EQ(sets.elems.size(), 4u);
    EXPECT_EQ(sets.leafCount(), 4u);
    EXPECT_EQ(sets.depth(), 1u);
    for (const auto &e : sets.elems)
        EXPECT_TRUE(e.isLeaf());
}

TEST(NestedSetsTest, PaperExampleNesting)
{
    // x = a * (b + c) + d * (e + f + g)  — Section 4.2's example.
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array d[8];
        array e[8]; array f[8]; array g[8]; array x[8];
        for i = 0..8 {
          x[i] = a[i] * (b[i] + c[i]) + d[i] * (e[i] + f[i] + g[i]);
        })",
                                "t", arrays);
    const VarSet sets = buildVarSets(nest.body().front());
    // Outermost: AddLike with two MulLike sub-sets.
    EXPECT_EQ(sets.cls, OpClass::AddLike);
    ASSERT_EQ(sets.elems.size(), 2u);
    ASSERT_FALSE(sets.elems[0].isLeaf());
    ASSERT_FALSE(sets.elems[1].isLeaf());
    const VarSet &left = *sets.elems[0].sub;   // a * (b + c)
    const VarSet &right = *sets.elems[1].sub;  // d * (e + f + g)
    EXPECT_EQ(left.cls, OpClass::MulLike);
    ASSERT_EQ(left.elems.size(), 2u);
    EXPECT_TRUE(left.elems[0].isLeaf()); // a
    ASSERT_FALSE(left.elems[1].isLeaf());
    EXPECT_EQ(left.elems[1].sub->elems.size(), 2u); // (b, c)
    EXPECT_EQ(right.cls, OpClass::MulLike);
    ASSERT_EQ(right.elems.size(), 2u);
    EXPECT_EQ(right.elems[1].sub->elems.size(), 3u); // (e, f, g)
    EXPECT_EQ(sets.leafCount(), 7u);
    EXPECT_EQ(sets.depth(), 3u);
}

TEST(NestedSetsTest, SubtractionFlattensWithTags)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array x[8];
        for i = 0..8 { x[i] = a[i] - b[i] + c[i]; })",
                                "t", arrays);
    const VarSet sets = buildVarSets(nest.body().front());
    ASSERT_EQ(sets.elems.size(), 3u);
    EXPECT_EQ(sets.elems[0].op, OpKind::Add);
    EXPECT_EQ(sets.elems[1].op, OpKind::Sub);
    EXPECT_EQ(sets.elems[2].op, OpKind::Add);
}

TEST(NestedSetsTest, ShiftsStayBinary)
{
    // (a << b) << c must not flatten into one 3-element set.
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array x[8];
        for i = 0..8 { x[i] = a[i] << b[i] << c[i]; })",
                                "t", arrays);
    const VarSet sets = buildVarSets(nest.body().front());
    EXPECT_EQ(sets.cls, OpClass::Shift);
    ASSERT_EQ(sets.elems.size(), 2u);
    EXPECT_FALSE(sets.elems[0].isLeaf()); // nested (a << b)
    EXPECT_TRUE(sets.elems[1].isLeaf());  // c
}

TEST(NestedSetsTest, ConstantsAreDropped)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array x[8];
        for i = 0..8 { x[i] = a[i] * 0.5 + b[i] + 1; })",
                                "t", arrays);
    const VarSet sets = buildVarSets(nest.body().front());
    EXPECT_EQ(sets.leafCount(), 2u);
}

TEST(NestedSetsTest, LeafIndicesMatchReadsOrder)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array a[8]; array b[8]; array c[8]; array d[8]; array x[8];
        for i = 0..8 { x[i] = (a[i] + b[i]) * (c[i] - d[i]); })",
                                "t", arrays);
    const VarSet sets = buildVarSets(nest.body().front());
    // Collect leaves in set order; they must be 0,1,2,3.
    std::vector<int> leaves;
    const std::function<void(const VarSet &)> collect =
        [&](const VarSet &s) {
            for (const auto &e : s.elems) {
                if (e.isLeaf())
                    leaves.push_back(e.leaf);
                else
                    collect(*e.sub);
            }
        };
    collect(sets);
    EXPECT_EQ(leaves, (std::vector<int>{0, 1, 2, 3}));
}

// -------------------------------------------------- instance resolution

TEST(InstanceTest, AffineResolution)
{
    ArrayTable arrays;
    arrays.setDefaultElementSize(8);
    LoopNest nest = parseKernel(R"(
        array A[16]; array B[16];
        for i = 0..16 { A[i] = B[i+1]; })",
                                "t", arrays);
    StatementInstance inst;
    inst.stmt = &nest.body().front();
    inst.iter = {3};
    const auto reads = resolveReads(inst, arrays);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_EQ(reads[0].addr, arrays.elementAddr(arrays.find("B"), 4));
    EXPECT_TRUE(reads[0].analyzable);
    const ResolvedRef write = resolveWrite(inst, arrays);
    EXPECT_EQ(write.addr, arrays.elementAddr(arrays.find("A"), 3));
}

TEST(InstanceTest, IndirectResolutionUsesIndexData)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array X[8]; array Y[8]; array Z[8];
        for i = 0..8 { Z[i] = X[Y[i]]; })",
                                "t", arrays);
    arrays.setIndexData(arrays.find("Y"), {7, 6, 5, 4, 3, 2, 1, 0});
    StatementInstance inst;
    inst.stmt = &nest.body().front();
    inst.iter = {2};
    const auto reads = resolveReads(inst, arrays);
    EXPECT_EQ(reads[0].addr, arrays.elementAddr(arrays.find("X"), 5));
    EXPECT_FALSE(reads[0].analyzable);
}

// ----------------------------------------------------------- dependence

class DependenceTest : public ::testing::Test
{
  protected:
    std::vector<StatementInstance>
    instancesOf(const LoopNest &nest, std::int64_t count)
    {
        std::vector<StatementInstance> out;
        for (std::int64_t k = 0; k < count; ++k) {
            for (const Statement &stmt : nest.body()) {
                StatementInstance inst;
                inst.stmt = &stmt;
                inst.iter = nest.iterationAt(k);
                inst.iterationNumber = k;
                out.push_back(inst);
            }
        }
        return out;
    }
};

TEST_F(DependenceTest, FlowAntiOutputDetected)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8]; array C[8];
        for i = 0..8 {
          S1: A[i] = B[i] + C[i];
          S2: C[i] = A[i] * B[i];
        })",
                                "t", arrays);
    const auto instances = instancesOf(nest, 1);
    const auto deps = analyzeDependences(instances, arrays, false);
    bool flow = false, anti = false;
    for (const Dependence &d : deps) {
        if (d.kind == DepKind::Flow && d.from == 0 && d.to == 1)
            flow = true; // A written by S1, read by S2
        if (d.kind == DepKind::Anti && d.from == 0 && d.to == 1)
            anti = true; // C read by S1, written by S2
        EXPECT_FALSE(d.may);
    }
    EXPECT_TRUE(flow);
    EXPECT_TRUE(anti);
}

TEST_F(DependenceTest, OutputDependence)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8];
        for i = 0..8 {
          S1: A[i] = B[i];
          S2: A[i] = B[i] + B[i];
        })",
                                "t", arrays);
    const auto deps =
        analyzeDependences(instancesOf(nest, 1), arrays, false);
    bool output = false;
    for (const Dependence &d : deps)
        output = output || d.kind == DepKind::Output;
    EXPECT_TRUE(output);
}

TEST_F(DependenceTest, NoFalseDependencesAcrossIterations)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array A[8]; array B[8];
        for i = 0..8 { A[i] = B[i]; })",
                                "t", arrays);
    const auto deps =
        analyzeDependences(instancesOf(nest, 4), arrays, false);
    EXPECT_TRUE(deps.empty()); // disjoint elements
}

TEST_F(DependenceTest, IndirectWithoutInspectorIsMayDep)
{
    ArrayTable arrays;
    LoopNest nest = parseKernel(R"(
        array X[8]; array Y[8]; array Z[8];
        for i = 0..8 {
          S1: X[i] = Z[i];
          S2: Z[i] = X[Y[i]];
        })",
                                "t", arrays);
    arrays.setIndexData(arrays.find("Y"), {0, 1, 2, 3, 4, 5, 6, 7});
    const auto conservative =
        analyzeDependences(instancesOf(nest, 1), arrays, false);
    bool may_flow = false;
    for (const Dependence &d : conservative)
        may_flow = may_flow || (d.kind == DepKind::Flow && d.may);
    EXPECT_TRUE(may_flow);

    // With the inspector's realised indices the dependence is exact.
    const auto exact =
        analyzeDependences(instancesOf(nest, 1), arrays, true);
    for (const Dependence &d : exact)
        EXPECT_FALSE(d.may);
}

TEST_F(DependenceTest, AnalyzableFraction)
{
    ArrayTable arrays;
    LoopNest affine = parseKernel(R"(
        array A[8]; array B[8];
        for i = 0..8 { A[i] = B[i]; })",
                                  "a", arrays);
    EXPECT_DOUBLE_EQ(analyzableFraction(affine), 1.0);

    ArrayTable arrays2;
    LoopNest mixed = parseKernel(R"(
        array X[8]; array Y[8]; array Z[8];
        for i = 0..8 { Z[i] = X[Y[i]] + Z[i]; })",
                                 "m", arrays2);
    // Refs: write Z (analyzable), X[Y[i]] (not), Z[i] (yes) => 2/3.
    EXPECT_NEAR(analyzableFraction(mixed), 2.0 / 3.0, 1e-9);
}

} // namespace
